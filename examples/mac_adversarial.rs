//! Multiple-access channel under a window adversary (Corollary 16 +
//! Theorem 11): the symmetric Algorithm 2 protocol, wrapped with the
//! Section 5 random delays, absorbs bursty `(w, λ)`-bounded injection for
//! `λ` below its threshold `1/(1+δ)e`.
//!
//! Run with `cargo run --release --example mac_adversarial`.

use dps::prelude::*;
use dps_core::dynamic::AdversarialWrapper;
use dps_core::staticsched::StaticScheduler;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m = 8; // stations
    let delta = 0.5;
    let scheduler = SymmetricMacScheduler::new(delta, 1.0);
    let lambda_max = 1.0 / scheduler.f_of(m);
    println!(
        "symmetric MAC protocol (Algorithm 2, delta = {delta}): threshold 1/(1+δ)e = {lambda_max:.3}"
    );

    let w = 64;
    let routes: Vec<_> = (0..m as u32)
        .map(|l| dps_core::path::RoutePath::single_hop(dps_core::ids::LinkId(l)).shared())
        .collect();

    for (label, lambda) in [
        ("half load", 0.5 * lambda_max),
        ("overload", 2.0 * lambda_max),
    ] {
        // Provision at most at 70% of capacity: frame length scales as
        // Θ(overhead/ε²) and Algorithm 2's tail makes near-threshold
        // configurations slow to simulate.
        let lambda_cfg = lambda.min(0.7 * lambda_max);
        let config = FrameConfig::tuned(&scheduler, m, lambda_cfg)?;
        let protocol = DynamicProtocol::new(scheduler, config.clone(), m);
        // Section 5: random initial delays smooth the adversary.
        let mut wrapped = AdversarialWrapper::new(protocol, config.frame_len, 8);

        // A bursty adversary dumping λ·w packets at every window start.
        let mut adversary = BurstyAdversary::new(
            CompleteInterference::new(m),
            routes.clone(),
            w,
            lambda,
        );

        let phy = SingleChannelFeasibility::new();
        let slots = 40 * config.frame_len as u64;
        let report = run_simulation(
            &mut wrapped,
            &mut adversary,
            &phy,
            SimulationConfig::new(slots, 5),
        );
        let verdict = classify_stability(&report, 0.05);
        println!(
            "{label:>9}: λ = {lambda:.3} (w = {w}) | T = {} | injected {:>5} delivered {:>5} backlog {:>5} | {:?}",
            config.frame_len, report.injected, report.delivered, report.final_backlog, verdict
        );
    }
    Ok(())
}
