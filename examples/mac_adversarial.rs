//! Multiple-access channel under a window adversary (Corollary 16 +
//! Theorem 11): the symmetric Algorithm 2 protocol, wrapped with the
//! Section 5 random delays, absorbs bursty `(w, λ)`-bounded injection for
//! `λ` below its threshold `1/(1+δ)e`.
//!
//! The whole assembly — MAC substrate, Algorithm 2 frame protocol,
//! bursty adversary, smoothing wrapper, window validation — is one
//! declarative spec: the `mac-symmetric` preset with the injection kind
//! switched to `bursty`.
//!
//! Run with `cargo run --release --example mac_adversarial`.

use dps::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut spec = registry::spec_for("mac-symmetric")?;
    spec.injection.kind = InjectionKind::Bursty;
    spec.injection.window = 64;
    spec.injection.delay_max = 8;
    spec.run.frames = 40;
    spec.run.seed = 5;
    // λ stays capacity-relative: half load vs double load around
    // 1/(1+δ)e. Provision at most at 70% of capacity: frame length scales
    // as Θ(overhead/ε²) and Algorithm 2's tail makes near-threshold
    // configurations slow to simulate.
    spec.run.provision_cap = 0.7;

    println!(
        "symmetric MAC protocol (Algorithm 2) under a bursty (w = {}, λ)-bounded adversary",
        spec.injection.window
    );
    for (label, relative_load) in [("half load", 0.5), ("overload", 2.0)] {
        let outcome = Scenario::from_spec(&spec.clone().with_lambda(relative_load))?.run()?;
        println!(
            "{label:>9}: λ = {:.3} (threshold {:.3}, effective {:.3}) | T = {} | \
             injected {:>5} delivered {:>5} backlog {:>5} | {:?}",
            outcome.lambda,
            outcome.lambda_max,
            outcome.effective_rate.expect("adversarial runs validate"),
            outcome.frame_len,
            outcome.report.injected,
            outcome.report.delivered,
            outcome.report.final_backlog,
            outcome.verdict
        );
    }
    Ok(())
}
