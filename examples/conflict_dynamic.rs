//! Conflict-graph scenario (Section 7.2): random unit links under the
//! protocol model, scheduled dynamically through the transformed
//! uniform-rate algorithm.
//!
//! Prints the conflict structure (degree, inductive independence `ρ` under
//! the shortest-first ordering), then runs the dynamic protocol at half
//! its rate and at overload.
//!
//! Run with `cargo run --release --example conflict_dynamic`.

use dps::prelude::*;
use dps_conflict::models::{protocol_model, random_geo_links};
use dps_core::injection::stochastic::uniform_generators;
use dps_core::rng::split_stream;
use dps_core::staticsched::StaticScheduler;
use dps_core::transform::DenseTransform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m = 40;
    let mut geo_rng = split_stream(21, 0);
    let links = random_geo_links(m, (m as f64).sqrt() * 2.0, 1.0, &mut geo_rng);
    let graph = protocol_model(&links, 0.5);
    let pi = dps_conflict::inductive::ordering_by_key(m, |l| links[l.index()].length());
    let rho = dps_conflict::inductive::rho_for_ordering(&graph, &pi);
    let max_degree = (0..m as u32)
        .map(|l| graph.degree(dps_core::ids::LinkId(l)))
        .max()
        .unwrap_or(0);
    println!(
        "protocol-model conflict graph: m = {m} links, {} conflicts, max degree {max_degree}, rho = {rho}",
        graph.num_conflicts()
    );

    let model = ConflictInterference::new(graph.clone(), &pi);
    let phy = IndependentSetFeasibility::new(graph);
    let scheduler = DenseTransform::new(UniformRateScheduler::new(), m).with_chi(8.0);
    let lambda_max = 1.0 / scheduler.f_of(m);
    println!("transformed uniform-rate scheduler: f(m) = {:.1}, max rate {lambda_max:.4}", scheduler.f_of(m));

    let routes: Vec<_> = (0..m as u32)
        .map(|l| dps_core::path::RoutePath::single_hop(dps_core::ids::LinkId(l)).shared())
        .collect();
    for (label, rate) in [("half load", 0.5 * lambda_max), ("overload", 3.0 * lambda_max)] {
        // Cap the provisioning rate: near-threshold frame lengths grow as
        // Θ(overhead/ε²) (the overload verdict does not depend on it).
        let lambda_cfg = rate.min(0.7 * lambda_max);
        let config = FrameConfig::tuned(&scheduler, m, lambda_cfg)?;
        let mut protocol = DynamicProtocol::new(scheduler.clone(), config.clone(), m);
        let mut injector =
            uniform_generators(routes.clone(), 0.001)?.scaled_to_rate(&model, rate)?;
        let slots = 15 * config.frame_len as u64;
        let report = run_simulation(
            &mut protocol,
            &mut injector,
            &phy,
            SimulationConfig::new(slots, 8),
        );
        let verdict = classify_stability(&report, 0.05);
        println!(
            "{label:>9}: rate {rate:.4} | T = {} | injected {:>6} delivered {:>6} backlog {:>5} | {:?}",
            config.frame_len, report.injected, report.delivered, report.final_backlog, verdict
        );
    }
    Ok(())
}
