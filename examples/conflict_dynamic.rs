//! Conflict-graph scenario (Section 7.2): random unit links under the
//! protocol model, scheduled dynamically through the transformed
//! uniform-rate algorithm.
//!
//! Prints the conflict structure (degree, inductive independence `ρ` under
//! the shortest-first ordering) from the built substrate, then sweeps the
//! `conflict-transformed` preset at half its rate and at overload.
//!
//! Run with `cargo run --release --example conflict_dynamic`.

use dps::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut spec = registry::spec_for("conflict-transformed")?;
    spec = spec.with_size(40).with_seed(8);
    spec.run.frames = 15;

    // The substrate factory exposes the conflict graph it built.
    let substrate = spec.substrate.build()?;
    let parts = substrate.conflict.as_ref().expect("conflict substrate");
    let m = substrate.num_links;
    let rho = dps_conflict::inductive::rho_for_ordering(&parts.graph, &parts.pi);
    let max_degree = (0..m as u32)
        .map(|l| parts.graph.degree(dps_core::ids::LinkId(l)))
        .max()
        .unwrap_or(0);
    println!(
        "protocol-model conflict graph: m = {m} links, {} conflicts, max degree {max_degree}, rho = {rho}",
        parts.graph.num_conflicts()
    );

    // λ is capacity-relative in this preset (capacity = 1/f(m) of the
    // transformed uniform-rate scheduler).
    let report = Sweep::new(spec).over_lambdas(&[0.5, 3.0]).run()?;
    for cell in &report.cells {
        let o = &cell.outcome;
        let label = if cell.point.lambda < 1.0 {
            "half load"
        } else {
            "overload"
        };
        println!(
            "{label:>9}: rate {:.4} (capacity {:.4}) | T = {} | injected {:>6} delivered {:>6} backlog {:>5} | {:?}",
            o.lambda, o.lambda_max, o.frame_len,
            o.report.injected, o.report.delivered, o.report.final_backlog, o.verdict
        );
    }
    Ok(())
}
