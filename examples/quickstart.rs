//! Quickstart: the paper's pipeline end to end on the simplest substrate.
//!
//! 1. Pick a network and an interference model (here: packet routing,
//!    `W = identity`).
//! 2. Pick a static scheduling algorithm (here: greedy per-link, `f = 1`).
//! 3. Let the paper's transformation build a dynamic protocol
//!    (`FrameConfig` + `DynamicProtocol`).
//! 4. Inject packets stochastically below the threshold `1/f(m)` and watch
//!    queues stay bounded.
//!
//! Run with `cargo run --example quickstart`.

use dps::prelude::*;
use dps_routing::workloads::RoutingSetup;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A ring of 8 links; every route crosses 2 consecutive links.
    let setup = RoutingSetup::ring(8, 2)?;
    let m = setup.network.significant_size();

    // The dynamic protocol for target rate λ = 0.8 (< 1/f(m) = 1).
    let scheduler = GreedyPerLink::new();
    let config = FrameConfig::tuned(&scheduler, m, 0.8)?;
    println!(
        "frame length T = {} slots (main {}, clean-up {}), J = {:.1}",
        config.frame_len, config.main_budget, config.cleanup_budget, config.j_bound
    );
    let mut protocol = DynamicProtocol::new(scheduler, config.clone(), setup.network.num_links());

    // Stochastic injection at rate 0.6.
    let mut injector = dps_core::injection::stochastic::uniform_generators(
        setup.routes.clone(),
        0.05,
    )?
    .scaled_to_rate(&setup.model, 0.6)?;

    let slots = 100 * config.frame_len as u64;
    let report = run_simulation(
        &mut protocol,
        &mut injector,
        &setup.feasibility,
        SimulationConfig::new(slots, 42),
    );

    let verdict = classify_stability(&report, 0.05);
    let latency = report.latency_summary();
    println!("simulated {slots} slots");
    println!(
        "injected {} / delivered {} / backlog {}",
        report.injected, report.delivered, report.final_backlog
    );
    println!(
        "latency: mean {:.1} slots, max {:.0} (≈ {:.2} frames per hop)",
        latency.mean,
        latency.max,
        latency.mean / (2.0 * config.frame_len as f64)
    );
    println!("stability verdict: {verdict:?}");
    assert!(verdict.is_stable(), "rate 0.6 < 1 must be stable");
    Ok(())
}
