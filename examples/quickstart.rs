//! Quickstart: the paper's pipeline end to end on the simplest substrate,
//! through the declarative scenario API.
//!
//! 1. Pick a scenario — from the registry (`scenario list`) or from a
//!    TOML/JSON spec.
//! 2. Adjust it (here: injection rate λ = 0.6 < 1/f(m) = 1).
//! 3. Run it and observe stability.
//!
//! Run with `cargo run --example quickstart`.

use dps::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The same spec can come from the registry…
    let mut spec = registry::spec_for("ring-routing")?;
    spec = spec.with_lambda(0.6).with_seed(42);
    spec.run.frames = 100;

    // …or from a declarative TOML document (they are interchangeable):
    let same_spec = ScenarioSpec::from_toml(&spec.to_toml())?;
    assert_eq!(same_spec, spec);
    println!("spec:\n{}", spec.to_toml());

    let scenario = Scenario::from_spec(&spec)?;
    let outcome = scenario.run()?;

    println!(
        "substrate {} | protocol {} | injector {}",
        outcome.substrate, outcome.protocol, outcome.injector
    );
    println!(
        "frame length T = {} slots, capacity 1/f(m) = {:.3}, provisioned for {:.3}",
        outcome.frame_len, outcome.lambda_max, outcome.provisioned
    );
    println!("simulated {} slots", outcome.slots);
    println!(
        "injected {} / delivered {} / backlog {}",
        outcome.report.injected, outcome.report.delivered, outcome.report.final_backlog
    );
    let latency = outcome.report.latency_summary();
    println!(
        "latency: mean {:.1} slots, max {:.0} (≈ {:.2} frames per hop)",
        latency.mean,
        latency.max,
        latency.mean / (2.0 * outcome.frame_len as f64)
    );
    println!("stability verdict: {:?}", outcome.verdict);
    assert!(outcome.verdict.is_stable(), "rate 0.6 < 1 must be stable");
    Ok(())
}
