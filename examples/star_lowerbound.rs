//! The Theorem 20 lower bound, live (Figure 1): on the star instance a
//! global clock separates short links (even slots) from the long link
//! (odd slots) and everything is stable at per-link load 0.4 — while the
//! acknowledgment-based local-clock protocol starves the long link, whose
//! queue grows without bound.
//!
//! Run with `cargo run --release --example star_lowerbound`.

use dps::prelude::*;
use dps_core::interference::IdentityInterference;
use dps_core::injection::stochastic::uniform_generators;
use dps_core::path::RoutePath;
use dps_core::protocol::Protocol;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m = 16;
    let star = star_instance(m);
    println!(
        "Figure 1 star instance: {} short links + 1 long link (length {:.0})",
        star.short_links.len(),
        star.net.link_length(star.long_link)
    );
    let oracle = SinrFeasibility::new(star.net.clone(), UniformPower::unit());
    let routes: Vec<_> = star
        .short_links
        .iter()
        .chain(std::iter::once(&star.long_link))
        .map(|&l| RoutePath::single_hop(l).shared())
        .collect();
    let model = IdentityInterference::new(star.net.num_links());
    let lambda = 0.4;

    let mut global = GlobalClockStarProtocol::new(&star);
    let mut local = LocalClockAlohaProtocol::new(&star, 0.75);

    println!("\n         slot   global long-queue   local long-queue");
    let mut rng = dps_core::rng::split_stream(3, 0);
    let mut injector_g = uniform_generators(routes.clone(), 0.01)?.scaled_to_rate(&model, lambda)?;
    let mut injector_l = injector_g.clone();
    let mut next_id = 0u64;
    use dps_core::injection::Injector;
    for slot in 0..30_000u64 {
        let stamp = |paths: Vec<std::sync::Arc<RoutePath>>, next_id: &mut u64| {
            paths
                .into_iter()
                .map(|p| {
                    let pkt = dps_core::packet::Packet::new(
                        dps_core::ids::PacketId(*next_id),
                        p,
                        slot,
                    );
                    *next_id += 1;
                    pkt
                })
                .collect::<Vec<_>>()
        };
        let arrivals_g = stamp(injector_g.inject(slot, &mut rng), &mut next_id);
        let arrivals_l = stamp(injector_l.inject(slot, &mut rng), &mut next_id);
        global.on_slot(slot, arrivals_g, &oracle, &mut rng);
        local.on_slot(slot, arrivals_l, &oracle, &mut rng);
        if slot % 5000 == 4999 {
            println!(
                "{:>13}   {:>17}   {:>16}",
                slot + 1,
                global.long_queue_len(),
                local.long_queue_len()
            );
        }
    }
    println!(
        "\nglobal clock: total backlog {} (bounded) — local clock: long link starved with {} queued",
        global.backlog(),
        local.long_queue_len()
    );
    Ok(())
}
