//! The Theorem 20 lower bound, live (Figure 1): on the star instance a
//! global clock separates short links (even slots) from the long link
//! (odd slots) and everything is stable at per-link load 0.4 — while the
//! acknowledgment-based local-clock protocol starves the long link, whose
//! queue grows without bound.
//!
//! This example shows the scenario API's extension point: the star
//! substrate and the two Section 8 protocols are **custom
//! implementations of the object-safe factory traits**
//! ([`SubstrateSpec`], [`ProtocolSpec`]), composed with the built-in
//! stochastic injector spec — no special-case glue.
//!
//! Run with `cargo run --release --example star_lowerbound`.

use dps::prelude::*;
use dps_core::interference::IdentityInterference;
use dps_core::path::RoutePath;
use dps_scenario::{BuiltProtocol, ScenarioError, Substrate};
use dps_sinr::instances::star_instance;
use dps_sinr::star::{GlobalClockStarProtocol, LocalClockAlohaProtocol};
use std::sync::Arc;

/// The Figure 1 star instance as a custom substrate: `m − 1` short links
/// plus one long link, exact SINR feasibility with uniform powers.
#[derive(Debug)]
struct StarSubstrate {
    m: usize,
}

impl SubstrateSpec for StarSubstrate {
    fn label(&self) -> String {
        format!("Figure 1 star (m = {})", self.m)
    }

    fn build(&self) -> Result<Substrate, ScenarioError> {
        let star = star_instance(self.m);
        let routes: Vec<Arc<RoutePath>> = star
            .short_links
            .iter()
            .chain(std::iter::once(&star.long_link))
            .map(|&l| RoutePath::single_hop(l).shared())
            .collect();
        let num_links = star.net.num_links();
        Ok(Substrate {
            label: SubstrateSpec::label(self),
            num_links,
            m: num_links,
            model: Arc::new(IdentityInterference::new(num_links)),
            feasibility: Arc::new(SinrFeasibility::new(star.net.clone(), UniformPower::unit())),
            routes,
            conflict: None,
            sinr_cache: None,
            sinr_tiles: None,
        })
    }
}

/// The two Section 8 protocols as a custom protocol spec.
#[derive(Clone, Copy, Debug)]
enum StarProtocol {
    /// Shared slot parity: short links on even slots, long link on odd.
    GlobalClock,
    /// Acknowledgment-based slotted ALOHA with per-station clocks.
    LocalClock { q: f64 },
}

impl ProtocolSpec for StarProtocol {
    fn label(&self) -> String {
        match self {
            StarProtocol::GlobalClock => "global clock (Theorem 20)".into(),
            StarProtocol::LocalClock { q } => format!("local-clock ALOHA (q = {q})"),
        }
    }

    fn lambda_max(&self, _substrate: &Substrate) -> Result<f64, ScenarioError> {
        // Per-link capacity of the alternating schedule.
        Ok(0.5)
    }

    fn build(
        &self,
        substrate: &Substrate,
        lambda: f64,
        _provision_cap: f64,
    ) -> Result<BuiltProtocol, ScenarioError> {
        // The star protocols are slot-level: no frame structure. The
        // instance is rebuilt deterministically from the substrate size
        // (star_instance(m) has m − 1 short links plus the long one).
        let star = star_instance(substrate.num_links);
        let protocol: Box<dyn dps_core::protocol::Protocol + Send> = match self {
            StarProtocol::GlobalClock => Box::new(GlobalClockStarProtocol::new(&star)),
            StarProtocol::LocalClock { q } => Box::new(LocalClockAlohaProtocol::new(&star, *q)),
        };
        Ok(BuiltProtocol {
            protocol,
            frame_len: 1,
            lambda_max: 0.5,
            provisioned: lambda,
        })
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m = 16;
    let lambda = 0.4;
    let slots = 30_000;
    println!(
        "Figure 1 star instance: {} short links + 1 long link",
        m - 1
    );

    let scenario_for = |protocol: StarProtocol| Scenario {
        name: format!("star-lowerbound/{}", protocol.label()),
        substrate: Box::new(StarSubstrate { m }),
        protocol: Box::new(protocol),
        injector: Box::new(InjectionConfig {
            lambda,
            ..InjectionConfig::default()
        }),
        lambda,
        relative_lambda: false,
        smoothing: None,
        validate_window: None,
        run: RunConfig {
            frames: slots, // frameless protocols: one slot per frame
            seed: 3,
            provision_cap: 0.95,
            events: true,
        },
    };

    let global = scenario_for(StarProtocol::GlobalClock).run()?;
    let local = scenario_for(StarProtocol::LocalClock { q: 0.75 }).run()?;

    println!("\n         slot   global backlog   local backlog");
    let series = global
        .report
        .backlog_series
        .iter()
        .zip(&local.report.backlog_series);
    for (i, (&(slot, g), &(_, l))) in series.enumerate() {
        if i % 64 == 63 {
            println!("{:>13}   {:>14}   {:>13}", slot, g, l);
        }
    }
    println!(
        "\nglobal clock: backlog {} ({:?}) — local clock: long link starved, backlog {} ({:?})",
        global.report.final_backlog, global.verdict, local.report.final_backlog, local.verdict,
    );
    assert!(global.verdict.is_stable(), "global clock must be stable");
    assert!(
        local.report.final_backlog > 10 * global.report.final_backlog.max(1),
        "local clocks must starve the long link"
    );
    Ok(())
}
