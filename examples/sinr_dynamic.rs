//! SINR scenario (Corollary 12): a random wireless network with linear
//! power assignments served by the dynamic protocol built from the
//! two-stage decay scheduler — constant-competitive, independent of the
//! network size.
//!
//! The example prints the interference landscape (measure of the full
//! demand, affectance samples), builds the protocol, and compares a stable
//! run against an overloaded one.
//!
//! Run with `cargo run --release --example sinr_dynamic`.

use dps::prelude::*;
use dps_core::injection::stochastic::uniform_generators;
use dps_core::interference::InterferenceModel;
use dps_core::load::LinkLoad;
use dps_core::rng::split_stream;
use dps_core::staticsched::StaticScheduler;
use dps_sinr::instances::random_instance;
use dps_sinr::matrix::SinrInterference;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m = 24;
    let params = SinrParams::default_noiseless();
    let mut geo_rng = split_stream(7, 0);
    let net = random_instance(m, 110.0, 1.0, 3.0, params, &mut geo_rng);
    println!(
        "random SINR instance: m = {m} links, side 110, lengths 1–3, Δ = {:.2}",
        net.length_diversity()
    );

    // Linear powers: every link's signal arrives at equal strength.
    let power = LinearPower::new(params.alpha);
    let model = SinrInterference::fixed_power(&net, &power);
    let one_each = LinkLoad::from_links(m, net.network().link_ids());
    println!(
        "interference measure of one-packet-per-link: I = {:.2} (≪ m = {m} thanks to spatial reuse)",
        model.measure(&one_each)
    );

    // The protocol: two-stage decay scheduler inside the frame structure.
    let scheduler = TwoStageDecayScheduler::new(m);
    let lambda_max = 1.0 / scheduler.f_of(m);
    let lambda = 0.6 * lambda_max;
    println!(
        "scheduler '{}': f(m) = {:.1}, max rate 1/f = {lambda_max:.4}, injecting at {lambda:.4}",
        scheduler.name(),
        scheduler.f_of(m)
    );
    let config = FrameConfig::tuned(&scheduler, m, lambda)?;
    println!(
        "frame: T = {} slots (main {}, clean-up {})",
        config.frame_len, config.main_budget, config.cleanup_budget
    );

    let phy = SinrFeasibility::new(net.clone(), power);
    let routes: Vec<_> = net
        .network()
        .link_ids()
        .map(|l| dps_core::path::RoutePath::single_hop(l).shared())
        .collect();

    for (label, rate) in [("stable", lambda), ("overload", 3.0 * lambda_max)] {
        let mut protocol =
            DynamicProtocol::new(scheduler, config.clone(), net.num_links());
        let mut injector =
            uniform_generators(routes.clone(), 0.01)?.scaled_to_rate(&model, rate)?;
        let slots = 25 * config.frame_len as u64;
        let report = run_simulation(
            &mut protocol,
            &mut injector,
            &phy,
            SimulationConfig::new(slots, 99),
        );
        let verdict = classify_stability(&report, 0.05);
        println!(
            "{label:>9}: rate {rate:.4} | injected {:>6} delivered {:>6} backlog {:>5} | {:?}",
            report.injected, report.delivered, report.final_backlog, verdict
        );
    }
    Ok(())
}
