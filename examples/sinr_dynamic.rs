//! SINR scenario (Corollary 12): a random wireless network with linear
//! power assignments served by the dynamic protocol built from the
//! two-stage decay scheduler — constant-competitive, independent of the
//! network size.
//!
//! The example builds the `sinr-linear` registry preset's substrate to
//! print the interference landscape, then sweeps a stable and an
//! overloaded rate through the scenario API.
//!
//! Run with `cargo run --release --example sinr_dynamic`.

use dps::prelude::*;
use dps_core::interference::InterferenceModel;
use dps_core::load::LinkLoad;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut spec = registry::spec_for("sinr-linear")?;
    spec = spec.with_size(24).with_seed(99);
    spec.run.frames = 25;

    // Peek under the declarative surface: the substrate factory exposes
    // the built interference model.
    let substrate = spec.substrate.build()?;
    let m = substrate.num_links;
    println!("substrate: {}", substrate.label);
    let one_each = LinkLoad::from_links(m, (0..m as u32).map(dps_core::ids::LinkId));
    println!(
        "interference measure of one-packet-per-link: I = {:.2} (≪ m = {m} thanks to spatial reuse)",
        substrate.model.measure(&one_each)
    );

    // λ is capacity-relative in this preset: 0.6·λ_max vs 3·λ_max.
    let report = Sweep::new(spec).over_lambdas(&[0.6, 3.0]).run()?;
    for cell in &report.cells {
        let o = &cell.outcome;
        let label = if cell.point.lambda < 1.0 {
            "stable"
        } else {
            "overload"
        };
        println!(
            "{label:>9}: rate {:.4} (capacity {:.4}, T = {}) | injected {:>6} delivered {:>6} backlog {:>5} | {:?}",
            o.lambda, o.lambda_max, o.frame_len,
            o.report.injected, o.report.delivered, o.report.final_backlog, o.verdict
        );
    }
    Ok(())
}
