//! **dps** — *Dynamic Packet Scheduling in Wireless Networks* (Thomas
//! Kesselheim, PODC 2012), reproduced as a Rust workspace.
//!
//! This facade crate re-exports every member crate and offers a combined
//! [`prelude`]. The pieces:
//!
//! * [`dps_core`] — the linear-interference-measure model, injection
//!   models, static scheduling algorithms, **Algorithm 1** (the dense
//!   -instance transformation) and the **dynamic frame protocol**;
//! * [`dps_sinr`] — the SINR substrate (geometry, power assignments,
//!   affectance, exact feasibility, the Figure 1 star instance);
//! * [`dps_conflict`] — conflict graphs, inductive independence, protocol
//!   model / distance-2 matching / node constraints;
//! * [`dps_mac`] — the multiple-access channel (Algorithm 2 and
//!   Round-Robin-Withholding);
//! * [`dps_routing`] — packet-routing workloads (`W = identity`);
//! * [`dps_sim`] — the slotted simulation engine, metrics and stability
//!   classification;
//! * [`dps_scenario`] — the unified scenario API: declarative specs
//!   (TOML/JSON), the named-preset registry, and the parallel sweep
//!   driver.
//!
//! # Defining scenarios
//!
//! The scenario layer is the front door: describe a run declaratively and
//! execute it, instead of hand-wiring injector + protocol + feasibility:
//!
//! ```
//! use dps::prelude::*;
//!
//! // From the registry (see `scenario list` for all presets)…
//! let spec = registry::spec_for("ring-routing")?;
//! // …or from TOML/JSON via ScenarioSpec::from_toml / from_json.
//! let outcome = Scenario::from_spec(&spec.with_lambda(0.6))?.run()?;
//! assert!(outcome.verdict.is_stable());
//!
//! // Sweeps spread one spec over a (λ, m, seed, repetition) grid in
//! // parallel; same spec + seed ⇒ identical results on any thread count.
//! let report = Sweep::new(registry::spec_for("ring-routing")?.with_seed(7))
//!     .over_lambdas(&[0.5, 1.3])
//!     .threads(2)
//!     .run()?;
//! assert_eq!(report.cells.len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Each registry preset exercises one paper claim:
//!
//! | Preset | Paper | Substrate family |
//! |--------|-------|------------------|
//! | `ring-routing` | Theorem 3 (§4) | packet routing |
//! | `line-routing`, `grid-routing` | §7 | packet routing |
//! | `routing-sis` | §7 (baseline) | packet routing |
//! | `sinr-linear` | Corollary 12 (§6) | SINR |
//! | `sinr-uniform` | Corollary 13 (§6) | SINR |
//! | `mac-symmetric` | Corollary 16 (§7.1) | multiple-access channel |
//! | `mac-roundrobin` | Corollary 18 (§7.1) | multiple-access channel |
//! | `conflict-coloring` | Theorem 19 (§7.2) | conflict graph |
//! | `conflict-transformed` | §3 + §7.2 | conflict graph |
//! | `adversarial-ring` | Theorem 11 (§5) | packet routing + adversary |
//!
//! # Quickstart
//!
//! Build a protocol from a static algorithm, inject packets, observe
//! stability:
//!
//! ```
//! use dps::prelude::*;
//!
//! // An 8-link ring, identity interference (= packet routing).
//! let setup = dps::dps_routing::workloads::RoutingSetup::ring(8, 2)?;
//!
//! // The paper's transformation: frame protocol around a static algorithm.
//! let config = FrameConfig::tuned(&GreedyPerLink::new(), 8, 0.9)?;
//! let mut protocol = DynamicProtocol::new(GreedyPerLink::new(), config.clone(), 8);
//!
//! // Stochastic injection at rate 0.5 < 1/f(m) = 1.
//! let mut injector = dps::dps_core::injection::stochastic::uniform_generators(
//!     setup.routes.clone(), 0.05)?.scaled_to_rate(&setup.model, 0.5)?;
//!
//! let report = run_simulation(
//!     &mut protocol,
//!     &mut injector,
//!     &setup.feasibility,
//!     SimulationConfig::new(20 * config.frame_len as u64, 7),
//! );
//! assert_eq!(report.delivered + report.final_backlog as u64, report.injected);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub use dps_conflict;
pub use dps_core;
pub use dps_mac;
pub use dps_routing;
pub use dps_scenario;
pub use dps_sim;
pub use dps_sinr;

/// Combined prelude of every member crate.
pub mod prelude {
    pub use dps_conflict::prelude::*;
    pub use dps_core::prelude::*;
    pub use dps_mac::prelude::*;
    pub use dps_routing::prelude::*;
    pub use dps_scenario::prelude::*;
    pub use dps_sim::prelude::*;
    pub use dps_sinr::prelude::*;
}
