//! **dps** — *Dynamic Packet Scheduling in Wireless Networks* (Thomas
//! Kesselheim, PODC 2012), reproduced as a Rust workspace.
//!
//! This facade crate re-exports every member crate and offers a combined
//! [`prelude`]. The pieces:
//!
//! * [`dps_core`] — the linear-interference-measure model, injection
//!   models, static scheduling algorithms, **Algorithm 1** (the dense
//!   -instance transformation) and the **dynamic frame protocol**;
//! * [`dps_sinr`] — the SINR substrate (geometry, power assignments,
//!   affectance, exact feasibility, the Figure 1 star instance);
//! * [`dps_conflict`] — conflict graphs, inductive independence, protocol
//!   model / distance-2 matching / node constraints;
//! * [`dps_mac`] — the multiple-access channel (Algorithm 2 and
//!   Round-Robin-Withholding);
//! * [`dps_routing`] — packet-routing workloads (`W = identity`);
//! * [`dps_sim`] — the slotted simulation engine, metrics and stability
//!   classification.
//!
//! # Quickstart
//!
//! Build a protocol from a static algorithm, inject packets, observe
//! stability:
//!
//! ```
//! use dps::prelude::*;
//!
//! // An 8-link ring, identity interference (= packet routing).
//! let setup = dps::dps_routing::workloads::RoutingSetup::ring(8, 2)?;
//!
//! // The paper's transformation: frame protocol around a static algorithm.
//! let config = FrameConfig::tuned(&GreedyPerLink::new(), 8, 0.9)?;
//! let mut protocol = DynamicProtocol::new(GreedyPerLink::new(), config.clone(), 8);
//!
//! // Stochastic injection at rate 0.5 < 1/f(m) = 1.
//! let mut injector = dps::dps_core::injection::stochastic::uniform_generators(
//!     setup.routes.clone(), 0.05)?.scaled_to_rate(&setup.model, 0.5)?;
//!
//! let report = run_simulation(
//!     &mut protocol,
//!     &mut injector,
//!     &setup.feasibility,
//!     SimulationConfig::new(20 * config.frame_len as u64, 7),
//! );
//! assert_eq!(report.delivered + report.final_backlog as u64, report.injected);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub use dps_conflict;
pub use dps_core;
pub use dps_mac;
pub use dps_routing;
pub use dps_sim;
pub use dps_sinr;

/// Combined prelude of every member crate.
pub mod prelude {
    pub use dps_conflict::prelude::*;
    pub use dps_core::prelude::*;
    pub use dps_mac::prelude::*;
    pub use dps_routing::prelude::*;
    pub use dps_sim::prelude::*;
    pub use dps_sinr::prelude::*;
}
