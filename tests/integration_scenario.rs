//! Integration tests of the unified scenario API through the `dps`
//! facade: declarative specs, the preset registry across all substrate
//! families, and cross-thread determinism.

use dps::prelude::*;

#[test]
fn toml_spec_runs_end_to_end() {
    let spec = ScenarioSpec::from_toml(
        r#"
        name = "integration ring"

        [substrate]
        kind = "ring-routing"
        nodes = 6
        hops = 2

        [protocol]
        kind = "frame-greedy"

        [injection]
        kind = "stochastic"
        lambda = 0.5

        [run]
        frames = 30
        seed = 9
    "#,
    )
    .expect("valid TOML spec");
    let outcome = Scenario::from_spec(&spec).unwrap().run().unwrap();
    assert!(outcome.report.injected > 0);
    assert_eq!(
        outcome.report.delivered + outcome.report.final_backlog as u64,
        outcome.report.injected
    );
    assert!(outcome.verdict.is_stable(), "{:?}", outcome.verdict);
}

#[test]
fn json_spec_equals_toml_spec() {
    let spec = registry::spec_for("grid-routing").unwrap();
    let via_json = ScenarioSpec::from_json(&spec.to_json()).unwrap();
    let via_toml = ScenarioSpec::from_toml(&spec.to_toml()).unwrap();
    assert_eq!(via_json, spec);
    assert_eq!(via_toml, spec);
}

/// Presets across all four substrate families build and run (short
/// horizons; the verdicts of full-length runs are covered by E2/E5/E8/E11
/// and the scenario crate's own tests).
#[test]
fn presets_span_every_substrate_family() {
    let quick: &[(&str, u64)] = &[
        ("ring-routing", 10),     // routing
        ("routing-sis", 200),     // routing baseline, frameless
        ("mac-roundrobin", 5),    // multiple-access channel
        ("conflict-coloring", 3), // conflict graph
        ("adversarial-ring", 5),  // adversarial injection
        ("sinr-linear", 1),       // SINR
    ];
    for &(name, frames) in quick {
        let mut spec = registry::spec_for(name).unwrap();
        spec.run.frames = frames;
        if name == "sinr-linear" {
            // Shrink the instance so the two-stage frame stays small.
            spec = spec.with_size(6);
        }
        let outcome = Scenario::from_spec(&spec)
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .run()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(outcome.report.injected > 0, "{name} injected nothing");
        assert_eq!(
            outcome.report.delivered + outcome.report.final_backlog as u64,
            outcome.report.injected,
            "{name} lost packets"
        );
    }
}

/// Same spec + seed ⇒ identical `SimulationReport`s whether the
/// repetitions run on 1 thread or 4.
#[test]
fn sweep_is_deterministic_across_thread_counts() {
    let mut spec = registry::spec_for("ring-routing").unwrap();
    spec.run.frames = 10;
    let run = |threads: usize| {
        Sweep::new(spec.clone())
            .over_lambdas(&[0.4, 0.9])
            .repetitions(2)
            .threads(threads)
            .run()
            .unwrap()
    };
    let single = run(1);
    let multi = run(4);
    assert_eq!(single.cells.len(), multi.cells.len());
    for (a, b) in single.cells.iter().zip(&multi.cells) {
        assert_eq!(a.point, b.point);
        let (ra, rb) = (&a.outcome.report, &b.outcome.report);
        assert_eq!(ra.injected, rb.injected);
        assert_eq!(ra.delivered, rb.delivered);
        assert_eq!(ra.final_backlog, rb.final_backlog);
        assert_eq!(ra.latencies, rb.latencies);
        assert_eq!(ra.backlog_series, rb.backlog_series);
        assert_eq!(ra.attempts, rb.attempts);
    }
}

/// Folds the decision-relevant trace of every sweep cell into one FNV
/// fingerprint: any diverging scheduling decision anywhere in the grid
/// changes the value.
fn sweep_fingerprint(report: &SweepReport) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut fold = |v: u64| {
        hash = (hash ^ v).wrapping_mul(0x1000_0000_01b3);
    };
    for cell in &report.cells {
        let r = &cell.outcome.report;
        fold(cell.point.rep);
        fold(r.injected);
        fold(r.delivered);
        fold(r.final_backlog as u64);
        fold(r.attempts);
        fold(r.successes);
        for &(slot, backlog) in &r.backlog_series {
            fold(slot);
            fold(backlog as u64);
        }
        for &latency in &r.latencies {
            fold(latency);
        }
    }
    hash
}

/// Golden fingerprint of the substrate-sharing layer: a SINR sweep run
/// on shared substrates (one topology per distinct grid key, handed to
/// all λ/repetition cells) produces bit-for-bit the cells of per-cell
/// construction — both the sharing-disabled sweep and direct
/// `run_stream` rebuilds.
#[test]
fn shared_substrate_sweep_matches_per_cell_construction() {
    let mut spec = registry::spec_for("sinr-dense").unwrap().with_size(12);
    spec.run.frames = 4;
    let lambdas = [0.4, 0.9];
    let reps = 2;
    let sweep = |shared: bool| {
        Sweep::new(spec.clone())
            .over_lambdas(&lambdas)
            .repetitions(reps)
            .threads(2)
            .share_substrates(shared)
            .run()
            .unwrap()
    };
    let shared = sweep(true);
    let rebuilt = sweep(false);
    assert_eq!(shared.cells.len(), 4);
    // Cell-by-cell: the full decision-relevant trace must match.
    for (a, b) in shared.cells.iter().zip(&rebuilt.cells) {
        assert_eq!(a.point, b.point);
        let (ra, rb) = (&a.outcome.report, &b.outcome.report);
        assert_eq!(ra.injected, rb.injected);
        assert_eq!(ra.delivered, rb.delivered);
        assert_eq!(ra.final_backlog, rb.final_backlog);
        assert_eq!(ra.latencies, rb.latencies);
        assert_eq!(ra.backlog_series, rb.backlog_series);
        assert_eq!(ra.attempts, rb.attempts);
        assert_eq!(ra.successes, rb.successes);
    }
    assert_eq!(
        sweep_fingerprint(&shared),
        sweep_fingerprint(&rebuilt),
        "substrate sharing changed a scheduling decision"
    );
    // And against fully independent per-cell construction, bypassing the
    // sweep machinery altogether.
    for cell in &shared.cells {
        let cell_spec = spec.clone().with_lambda(cell.point.lambda);
        let direct = Scenario::from_spec(&cell_spec)
            .unwrap()
            .run_stream(cell.point.rep)
            .unwrap();
        assert_eq!(cell.outcome.report.injected, direct.report.injected);
        assert_eq!(cell.outcome.report.delivered, direct.report.delivered);
        assert_eq!(cell.outcome.report.latencies, direct.report.latencies);
        assert_eq!(
            cell.outcome.report.backlog_series,
            direct.report.backlog_series
        );
    }
}

/// Invalid specs are rejected with spec errors, not panics.
#[test]
fn invalid_specs_are_rejected() {
    let base = registry::spec_for("ring-routing").unwrap();
    assert!(base.clone().with_lambda(0.0).validate().is_err());
    assert!(base.clone().with_lambda(f64::NAN).validate().is_err());
    let mut bad = base.clone();
    bad.substrate = SubstrateConfig::RingRouting { nodes: 0, hops: 1 };
    assert!(bad.validate().is_err());
    let mut bad = base;
    bad.run.provision_cap = 1.5;
    assert!(bad.validate().is_err());
}
