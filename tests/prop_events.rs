//! Property-based equivalence of the event-driven slot-skipping engine
//! and the per-slot reference loop.
//!
//! The fast path in `dps_sim::runner` may only jump over slots that are
//! provably inert, so across *any* specification — sparse or dense,
//! small or large, any seed — the two engines must produce identical
//! `SimulationReport`s (minus the skip diagnostic), identical trace
//! streams, and identical frame-event fingerprints. These properties
//! probe that contract on randomly drawn configurations at both the
//! scenario layer (boxed factories, preset specs) and the raw
//! simulation layer (where the trace and the frame log are visible).

use dps::prelude::*;
use dps_core::dynamic::FrameEvent;
use dps_core::feasibility::PerLinkFeasibility;
use dps_core::ids::LinkId;
use dps_core::injection::batch::BatchStochasticInjector;
use dps_core::injection::stochastic::uniform_generators;
use dps_core::path::RoutePath;
use dps_sim::runner::run_simulation_traced;
use dps_sim::trace::TraceRecorder;
use proptest::prelude::*;

/// Asserts every `SimulationReport` field except the skip diagnostic is
/// bit-for-bit equal between the event-driven and per-slot runs.
fn check_reports(fast: &SimulationReport, slow: &SimulationReport) -> Result<(), TestCaseError> {
    prop_assert_eq!(fast.injected, slow.injected);
    prop_assert_eq!(fast.delivered, slow.delivered);
    prop_assert_eq!(&fast.backlog_series, &slow.backlog_series);
    prop_assert_eq!(fast.final_backlog, slow.final_backlog);
    prop_assert_eq!(&fast.latencies, &slow.latencies);
    prop_assert_eq!(&fast.path_lens, &slow.path_lens);
    prop_assert_eq!(fast.potential.samples(), slow.potential.samples());
    prop_assert_eq!(fast.attempts, slow.attempts);
    prop_assert_eq!(fast.successes, slow.successes);
    prop_assert_eq!(fast.slots, slow.slots);
    prop_assert_eq!(slow.idle_slots_skipped, 0u64);
    Ok(())
}

/// FNV-1a digest of a frame-event stream — the "frame fingerprint" the
/// golden tests in `dps-core` pin, recomputed here over both engines.
fn frame_fingerprint(events: &[FrameEvent]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        for byte in v.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for e in events {
        eat(e.frame);
        eat(e.active_at_start as u64);
        eat(e.newly_failed as u64);
        eat(e.cleanup_selected as u64);
        eat(e.cleanup_served as u64);
        eat(e.potential_after);
    }
    hash
}

/// A single-hop ring workload at per-link rate `lambda`, ready to run.
fn ring_setup(
    m: usize,
    lambda: f64,
) -> (
    DynamicProtocol<GreedyPerLink>,
    BatchStochasticInjector,
    PerLinkFeasibility,
) {
    let config = FrameConfig::tuned(&GreedyPerLink::new(), m, 0.9).unwrap();
    let protocol = DynamicProtocol::new(GreedyPerLink::new(), config, m);
    let routes: Vec<_> = (0..m as u32)
        .map(|l| RoutePath::single_hop(LinkId(l)).shared())
        .collect();
    let injector = BatchStochasticInjector::new(uniform_generators(routes, lambda).unwrap());
    (protocol, injector, PerLinkFeasibility::new(m))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Scenario layer, sparse regime: the `sparse-ring` preset with a
    /// per-link rate swept over three orders of magnitude (crossing the
    /// batch injector's calendar → dense → counting mode thresholds),
    /// random ring sizes, horizons and seeds.
    #[test]
    fn sparse_preset_reports_match_across_engines(
        rate_exp in 0u32..8,
        nodes in 12usize..48,
        frames in 4u64..12,
        seed in 0u64..10_000,
    ) {
        let lambda = 1e-4 * 3f64.powi(rate_exp as i32);
        let mut spec = registry::spec_for("sparse-ring")
            .unwrap()
            .with_lambda(lambda)
            .with_size(nodes)
            .with_seed(seed);
        spec.run.frames = frames;
        let fast = Scenario::from_spec(&spec).unwrap().run().unwrap();
        spec.run.events = false;
        let slow = Scenario::from_spec(&spec).unwrap().run().unwrap();
        check_reports(&fast.report, &slow.report)?;
    }

    /// Scenario layer, dense regime: `ring-routing` (multi-hop routes,
    /// near-capacity load) must also be transparent — here the engine
    /// mostly degrades to per-slot stepping, and doing so must not
    /// change a single decision either.
    #[test]
    fn dense_preset_reports_match_across_engines(
        lambda in 0.1f64..0.8,
        frames in 4u64..12,
        seed in 0u64..10_000,
    ) {
        let mut spec = registry::spec_for("ring-routing")
            .unwrap()
            .with_lambda(lambda)
            .with_seed(seed);
        spec.run.frames = frames;
        let fast = Scenario::from_spec(&spec).unwrap().run().unwrap();
        spec.run.events = false;
        let slow = Scenario::from_spec(&spec).unwrap().run().unwrap();
        check_reports(&fast.report, &slow.report)?;
    }

    /// Simulation layer: with the trace recorder and the frame log in
    /// view, the expanded fast trace must equal the per-slot trace and
    /// the frame fingerprints must collide, across random sizes, rates
    /// spanning sparse to dense, and seeds.
    #[test]
    fn traces_and_frame_fingerprints_match_across_engines(
        m in 2usize..7,
        rate_exp in 0u32..8,
        seed in 0u64..10_000,
    ) {
        let lambda = 1e-4 * 3f64.powi(rate_exp as i32);
        let slots = 20_000u64;
        let cfg = SimulationConfig::new(slots, seed).with_sample_every(500);

        let (mut p1, mut i1, phy1) = ring_setup(m, lambda);
        let mut fast_trace = TraceRecorder::new(slots as usize);
        let fast = run_simulation_traced(
            &mut p1, &mut i1, &phy1, cfg.with_events(true), &mut fast_trace,
        );

        let (mut p2, mut i2, phy2) = ring_setup(m, lambda);
        let mut slow_trace = TraceRecorder::new(slots as usize);
        let slow = run_simulation_traced(
            &mut p2, &mut i2, &phy2, cfg.with_events(false), &mut slow_trace,
        );

        check_reports(&fast, &slow)?;

        let slow_records: Vec<_> = slow_trace.records().copied().collect();
        prop_assert_eq!(fast_trace.expand(), slow_records);

        let fast_frames = p1.take_frame_events();
        let slow_frames = p2.take_frame_events();
        prop_assert_eq!(
            frame_fingerprint(&fast_frames),
            frame_fingerprint(&slow_frames),
            "frame fingerprints diverged at m={} lambda={}",
            m,
            lambda
        );
        prop_assert_eq!(fast_frames, slow_frames);

        // Coverage guard: in the genuinely sparse regime the fast run
        // must actually have exercised the jump machinery.
        if lambda < 1e-3 {
            prop_assert!(
                fast.idle_slots_skipped > 0,
                "sparse run (lambda={}) never skipped a slot",
                lambda
            );
        }
    }
}
