//! Property-based tests (proptest) of the model invariants every proof in
//! the paper leans on.

use dps::prelude::*;
use dps_core::injection::Injector;
use dps_core::interference::{validate, InterferenceModel};
use dps_core::load::LinkLoad;
use dps_core::rng::split_stream;
use dps_core::staticsched::{requests_measure, run_static, Request, StaticScheduler};
use dps_sinr::instances::random_instance;
use dps_sinr::matrix::SinrInterference;
use proptest::prelude::*;

fn arb_load(m: usize) -> impl Strategy<Value = LinkLoad> {
    proptest::collection::vec(0.0f64..5.0, m).prop_map(move |values| {
        let mut load = LinkLoad::new(m);
        for (i, v) in values.into_iter().enumerate() {
            load.set(dps_core::ids::LinkId(i as u32), v);
        }
        load
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every SINR matrix construction satisfies the structural invariants
    /// of the abstract model (unit diagonal, entries in [0, 1]).
    #[test]
    fn sinr_matrices_are_valid_interference_models(seed in 0u64..500) {
        let mut rng = split_stream(seed, 0);
        let params = SinrParams::default_noiseless();
        let net = random_instance(6, 40.0, 1.0, 4.0, params, &mut rng);
        let linear = LinearPower::new(params.alpha);
        let sqrt = SquareRootPower::new(params.alpha);
        prop_assert!(validate(&SinrInterference::fixed_power(&net, &linear)).is_ok());
        prop_assert!(validate(&SinrInterference::fixed_power(&net, &UniformPower::unit())).is_ok());
        prop_assert!(validate(&SinrInterference::monotone_power(&net, &sqrt)).is_ok());
        prop_assert!(validate(&SinrInterference::power_control(&net)).is_ok());
    }

    /// The interference measure is monotone and sub-additive in the load —
    /// the two properties the injection-rate definition relies on.
    #[test]
    fn measure_is_monotone_and_subadditive(
        a in arb_load(6),
        b in arb_load(6),
        seed in 0u64..100,
    ) {
        let mut rng = split_stream(seed, 1);
        let params = SinrParams::default_noiseless();
        let net = random_instance(6, 30.0, 1.0, 3.0, params, &mut rng);
        let model = SinrInterference::fixed_power(&net, &UniformPower::unit());
        let mut sum = a.clone();
        sum.merge(&b);
        let ma = model.measure(&a);
        let mb = model.measure(&b);
        let msum = model.measure(&sum);
        prop_assert!(msum + 1e-9 >= ma.max(mb), "monotone: {msum} vs {ma}, {mb}");
        prop_assert!(msum <= ma + mb + 1e-9, "subadditive: {msum} vs {ma} + {mb}");
    }

    /// Measure scales linearly with the load (it is a linear measure).
    #[test]
    fn measure_is_homogeneous(load in arb_load(5), factor in 0.1f64..4.0) {
        let model = dps_core::interference::CompleteInterference::new(5);
        let mut scaled = load.clone();
        scaled.scale(factor);
        prop_assert!((model.measure(&scaled) - factor * model.measure(&load)).abs() < 1e-6);
    }

    /// Every adversary implementation honours its (w, λ) bound on every
    /// random configuration.
    #[test]
    fn adversaries_are_window_bounded(
        lambda in 0.05f64..1.5,
        w in 4usize..64,
        m in 2usize..10,
        seed in 0u64..100,
    ) {
        let routes: Vec<_> = (0..m as u32)
            .map(|l| dps_core::path::RoutePath::single_hop(dps_core::ids::LinkId(l)).shared())
            .collect();
        let model = dps_core::interference::IdentityInterference::new(m);
        let adversaries: Vec<Box<dyn Injector>> = vec![
            Box::new(SmoothAdversary::new(model, routes.clone(), w, lambda)),
            Box::new(BurstyAdversary::new(model, routes.clone(), w, lambda)),
            Box::new(SingleEdgeAdversary::new(model, routes[0].clone(), w, lambda)),
            Box::new(RoundRobinAdversary::new(model, routes.clone(), w, lambda)),
        ];
        let mut rng = split_stream(seed, 2);
        for mut adv in adversaries {
            let mut validator = WindowValidator::new(model, w);
            for slot in 0..(6 * w as u64) {
                let injected = adv.inject(slot, &mut rng);
                validator.record_slot(injected.iter().map(|p| p.as_ref()));
            }
            prop_assert!(
                validator.is_bounded(lambda),
                "effective rate {} exceeds {lambda}",
                validator.effective_rate()
            );
        }
    }

    /// The stochastic injector's analytic rate matches its empirical rate.
    #[test]
    fn stochastic_rate_matches_empirical(p in 0.01f64..0.5, m in 1usize..6, seed in 0u64..50) {
        let routes: Vec<_> = (0..m as u32)
            .map(|l| dps_core::path::RoutePath::single_hop(dps_core::ids::LinkId(l)).shared())
            .collect();
        let mut injector =
            dps_core::injection::stochastic::uniform_generators(routes, p).unwrap();
        let model = dps_core::interference::CompleteInterference::new(m);
        let analytic = injector.rate(&model);
        let mut rng = split_stream(seed, 3);
        let slots = 4000u64;
        let mut count = 0usize;
        for slot in 0..slots {
            count += injector.inject(slot, &mut rng).len();
        }
        let empirical = count as f64 / slots as f64;
        // CompleteInterference rate = expected packets per slot = m·p.
        prop_assert!((analytic - m as f64 * p).abs() < 1e-9);
        let sigma = (m as f64 * p * (1.0 - p) / slots as f64).sqrt();
        prop_assert!(
            (empirical - analytic).abs() < 6.0 * sigma + 0.01,
            "empirical {empirical} vs analytic {analytic}"
        );
    }

    /// Static schedulers serve every request within their declared budget
    /// (the whp guarantee, probed across random instances).
    #[test]
    fn greedy_serves_within_budget(links in proptest::collection::vec(0u32..6, 1..40)) {
        let requests: Vec<Request> = links
            .iter()
            .enumerate()
            .map(|(i, &l)| Request {
                packet: dps_core::ids::PacketId(i as u64),
                link: dps_core::ids::LinkId(l),
            })
            .collect();
        let model = dps_core::interference::IdentityInterference::new(6);
        let i = requests_measure(&model, &requests);
        let scheduler = GreedyPerLink::new();
        let feas = dps_core::feasibility::PerLinkFeasibility::new(6);
        let mut rng = split_stream(1, 4);
        let budget = scheduler.slots_needed(i, requests.len());
        let result = run_static(&scheduler, &requests, i, &feas, budget, &mut rng);
        prop_assert!(result.all_served());
        prop_assert!(result.slots_used as f64 <= i + 1.0);
    }

    /// Conservation: across random rates (including overload), the dynamic
    /// protocol never loses or duplicates a packet.
    #[test]
    fn dynamic_protocol_conserves_packets(lambda in 0.1f64..1.4, seed in 0u64..30) {
        let setup = dps_routing::workloads::RoutingSetup::ring(4, 1).unwrap();
        let config = FrameConfig::tuned(&GreedyPerLink::new(), 4, 0.9).unwrap();
        let mut protocol = DynamicProtocol::new(GreedyPerLink::new(), config.clone(), 4);
        // Two generators per route so per-link rates above 1 stay within
        // the per-generator probability constraint.
        let routes: Vec<_> = setup
            .routes
            .iter()
            .chain(setup.routes.iter())
            .cloned()
            .collect();
        let mut injector =
            dps_core::injection::stochastic::uniform_generators(routes, 0.01)
                .unwrap()
                .scaled_to_rate(&setup.model, lambda)
                .unwrap();
        let report = run_simulation(
            &mut protocol,
            &mut injector,
            &setup.feasibility,
            SimulationConfig::new(10 * config.frame_len as u64 + 13, seed),
        );
        prop_assert_eq!(report.delivered + report.final_backlog as u64, report.injected);
    }
}
