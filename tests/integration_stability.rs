//! Cross-crate integration tests: the headline qualitative results of the
//! paper, each exercised end to end through the public API of the facade
//! crate.

use dps::prelude::*;
use dps_core::injection::stochastic::uniform_generators;
use dps_core::injection::Injector;
use dps_core::path::RoutePath;
use dps_core::protocol::Protocol;
use dps_core::staticsched::StaticScheduler;
use dps_routing::workloads::RoutingSetup;
use dps_sinr::instances::random_instance;
use dps_sinr::matrix::SinrInterference;

/// Helper: run a dynamic protocol against an injector/oracle and classify.
#[allow(clippy::too_many_arguments)]
fn classify<S: StaticScheduler + Clone + 'static>(
    scheduler: S,
    m: usize,
    num_links: usize,
    lambda_cfg: f64,
    injector: &mut dyn Injector,
    phy: &dyn dps_core::feasibility::Feasibility,
    frames: u64,
    seed: u64,
) -> (dps_sim::runner::SimulationReport, StabilityVerdict) {
    let config = FrameConfig::tuned(&scheduler, m, lambda_cfg).expect("valid config");
    let mut protocol = DynamicProtocol::new(scheduler, config.clone(), num_links);
    let report = run_simulation(
        &mut protocol,
        injector,
        phy,
        SimulationConfig::new(frames * config.frame_len as u64, seed),
    );
    let verdict = classify_stability(&report, 0.05);
    (report, verdict)
}

#[test]
fn routing_stable_below_one_unstable_above() {
    let setup = RoutingSetup::ring(8, 2).unwrap();
    let mut low = uniform_generators(setup.routes.clone(), 0.01)
        .unwrap()
        .scaled_to_rate(&setup.model, 0.6)
        .unwrap();
    let (report, verdict) = classify(
        GreedyPerLink::new(),
        8,
        8,
        0.9,
        &mut low,
        &setup.feasibility,
        60,
        1,
    );
    assert!(verdict.is_stable(), "{verdict:?}");
    assert_eq!(
        report.delivered + report.final_backlog as u64,
        report.injected,
        "conservation"
    );

    let mut high = uniform_generators(setup.routes.clone(), 0.01)
        .unwrap()
        .scaled_to_rate(&setup.model, 1.5)
        .unwrap();
    let (_, verdict) = classify(
        GreedyPerLink::new(),
        8,
        8,
        0.95,
        &mut high,
        &setup.feasibility,
        60,
        2,
    );
    assert!(!verdict.is_stable(), "overload must diverge: {verdict:?}");
}

#[test]
fn sinr_linear_power_protocol_is_stable_at_half_rate() {
    let m = 16;
    let params = SinrParams::default_noiseless();
    let mut geo_rng = dps_core::rng::split_stream(11, 0);
    let net = random_instance(m, 80.0, 1.0, 3.0, params, &mut geo_rng);
    let power = LinearPower::new(params.alpha);
    let model = SinrInterference::fixed_power(&net, &power);
    let phy = SinrFeasibility::new(net.clone(), power);
    let scheduler = TwoStageDecayScheduler::new(m);
    let lambda = 0.5 / scheduler.f_of(m);
    let routes: Vec<_> = net
        .network()
        .link_ids()
        .map(|l| RoutePath::single_hop(l).shared())
        .collect();
    let mut injector = uniform_generators(routes, 0.01)
        .unwrap()
        .scaled_to_rate(&model, lambda)
        .unwrap();
    let (report, verdict) = classify(scheduler, m, m, lambda, &mut injector, &phy, 20, 3);
    assert!(verdict.is_stable(), "{verdict:?}");
    assert!(report.delivered > 0);
}

#[test]
fn mac_symmetric_threshold_is_between_quarter_and_one() {
    let m = 8;
    let scheduler = SymmetricMacScheduler::new(0.5, 1.0);
    let lambda_max = 1.0 / scheduler.f_of(m); // 1/(1.5e) ≈ 0.245
    let model = CompleteInterference::new(m);
    let phy = SingleChannelFeasibility::new();
    let routes: Vec<_> = (0..m as u32)
        .map(|l| RoutePath::single_hop(dps_core::ids::LinkId(l)).shared())
        .collect();

    let mut below = uniform_generators(routes.clone(), 0.001)
        .unwrap()
        .scaled_to_rate(&model, 0.6 * lambda_max)
        .unwrap();
    let (_, verdict) = classify(scheduler, m, m, 0.6 * lambda_max, &mut below, &phy, 40, 4);
    assert!(verdict.is_stable(), "below threshold: {verdict:?}");

    // Provision at 70% of capacity: the frame length scales as
    // Θ(overhead/ε²) and Algorithm 2's tail overhead makes near-threshold
    // configurations prohibitively long to simulate.
    let mut above = uniform_generators(routes, 0.001)
        .unwrap()
        .scaled_to_rate(&model, 0.8) // far above 1/e
        .unwrap();
    let (_, verdict) = classify(scheduler, m, m, 0.7 * lambda_max, &mut above, &phy, 40, 5);
    assert!(!verdict.is_stable(), "above 1/e must diverge: {verdict:?}");
}

#[test]
fn star_instance_separates_global_from_local_clock() {
    let star = star_instance(12);
    let oracle = SinrFeasibility::new(star.net.clone(), UniformPower::unit());
    let routes: Vec<_> = star
        .short_links
        .iter()
        .chain(std::iter::once(&star.long_link))
        .map(|&l| RoutePath::single_hop(l).shared())
        .collect();
    let model = dps_core::interference::IdentityInterference::new(star.net.num_links());
    let run = |protocol: &mut dyn Protocol, seed: u64| {
        let mut injector = uniform_generators(routes.clone(), 0.01)
            .unwrap()
            .scaled_to_rate(&model, 0.4)
            .unwrap();
        run_simulation(
            protocol,
            &mut injector,
            &oracle,
            SimulationConfig::new(15_000, seed),
        )
    };
    let mut global = GlobalClockStarProtocol::new(&star);
    let g_report = run(&mut global, 6);
    let mut local = LocalClockAlohaProtocol::new(&star, 0.75);
    let l_report = run(&mut local, 7);
    assert!(classify_stability(&g_report, 0.05).is_stable());
    assert!(!classify_stability(&l_report, 0.05).is_stable());
    assert!(global.long_queue_len() < 100);
    assert!(local.long_queue_len() > 1000);
}

#[test]
fn jammed_network_stays_stable_at_reduced_rate() {
    // A jammer blocking 25% of slots: the protocol provisioned with enough
    // headroom absorbs it (failures are drained by clean-up phases).
    let setup = RoutingSetup::ring(4, 1).unwrap();
    let jammed = JammedFeasibility::new(setup.feasibility, 8, 2);
    let mut injector = uniform_generators(setup.routes.clone(), 0.01)
        .unwrap()
        .scaled_to_rate(&setup.model, 0.4)
        .unwrap();
    let (report, verdict) = classify(
        GreedyPerLink::new(),
        4,
        4,
        0.9,
        &mut injector,
        &jammed,
        80,
        9,
    );
    assert!(verdict.is_stable(), "{verdict:?}");
    assert_eq!(
        report.delivered + report.final_backlog as u64,
        report.injected,
        "conservation under jamming"
    );
}

#[test]
fn lossy_network_reduces_but_keeps_stability() {
    // Section 9's extension: random transmission loss, protocol still
    // stable at reduced rate.
    let setup = RoutingSetup::ring(6, 1).unwrap();
    let lossy = LossyFeasibility::new(setup.feasibility, 0.2);
    let mut injector = uniform_generators(setup.routes.clone(), 0.01)
        .unwrap()
        .scaled_to_rate(&setup.model, 0.5)
        .unwrap();
    let (report, verdict) = classify(
        GreedyPerLink::new(),
        6,
        6,
        0.9,
        &mut injector,
        &lossy,
        60,
        8,
    );
    assert!(verdict.is_stable(), "{verdict:?}");
    // Losses force failures through the clean-up path: the potential
    // machinery must have been exercised.
    assert!(report.potential.max() > 0 || report.delivered > 0);
}
