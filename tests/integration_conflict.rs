//! Cross-crate tests of the Section 7.2 conflict-graph results on the
//! node-constrained model (each node sends or receives at most one packet
//! per slot), which the paper singles out as having bounded independence
//! and therefore constant-competitive protocols.

use dps::prelude::*;
use dps_core::graph::ring_network;
use dps_core::injection::stochastic::uniform_generators;

use dps_core::path::RoutePath;
use dps_core::staticsched::StaticScheduler;

#[test]
fn node_constrained_ring_has_small_inductive_independence() {
    let net = ring_network(10);
    let graph = node_constrained(&net);
    let pi = degeneracy_ordering(&graph);
    let rho = rho_for_ordering(&graph, &pi);
    assert!(
        rho <= 2,
        "line graphs have inductive independence <= 2, got {rho}"
    );
}

#[test]
fn node_constrained_dynamic_protocol_is_stable() {
    let m = 10;
    let net = ring_network(m);
    let graph = node_constrained(&net);
    let pi = degeneracy_ordering(&graph);
    let model = ConflictInterference::new(graph.clone(), &pi);
    let phy = IndependentSetFeasibility::new(graph);

    // The substrate-agnostic two-stage scheduler at half its rate.
    let scheduler = TwoStageDecayScheduler::new(m);
    let lambda = 0.5 / scheduler.f_of(m);
    let config = FrameConfig::tuned(&scheduler, m, lambda).expect("valid config");
    let mut protocol = DynamicProtocol::new(scheduler, config.clone(), m);

    let routes: Vec<_> = net
        .link_ids()
        .map(|l| RoutePath::single_hop(l).shared())
        .collect();
    let mut injector = uniform_generators(routes, 0.001)
        .unwrap()
        .scaled_to_rate(&model, lambda)
        .unwrap();
    let report = run_simulation(
        &mut protocol,
        &mut injector,
        &phy,
        SimulationConfig::new(15 * config.frame_len as u64, 17),
    );
    let verdict = classify_stability(&report, 0.05);
    assert!(verdict.is_stable(), "{verdict:?}");
    assert_eq!(
        report.delivered + report.final_backlog as u64,
        report.injected,
        "conservation"
    );
    assert!(report.delivered > 0);
}

#[test]
fn feasible_slots_are_matchings_under_node_constraints() {
    // Every successful slot under the node-constrained oracle is a
    // matching in the underlying graph: no two successes share a node.
    let net = ring_network(6);
    let graph = node_constrained(&net);
    let phy = IndependentSetFeasibility::new(graph);
    let mut rng = dps_core::rng::split_stream(3, 0);
    use dps_core::feasibility::{Attempt, Feasibility};
    let attempts: Vec<Attempt> = net
        .link_ids()
        .map(|l| Attempt {
            link: l,
            packet: dps_core::ids::PacketId(l.index() as u64),
        })
        .collect();
    let successes = phy.successes(&attempts, &mut rng);
    let winners: Vec<_> = attempts
        .iter()
        .zip(&successes)
        .filter(|(_, &ok)| ok)
        .map(|(a, _)| net.link(a.link))
        .collect();
    for (i, a) in winners.iter().enumerate() {
        for b in &winners[i + 1..] {
            assert!(
                a.src != b.src && a.src != b.dst && a.dst != b.src && a.dst != b.dst,
                "successes must form a matching"
            );
        }
    }
}
