//! Conflict-graph substrate for *Dynamic Packet Scheduling in Wireless
//! Networks* (Kesselheim, PODC 2012), Section 7.2.
//!
//! A conflict graph has the network's links as vertices; an edge between
//! two links means their transmissions cannot succeed simultaneously. The
//! paper shows that for conflict graphs with **inductive independence
//! number** `ρ`, a 0/1 interference matrix derived from the witnessing
//! vertex ordering yields `O(ρ·log m)`-competitive protocols — covering the
//! radio-network model in disk graphs, the protocol model, distance-2
//! matching, and the node-constrained model (each link endpoint handles one
//! packet per slot).
//!
//! Contents:
//!
//! * [`graph::ConflictGraph`] — the graph itself;
//! * [`models`] — constructions from geometry and network topology;
//! * [`inductive`] — inductive independence: exact `ρ` for a given
//!   ordering, degeneracy orderings as witnesses;
//! * [`matrix::ConflictInterference`] — the §7.2 interference matrix;
//! * [`feasibility::IndependentSetFeasibility`] — transmissions succeed iff
//!   the set of transmitting links is independent;
//! * [`coloring::GreedyColoringScheduler`] — a deterministic coloring
//!   baseline to compare the randomized algorithms against.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod coloring;
pub mod feasibility;
pub mod graph;
pub mod inductive;
pub mod matrix;
pub mod models;

/// Convenience re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::coloring::GreedyColoringScheduler;
    pub use crate::feasibility::IndependentSetFeasibility;
    pub use crate::graph::ConflictGraph;
    pub use crate::inductive::{degeneracy_ordering, rho_for_ordering};
    pub use crate::matrix::ConflictInterference;
    pub use crate::models::{distance2_matching, node_constrained, protocol_model};
}
