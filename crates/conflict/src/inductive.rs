//! Inductive independence (Definition 1 of the paper, following [41, 31]).
//!
//! A graph has inductive independence number `ρ` if some vertex ordering
//! `π` satisfies: for every vertex `v` and every independent set `M`, at
//! most `ρ` members of `M` are neighbours of `v` that precede `v` in `π`.
//! Disk graphs, the protocol model and distance-2 matching in disk graphs
//! all have small constant `ρ` under length/radius orderings.

use crate::graph::ConflictGraph;
use dps_core::ids::LinkId;

/// The exact `ρ` realized by the ordering `pi` (maps position → link):
/// the largest independent subset of any vertex's *preceding* neighbours.
///
/// Exponential in the worst case (it solves maximum independent set on
/// each back-neighbourhood); intended for the moderate-degree graphs of
/// the tests and experiments.
///
/// # Panics
///
/// Panics if `pi` is not a permutation of all links.
pub fn rho_for_ordering(graph: &ConflictGraph, pi: &[LinkId]) -> usize {
    let m = graph.num_links();
    assert_eq!(pi.len(), m, "ordering must cover every link");
    let mut position = vec![usize::MAX; m];
    for (pos, &link) in pi.iter().enumerate() {
        assert!(
            position[link.index()] == usize::MAX,
            "ordering repeats link {link}"
        );
        position[link.index()] = pos;
    }
    let mut rho = 0;
    for &v in pi {
        let preceding: Vec<LinkId> = graph
            .neighbors(v)
            .iter()
            .copied()
            .filter(|u| position[u.index()] < position[v.index()])
            .collect();
        rho = rho.max(max_independent_set_size(graph, &preceding));
    }
    rho
}

/// Size of a maximum independent subset of `candidates` (branch and bound).
fn max_independent_set_size(graph: &ConflictGraph, candidates: &[LinkId]) -> usize {
    fn recurse(graph: &ConflictGraph, remaining: &[LinkId], chosen: usize, best: &mut usize) {
        if chosen + remaining.len() <= *best {
            return;
        }
        match remaining.first() {
            None => {
                *best = (*best).max(chosen);
            }
            Some(&v) => {
                // Branch 1: take v, drop its neighbours.
                let rest: Vec<LinkId> = remaining[1..]
                    .iter()
                    .copied()
                    .filter(|&u| !graph.conflicts(u, v))
                    .collect();
                recurse(graph, &rest, chosen + 1, best);
                // Branch 2: skip v.
                recurse(graph, &remaining[1..], chosen, best);
            }
        }
    }
    let mut best = 0;
    recurse(graph, candidates, 0, &mut best);
    best
}

/// A degeneracy ordering (smallest-degree-last): repeatedly remove a
/// minimum-degree vertex; the reverse removal order is a classic witness
/// ordering whose `ρ` is at most the graph's degeneracy.
pub fn degeneracy_ordering(graph: &ConflictGraph) -> Vec<LinkId> {
    let m = graph.num_links();
    let mut degree: Vec<usize> = (0..m).map(|i| graph.degree(LinkId(i as u32))).collect();
    let mut removed = vec![false; m];
    let mut removal = Vec::with_capacity(m);
    for _ in 0..m {
        let v = (0..m)
            .filter(|&i| !removed[i])
            .min_by_key(|&i| degree[i])
            .expect("vertices remain");
        removed[v] = true;
        removal.push(LinkId(v as u32));
        for &u in graph.neighbors(LinkId(v as u32)) {
            if !removed[u.index()] {
                degree[u.index()] -= 1;
            }
        }
    }
    removal.reverse();
    removal
}

/// An ordering by the given key (ascending) — e.g. link lengths for disk
/// and protocol-model graphs, where shorter-first orderings witness small
/// `ρ`.
pub fn ordering_by_key(num_links: usize, key: impl Fn(LinkId) -> f64) -> Vec<LinkId> {
    let mut pi: Vec<LinkId> = (0..num_links as u32).map(LinkId).collect();
    pi.sort_by(|&a, &b| key(a).partial_cmp(&key(b)).expect("finite keys"));
    pi
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> ConflictGraph {
        let mut g = ConflictGraph::new(n);
        for i in 0..n - 1 {
            g.add_conflict(LinkId(i as u32), LinkId(i as u32 + 1));
        }
        g
    }

    #[test]
    fn independent_graph_has_rho_zero() {
        let g = ConflictGraph::new(4);
        let pi = degeneracy_ordering(&g);
        assert_eq!(rho_for_ordering(&g, &pi), 0);
    }

    #[test]
    fn path_has_rho_one_under_degeneracy_ordering() {
        let g = path_graph(6);
        let pi = degeneracy_ordering(&g);
        assert_eq!(rho_for_ordering(&g, &pi), 1);
    }

    #[test]
    fn star_center_last_gives_large_rho() {
        // Star K_{1,4}: centre 0 conflicts with 1..4.
        let mut g = ConflictGraph::new(5);
        for i in 1..5 {
            g.add_conflict(LinkId(0), LinkId(i));
        }
        // Centre last: its 4 preceding neighbours are independent → ρ = 4.
        let bad: Vec<LinkId> = vec![LinkId(1), LinkId(2), LinkId(3), LinkId(4), LinkId(0)];
        assert_eq!(rho_for_ordering(&g, &bad), 4);
        // Centre first: every leaf sees only the centre before it → ρ = 1.
        let good: Vec<LinkId> = vec![LinkId(0), LinkId(1), LinkId(2), LinkId(3), LinkId(4)];
        assert_eq!(rho_for_ordering(&g, &good), 1);
        // Degeneracy ordering puts the centre early.
        let pi = degeneracy_ordering(&g);
        assert_eq!(rho_for_ordering(&g, &pi), 1);
    }

    #[test]
    fn clique_has_rho_one() {
        let mut g = ConflictGraph::new(4);
        for i in 0..4u32 {
            for j in i + 1..4 {
                g.add_conflict(LinkId(i), LinkId(j));
            }
        }
        let pi = degeneracy_ordering(&g);
        assert_eq!(rho_for_ordering(&g, &pi), 1);
    }

    #[test]
    fn ordering_by_key_sorts_ascending() {
        let pi = ordering_by_key(3, |l| -(l.index() as f64));
        assert_eq!(pi, vec![LinkId(2), LinkId(1), LinkId(0)]);
    }

    #[test]
    #[should_panic(expected = "cover every link")]
    fn rho_rejects_partial_ordering() {
        let g = path_graph(3);
        let _ = rho_for_ordering(&g, &[LinkId(0)]);
    }
}
