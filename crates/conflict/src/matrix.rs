//! The §7.2 interference matrix: `W[e][e'] = 1` iff `e` and `e'` conflict
//! and `π(e') ≤ π(e)` — every row is charged only by conflicting links
//! that come *earlier* in the witness ordering, so the measure of a
//! feasible (independent) set stays at most `ρ` and no protocol can beat
//! injection rate `ρ`.

use crate::graph::ConflictGraph;
use dps_core::ids::LinkId;
use dps_core::interference::InterferenceModel;
use std::sync::Arc;

/// The 0/1 conflict interference matrix of Section 7.2.
#[derive(Clone, Debug)]
pub struct ConflictInterference {
    graph: Arc<ConflictGraph>,
    /// position[link] = rank of the link in the ordering π.
    position: Vec<usize>,
}

impl ConflictInterference {
    /// Creates the matrix from a conflict graph and the ordering `pi`
    /// (position → link).
    ///
    /// # Panics
    ///
    /// Panics if `pi` is not a permutation of the graph's links.
    pub fn new(graph: ConflictGraph, pi: &[LinkId]) -> Self {
        assert_eq!(
            pi.len(),
            graph.num_links(),
            "ordering must cover every link"
        );
        let mut position = vec![usize::MAX; graph.num_links()];
        for (pos, &link) in pi.iter().enumerate() {
            assert!(
                position[link.index()] == usize::MAX,
                "ordering repeats link {link}"
            );
            position[link.index()] = pos;
        }
        ConflictInterference {
            graph: Arc::new(graph),
            position,
        }
    }

    /// The underlying conflict graph.
    pub fn graph(&self) -> &ConflictGraph {
        &self.graph
    }

    /// Rank of `link` in the witness ordering.
    pub fn rank(&self, link: LinkId) -> usize {
        self.position[link.index()]
    }
}

impl InterferenceModel for ConflictInterference {
    fn num_links(&self) -> usize {
        self.graph.num_links()
    }

    fn weight(&self, on: LinkId, from: LinkId) -> f64 {
        let earlier_conflict = self.graph.conflicts(on, from)
            && self.position[from.index()] <= self.position[on.index()];
        if on == from || earlier_conflict {
            1.0
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_core::interference::validate;
    use dps_core::load::LinkLoad;

    fn path3() -> ConflictGraph {
        let mut g = ConflictGraph::new(3);
        g.add_conflict(LinkId(0), LinkId(1));
        g.add_conflict(LinkId(1), LinkId(2));
        g
    }

    fn identity_ordering(m: usize) -> Vec<LinkId> {
        (0..m as u32).map(LinkId).collect()
    }

    #[test]
    fn satisfies_model_invariants() {
        let w = ConflictInterference::new(path3(), &identity_ordering(3));
        validate(&w).unwrap();
    }

    #[test]
    fn charges_only_earlier_conflicting_links() {
        let w = ConflictInterference::new(path3(), &identity_ordering(3));
        // Link 1 conflicts with 0 (earlier) and 2 (later).
        assert_eq!(w.weight(LinkId(1), LinkId(0)), 1.0);
        assert_eq!(w.weight(LinkId(1), LinkId(2)), 0.0);
        // Link 2 conflicts with 1 (earlier).
        assert_eq!(w.weight(LinkId(2), LinkId(1)), 1.0);
        // Non-conflicting pair stays zero both ways.
        assert_eq!(w.weight(LinkId(0), LinkId(2)), 0.0);
        assert_eq!(w.weight(LinkId(2), LinkId(0)), 0.0);
    }

    #[test]
    fn measure_of_independent_set_stays_small() {
        // Independent set {0, 2} of the path: each row sees only itself.
        let w = ConflictInterference::new(path3(), &identity_ordering(3));
        let load = LinkLoad::from_links(3, [LinkId(0), LinkId(2)]);
        assert_eq!(w.measure(&load), 1.0);
    }

    #[test]
    fn measure_counts_conflicting_earlier_load() {
        let w = ConflictInterference::new(path3(), &identity_ordering(3));
        let mut load = LinkLoad::new(3);
        load.set(LinkId(0), 5.0);
        load.set(LinkId(1), 1.0);
        // Row 1: own load 1 + earlier conflicting load 5.
        assert_eq!(w.row_load(LinkId(1), &load), 6.0);
        assert_eq!(w.measure(&load), 6.0);
    }

    #[test]
    fn ordering_direction_matters() {
        let reversed: Vec<LinkId> = identity_ordering(3).into_iter().rev().collect();
        let w = ConflictInterference::new(path3(), &reversed);
        // Now link 1 is charged by link 2 (earlier in reversed order).
        assert_eq!(w.weight(LinkId(1), LinkId(2)), 1.0);
        assert_eq!(w.weight(LinkId(1), LinkId(0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "repeats link")]
    fn rejects_duplicate_ordering() {
        let _ = ConflictInterference::new(path3(), &[LinkId(0), LinkId(0), LinkId(1)]);
    }
}
