//! The conflict graph: vertices are communication links, edges are
//! pairwise exclusions.

use dps_core::ids::LinkId;
use serde::{Deserialize, Serialize};

/// An undirected conflict graph over `m` links.
///
/// Stored as both an adjacency matrix (O(1) conflict queries, used by the
/// feasibility oracle every slot) and adjacency lists (fast neighbourhood
/// iteration for orderings and coloring).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConflictGraph {
    num_links: usize,
    adjacency: Vec<bool>,
    neighbors: Vec<Vec<LinkId>>,
}

impl ConflictGraph {
    /// Creates a conflict-free graph over `num_links` links.
    pub fn new(num_links: usize) -> Self {
        ConflictGraph {
            num_links,
            adjacency: vec![false; num_links * num_links],
            neighbors: vec![Vec::new(); num_links],
        }
    }

    /// Creates the graph from an explicit conflict list.
    pub fn from_conflicts(num_links: usize, conflicts: &[(LinkId, LinkId)]) -> Self {
        let mut g = ConflictGraph::new(num_links);
        for &(a, b) in conflicts {
            g.add_conflict(a, b);
        }
        g
    }

    /// Declares `a` and `b` mutually exclusive.
    ///
    /// Self-conflicts are ignored (every link trivially excludes itself);
    /// duplicate declarations are idempotent.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn add_conflict(&mut self, a: LinkId, b: LinkId) {
        assert!(a.index() < self.num_links, "link {a} out of range");
        assert!(b.index() < self.num_links, "link {b} out of range");
        if a == b || self.conflicts(a, b) {
            return;
        }
        self.adjacency[a.index() * self.num_links + b.index()] = true;
        self.adjacency[b.index() * self.num_links + a.index()] = true;
        self.neighbors[a.index()].push(b);
        self.neighbors[b.index()].push(a);
    }

    /// Number of links (vertices).
    pub fn num_links(&self) -> usize {
        self.num_links
    }

    /// Whether `a` and `b` conflict.
    pub fn conflicts(&self, a: LinkId, b: LinkId) -> bool {
        self.adjacency[a.index() * self.num_links + b.index()]
    }

    /// The links conflicting with `link`.
    pub fn neighbors(&self, link: LinkId) -> &[LinkId] {
        &self.neighbors[link.index()]
    }

    /// Degree of `link` in the conflict graph.
    pub fn degree(&self, link: LinkId) -> usize {
        self.neighbors[link.index()].len()
    }

    /// Total number of conflict edges.
    pub fn num_conflicts(&self) -> usize {
        self.neighbors.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Whether `set` is independent (no two members conflict).
    pub fn is_independent(&self, set: &[LinkId]) -> bool {
        for (i, &a) in set.iter().enumerate() {
            for &b in &set[i + 1..] {
                if self.conflicts(a, b) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> ConflictGraph {
        ConflictGraph::from_conflicts(
            3,
            &[
                (LinkId(0), LinkId(1)),
                (LinkId(1), LinkId(2)),
                (LinkId(2), LinkId(0)),
            ],
        )
    }

    #[test]
    fn conflicts_are_symmetric() {
        let g = triangle();
        assert!(g.conflicts(LinkId(0), LinkId(1)));
        assert!(g.conflicts(LinkId(1), LinkId(0)));
        assert_eq!(g.num_conflicts(), 3);
    }

    #[test]
    fn self_conflicts_ignored() {
        let mut g = ConflictGraph::new(2);
        g.add_conflict(LinkId(0), LinkId(0));
        assert!(!g.conflicts(LinkId(0), LinkId(0)));
        assert_eq!(g.num_conflicts(), 0);
    }

    #[test]
    fn duplicate_conflicts_idempotent() {
        let mut g = ConflictGraph::new(2);
        g.add_conflict(LinkId(0), LinkId(1));
        g.add_conflict(LinkId(1), LinkId(0));
        assert_eq!(g.degree(LinkId(0)), 1);
        assert_eq!(g.num_conflicts(), 1);
    }

    #[test]
    fn independence_check() {
        let g = triangle();
        assert!(g.is_independent(&[LinkId(0)]));
        assert!(g.is_independent(&[]));
        assert!(!g.is_independent(&[LinkId(0), LinkId(1)]));
        let mut path = ConflictGraph::new(3);
        path.add_conflict(LinkId(0), LinkId(1));
        path.add_conflict(LinkId(1), LinkId(2));
        assert!(path.is_independent(&[LinkId(0), LinkId(2)]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_links() {
        let mut g = ConflictGraph::new(2);
        g.add_conflict(LinkId(0), LinkId(5));
    }
}
