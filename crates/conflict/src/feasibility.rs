//! Feasibility in conflict-graph models: a slot's transmissions succeed
//! iff the transmitting links form an independent set (and each link
//! carries at most one packet).
//!
//! Failures are local: a transmission fails iff *it* conflicts with some
//! other transmitting link; non-conflicting transmissions in the same slot
//! still succeed.

use crate::graph::ConflictGraph;
use dps_core::feasibility::{Attempt, Feasibility};
use rand::RngCore;
use std::sync::Arc;

/// Independent-set feasibility over a conflict graph.
#[derive(Clone, Debug)]
pub struct IndependentSetFeasibility {
    graph: Arc<ConflictGraph>,
}

impl IndependentSetFeasibility {
    /// Creates the oracle.
    pub fn new(graph: ConflictGraph) -> Self {
        IndependentSetFeasibility {
            graph: Arc::new(graph),
        }
    }

    /// Shares an existing graph.
    pub fn from_shared(graph: Arc<ConflictGraph>) -> Self {
        IndependentSetFeasibility { graph }
    }

    /// The underlying conflict graph.
    pub fn graph(&self) -> &ConflictGraph {
        &self.graph
    }
}

impl Feasibility for IndependentSetFeasibility {
    fn successes(&self, attempts: &[Attempt], _rng: &mut dyn RngCore) -> Vec<bool> {
        let mut mult = vec![0u32; self.graph.num_links()];
        for a in attempts {
            mult[a.link.index()] += 1;
        }
        let active: Vec<usize> = mult
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| i)
            .collect();
        attempts
            .iter()
            .map(|a| {
                if mult[a.link.index()] != 1 {
                    return false;
                }
                active.iter().all(|&other| {
                    other == a.link.index()
                        || !self
                            .graph
                            .conflicts(a.link, dps_core::ids::LinkId(other as u32))
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_core::ids::{LinkId, PacketId};
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn attempt(link: u32, packet: u64) -> Attempt {
        Attempt {
            link: LinkId(link),
            packet: PacketId(packet),
        }
    }

    fn path3() -> IndependentSetFeasibility {
        let mut g = ConflictGraph::new(3);
        g.add_conflict(LinkId(0), LinkId(1));
        g.add_conflict(LinkId(1), LinkId(2));
        IndependentSetFeasibility::new(g)
    }

    #[test]
    fn independent_transmissions_succeed() {
        let oracle = path3();
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let res = oracle.successes(&[attempt(0, 1), attempt(2, 2)], &mut rng);
        assert_eq!(res, vec![true, true]);
    }

    #[test]
    fn conflicting_transmissions_both_fail() {
        let oracle = path3();
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let res = oracle.successes(&[attempt(0, 1), attempt(1, 2)], &mut rng);
        assert_eq!(res, vec![false, false]);
    }

    #[test]
    fn failure_is_local_to_the_conflict() {
        // 0-1 conflict while 2 only conflicts with 1: when 0 and 1 collide,
        // 2 fails too (it conflicts with transmitting 1)… unless it doesn't
        // conflict: rebuild with only the 0-1 edge.
        let mut g = ConflictGraph::new(3);
        g.add_conflict(LinkId(0), LinkId(1));
        let oracle = IndependentSetFeasibility::new(g);
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let res = oracle.successes(&[attempt(0, 1), attempt(1, 2), attempt(2, 3)], &mut rng);
        assert_eq!(res, vec![false, false, true]);
    }

    #[test]
    fn same_link_collision_fails() {
        let oracle = path3();
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let res = oracle.successes(&[attempt(0, 1), attempt(0, 2)], &mut rng);
        assert_eq!(res, vec![false, false]);
    }
}
