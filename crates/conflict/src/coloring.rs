//! A deterministic greedy-coloring scheduler: the classical centralized
//! baseline the randomized distributed algorithms are compared against in
//! experiment E9.
//!
//! Requests are colored greedily along the witness ordering; all requests
//! of one color form an independent set and are transmitted in one slot.
//! The number of colors — and hence the schedule length — is at most
//! `ρ·I` for a graph of inductive independence `ρ` (each request sees at
//! most `ρ` earlier-ordered conflicting *classes* per unit of measure,
//! plus its own link's congestion).

use crate::graph::ConflictGraph;
use dps_core::staticsched::{Request, StaticAlgorithm, StaticScheduler};
use rand::RngCore;
use std::sync::Arc;

/// Greedy coloring along a fixed ordering of the links.
#[derive(Clone, Debug)]
pub struct GreedyColoringScheduler {
    graph: Arc<ConflictGraph>,
    /// position[link] = rank in the coloring order.
    position: Vec<usize>,
}

impl GreedyColoringScheduler {
    /// Creates the scheduler coloring along `pi` (position → link).
    ///
    /// # Panics
    ///
    /// Panics if `pi` is not a permutation of the graph's links.
    pub fn new(graph: ConflictGraph, pi: &[dps_core::ids::LinkId]) -> Self {
        assert_eq!(
            pi.len(),
            graph.num_links(),
            "ordering must cover every link"
        );
        let mut position = vec![usize::MAX; graph.num_links()];
        for (pos, &link) in pi.iter().enumerate() {
            assert!(
                position[link.index()] == usize::MAX,
                "ordering repeats link {link}"
            );
            position[link.index()] = pos;
        }
        GreedyColoringScheduler {
            graph: Arc::new(graph),
            position,
        }
    }

    /// Colors the requests; returns per-request colors (slot indices).
    pub fn color(&self, requests: &[Request]) -> Vec<usize> {
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by_key(|&i| self.position[requests[i].link.index()]);
        let mut colors = vec![usize::MAX; requests.len()];
        for &i in &order {
            // Forbidden: colors of already-colored requests on the same
            // link or on conflicting links.
            let mut used: Vec<bool> = Vec::new();
            for (j, &c) in colors.iter().enumerate() {
                if c == usize::MAX {
                    continue;
                }
                let same_link = requests[j].link == requests[i].link;
                if same_link || self.graph.conflicts(requests[j].link, requests[i].link) {
                    if c >= used.len() {
                        used.resize(c + 1, false);
                    }
                    used[c] = true;
                }
            }
            colors[i] = used.iter().position(|&u| !u).unwrap_or(used.len());
        }
        colors
    }
}

impl StaticScheduler for GreedyColoringScheduler {
    fn instantiate(
        &self,
        requests: &[Request],
        _measure_bound: f64,
        _rng: &mut dyn RngCore,
    ) -> Box<dyn StaticAlgorithm> {
        let colors = self.color(requests);
        let num_colors = colors.iter().copied().max().map_or(0, |c| c + 1);
        let mut plan: Vec<Vec<usize>> = vec![Vec::new(); num_colors];
        for (i, &c) in colors.iter().enumerate() {
            plan[c].push(i);
        }
        Box::new(ColoringRun {
            plan,
            cursor: 0,
            pending: vec![true; requests.len()],
            remaining: requests.len(),
        })
    }

    fn f_of(&self, _n: usize) -> f64 {
        // Greedy along a ρ-witnessing order uses at most ~ρ·I + I colors;
        // experiments report the realized value.
        2.0
    }

    fn g_of(&self, _n: usize) -> f64 {
        1.0
    }

    fn name(&self) -> &str {
        "greedy-coloring"
    }
}

struct ColoringRun {
    plan: Vec<Vec<usize>>,
    cursor: usize,
    pending: Vec<bool>,
    remaining: usize,
}

impl StaticAlgorithm for ColoringRun {
    fn attempts(&mut self, _rng: &mut dyn RngCore) -> Vec<usize> {
        if self.cursor >= self.plan.len() {
            return Vec::new();
        }
        let slot = self.cursor;
        self.cursor += 1;
        self.plan[slot]
            .iter()
            .copied()
            .filter(|&i| self.pending[i])
            .collect()
    }

    fn ack(&mut self, idx: usize) {
        if std::mem::replace(&mut self.pending[idx], false) {
            self.remaining -= 1;
        }
    }

    fn is_done(&self) -> bool {
        self.remaining == 0 || self.cursor >= self.plan.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::IndependentSetFeasibility;
    use dps_core::ids::{LinkId, PacketId};
    use dps_core::staticsched::run_static;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn path3() -> ConflictGraph {
        let mut g = ConflictGraph::new(3);
        g.add_conflict(LinkId(0), LinkId(1));
        g.add_conflict(LinkId(1), LinkId(2));
        g
    }

    fn identity_ordering(m: usize) -> Vec<LinkId> {
        (0..m as u32).map(LinkId).collect()
    }

    fn requests(links: &[u32]) -> Vec<Request> {
        links
            .iter()
            .enumerate()
            .map(|(i, &l)| Request {
                packet: PacketId(i as u64),
                link: LinkId(l),
            })
            .collect()
    }

    #[test]
    fn coloring_separates_conflicts() {
        let s = GreedyColoringScheduler::new(path3(), &identity_ordering(3));
        let reqs = requests(&[0, 1, 2]);
        let colors = s.color(&reqs);
        assert_ne!(colors[0], colors[1]);
        assert_ne!(colors[1], colors[2]);
        // 0 and 2 are independent: greedy reuses the color.
        assert_eq!(colors[0], colors[2]);
    }

    #[test]
    fn duplicate_link_requests_get_distinct_colors() {
        let s = GreedyColoringScheduler::new(ConflictGraph::new(1), &identity_ordering(1));
        let reqs = requests(&[0, 0, 0]);
        let mut colors = s.color(&reqs);
        colors.sort_unstable();
        assert_eq!(colors, vec![0, 1, 2]);
    }

    #[test]
    fn schedule_is_conflict_free_and_complete() {
        let graph = path3();
        let s = GreedyColoringScheduler::new(graph.clone(), &identity_ordering(3));
        let reqs = requests(&[0, 1, 2, 1, 0]);
        let oracle = IndependentSetFeasibility::new(graph);
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let result = run_static(&s, &reqs, 3.0, &oracle, 32, &mut rng);
        assert!(result.all_served(), "deterministic plan must serve all");
    }

    #[test]
    fn empty_instance_finishes_immediately() {
        let s = GreedyColoringScheduler::new(path3(), &identity_ordering(3));
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let alg = s.instantiate(&[], 0.0, &mut rng);
        assert!(alg.is_done());
    }
}
