//! Conflict-graph constructions for the interference models Section 7.2
//! names: the protocol model, the node-constrained model, and distance-2
//! matching.

use crate::graph::ConflictGraph;
use dps_core::graph::Network;
use dps_core::ids::LinkId;

/// A link with planar endpoints, the input to the geometric constructions.
#[derive(Clone, Copy, Debug)]
pub struct GeoLink {
    /// Sender coordinates.
    pub sender: (f64, f64),
    /// Receiver coordinates.
    pub receiver: (f64, f64),
}

impl GeoLink {
    /// Geometric length of the link.
    pub fn length(&self) -> f64 {
        dist(self.sender, self.receiver)
    }
}

fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

/// The protocol model with guard-zone parameter `delta ≥ 0`: links `ℓ` and
/// `ℓ'` conflict if `ℓ'`'s sender is within `(1 + δ)·d(ℓ)` of `ℓ`'s
/// receiver, or vice versa.
///
/// Under a shortest-first ordering these graphs have constant inductive
/// independence in the plane.
pub fn protocol_model(links: &[GeoLink], delta: f64) -> ConflictGraph {
    assert!(delta >= 0.0, "guard-zone parameter must be non-negative");
    let mut g = ConflictGraph::new(links.len());
    for i in 0..links.len() {
        for j in i + 1..links.len() {
            let (a, b) = (&links[i], &links[j]);
            let i_hit = dist(b.sender, a.receiver) <= (1.0 + delta) * a.length();
            let j_hit = dist(a.sender, b.receiver) <= (1.0 + delta) * b.length();
            if i_hit || j_hit {
                g.add_conflict(LinkId(i as u32), LinkId(j as u32));
            }
        }
    }
    g
}

/// The node-constrained model: each node can transmit or receive at most
/// one packet per slot, so two links conflict iff they share an endpoint.
///
/// The paper notes the resulting conflict graph has bounded independence,
/// giving constant-competitive protocols.
pub fn node_constrained(network: &Network) -> ConflictGraph {
    let mut g = ConflictGraph::new(network.num_links());
    let links: Vec<_> = network.link_ids().map(|l| network.link(l)).collect();
    for i in 0..links.len() {
        for j in i + 1..links.len() {
            let (a, b) = (links[i], links[j]);
            if a.src == b.src || a.src == b.dst || a.dst == b.src || a.dst == b.dst {
                g.add_conflict(LinkId(i as u32), LinkId(j as u32));
            }
        }
    }
    g
}

/// Distance-2 matching: links conflict if they share an endpoint **or**
/// the underlying graph has an edge between an endpoint of one and an
/// endpoint of the other (so a feasible slot is an induced matching).
pub fn distance2_matching(network: &Network) -> ConflictGraph {
    let mut g = node_constrained(network);
    let links: Vec<_> = network.link_ids().map(|l| network.link(l)).collect();
    // Endpoint adjacency via any network edge (either direction).
    let adjacent_nodes = |u: dps_core::ids::NodeId, v: dps_core::ids::NodeId| {
        network
            .outgoing(u)
            .iter()
            .any(|&e| network.link(e).dst == v)
            || network
                .outgoing(v)
                .iter()
                .any(|&e| network.link(e).dst == u)
    };
    for i in 0..links.len() {
        for j in i + 1..links.len() {
            let (a, b) = (links[i], links[j]);
            let near = [a.src, a.dst].into_iter().any(|u| {
                [b.src, b.dst]
                    .into_iter()
                    .any(|v| u != v && adjacent_nodes(u, v))
            });
            if near {
                g.add_conflict(LinkId(i as u32), LinkId(j as u32));
            }
        }
    }
    g
}

/// Random unit-length links in a square, as [`GeoLink`]s — the standard
/// workload for the protocol-model experiments.
pub fn random_geo_links(
    count: usize,
    side: f64,
    length: f64,
    rng: &mut dyn rand::RngCore,
) -> Vec<GeoLink> {
    use rand::Rng;
    (0..count)
        .map(|_| {
            let sx = rng.gen::<f64>() * side;
            let sy = rng.gen::<f64>() * side;
            let angle = rng.gen::<f64>() * std::f64::consts::TAU;
            GeoLink {
                sender: (sx, sy),
                receiver: (sx + length * angle.cos(), sy + length * angle.sin()),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inductive::{degeneracy_ordering, ordering_by_key, rho_for_ordering};
    use dps_core::graph::{line_network, ring_network};

    #[test]
    fn protocol_model_conflicts_by_proximity() {
        let links = [
            GeoLink {
                sender: (0.0, 0.0),
                receiver: (1.0, 0.0),
            },
            GeoLink {
                sender: (1.5, 0.0),
                receiver: (2.5, 0.0),
            },
            GeoLink {
                sender: (100.0, 0.0),
                receiver: (101.0, 0.0),
            },
        ];
        let g = protocol_model(&links, 0.5);
        assert!(g.conflicts(LinkId(0), LinkId(1)), "close links conflict");
        assert!(!g.conflicts(LinkId(0), LinkId(2)), "far links do not");
    }

    #[test]
    fn protocol_model_rho_is_small_for_random_unit_links() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(11);
        let links = random_geo_links(40, 20.0, 1.0, &mut rng);
        let g = protocol_model(&links, 0.5);
        let pi = ordering_by_key(g.num_links(), |l| links[l.index()].length());
        let rho = rho_for_ordering(&g, &pi);
        // Unit-disk-like geometry: constant inductive independence.
        assert!(rho <= 8, "rho {rho} unexpectedly large");
    }

    #[test]
    fn node_constrained_on_line_conflicts_neighbours() {
        let net = line_network(3);
        let g = node_constrained(&net);
        assert!(g.conflicts(LinkId(0), LinkId(1)), "share middle node");
        assert!(!g.conflicts(LinkId(0), LinkId(2)), "disjoint endpoints");
    }

    #[test]
    fn node_constrained_rho_is_at_most_two() {
        // Conflict graphs of the node-constraint model are line graphs,
        // whose inductive independence is at most 2.
        let net = ring_network(8);
        let g = node_constrained(&net);
        let pi = degeneracy_ordering(&g);
        assert!(rho_for_ordering(&g, &pi) <= 2);
    }

    #[test]
    fn distance2_extends_node_conflicts() {
        let net = line_network(3);
        let d2 = distance2_matching(&net);
        // Links 0 and 2 share no endpoint but their endpoints are joined by
        // link 1: conflict in distance-2 matching.
        assert!(d2.conflicts(LinkId(0), LinkId(2)));
        let d1 = node_constrained(&net);
        assert!(!d1.conflicts(LinkId(0), LinkId(2)));
    }

    #[test]
    fn distance2_far_links_still_independent() {
        let net = line_network(5);
        let d2 = distance2_matching(&net);
        assert!(!d2.conflicts(LinkId(0), LinkId(3)));
        assert!(d2.is_independent(&[LinkId(0), LinkId(3)]));
    }
}
