//! Unified scenario API for the Kesselheim (PODC 2012) reproduction.
//!
//! Every workload in this workspace — packet routing, SINR, the
//! multiple-access channel, conflict graphs — is the same experiment with
//! different parts plugged in: a **substrate** (network + interference
//! measure + physical feasibility + routes), a **protocol**, and an
//! **injection process**. This crate makes that composition first-class:
//!
//! * object-safe factory traits ([`SubstrateSpec`], [`ProtocolSpec`],
//!   [`InjectorSpec`]) so any combination can be boxed and composed, and
//!   custom components slot in next to the built-in ones;
//! * a serde-backed declarative [`ScenarioSpec`] (TOML and JSON) with a
//!   named-preset [`registry`] covering every substrate of experiments
//!   E1–E11;
//! * a [`Sweep`] builder spreading one spec over a `(λ, m, seed,
//!   repetition)` grid on the `std::thread::scope` parallel runner, with
//!   table/CSV/JSON output;
//! * the `scenario` CLI binary running any preset or spec file.
//!
//! # Defining scenarios
//!
//! Declaratively, from TOML (or JSON — both round-trip):
//!
//! ```
//! use dps_scenario::{Scenario, ScenarioSpec};
//!
//! let spec = ScenarioSpec::from_toml(r#"
//!     name = "ring demo"
//!
//!     [substrate]
//!     kind = "ring-routing"
//!     nodes = 8
//!     hops = 2
//!
//!     [protocol]
//!     kind = "frame-greedy"
//!
//!     [injection]
//!     kind = "stochastic"
//!     lambda = 0.5
//!
//!     [run]
//!     frames = 20
//!     seed = 42
//! "#)?;
//! let outcome = Scenario::from_spec(&spec)?.run()?;
//! assert!(outcome.verdict.is_stable());
//! assert_eq!(
//!     outcome.report.delivered + outcome.report.final_backlog as u64,
//!     outcome.report.injected,
//! );
//! # Ok::<(), dps_scenario::ScenarioError>(())
//! ```
//!
//! Or from the registry, sweeping a parameter:
//!
//! ```no_run
//! use dps_scenario::{registry, Sweep};
//!
//! let report = Sweep::new(registry::spec_for("ring-routing")?)
//!     .over_lambdas(&[0.5, 0.9, 1.3])
//!     .repetitions(4)
//!     .run()?;
//! println!("{}", report.to_table().render());
//! # Ok::<(), dps_scenario::ScenarioError>(())
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod error;
pub mod injector;
pub mod protocol;
pub mod registry;
pub mod scenario;
pub mod spec;
pub mod substrate;
pub mod sweep;

pub use cache::SubstrateCache;
pub use error::ScenarioError;
pub use injector::{InjectorSpec, NaiveStochasticSpec, ValidatingInjector};
pub use protocol::{BuiltProtocol, ProtocolSpec};
pub use scenario::{verdict_cell, Scenario, ScenarioOutcome};
pub use spec::{
    InjectionConfig, InjectionKind, PowerConfig, ProtocolConfig, RunConfig, ScenarioSpec,
    SubstrateConfig,
};
pub use substrate::{single_hop_routes, Substrate, SubstrateSpec};
pub use sweep::{Sweep, SweepCell, SweepPoint, SweepReport};

/// Convenience re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::cache::SubstrateCache;
    pub use crate::error::ScenarioError;
    pub use crate::injector::InjectorSpec;
    pub use crate::protocol::{BuiltProtocol, ProtocolSpec};
    pub use crate::registry;
    pub use crate::scenario::{Scenario, ScenarioOutcome};
    pub use crate::spec::{
        InjectionConfig, InjectionKind, ProtocolConfig, RunConfig, ScenarioSpec, SubstrateConfig,
    };
    pub use crate::substrate::{Substrate, SubstrateSpec};
    pub use crate::sweep::{Sweep, SweepReport};
}
