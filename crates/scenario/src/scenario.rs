//! Assembling specs into runnable scenarios, and running them.

use crate::error::ScenarioError;
use crate::injector::{InjectorSpec, ValidatingInjector};
use crate::protocol::ProtocolSpec;
use crate::spec::{RunConfig, ScenarioSpec};
use crate::substrate::{Substrate, SubstrateSpec};
use dps_core::dynamic::AdversarialWrapper;
use dps_sim::runner::{run_simulation, SimulationConfig, SimulationReport};
use dps_sim::stability::{classify_stability, StabilityVerdict};
use std::sync::Arc;

/// A runnable scenario: boxed substrate/protocol/injector factories plus
/// the run parameters.
///
/// Factories rather than instances, because every repetition (and every
/// sweep cell) rebuilds protocol and injector from scratch — that is what
/// makes runs a pure function of `(spec, seed, stream)` and therefore
/// identical across thread counts.
#[derive(Debug)]
pub struct Scenario {
    /// Display name, used in tables.
    pub name: String,
    /// The substrate factory.
    pub substrate: Box<dyn SubstrateSpec>,
    /// The protocol factory.
    pub protocol: Box<dyn ProtocolSpec>,
    /// The injector factory.
    pub injector: Box<dyn InjectorSpec>,
    /// Target injection rate λ (absolute measure per slot, or a fraction
    /// of capacity when `relative_lambda`).
    pub lambda: f64,
    /// Interpret `lambda` relative to the protocol's capacity `1/f(m)`.
    pub relative_lambda: bool,
    /// Wrap the protocol in the Section 5 random-delay smoother with this
    /// `delay_max` (used for adversarial injection).
    pub smoothing: Option<u64>,
    /// Validate the injection trace in a `w`-window validator and report
    /// the effective rate (used for adversarial injection).
    pub validate_window: Option<usize>,
    /// Horizon, seeding and provisioning.
    pub run: RunConfig,
}

/// Everything one scenario run produced.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// The scenario name.
    pub name: String,
    /// Substrate label.
    pub substrate: String,
    /// Protocol label.
    pub protocol: String,
    /// Injector label.
    pub injector: String,
    /// The RNG stream (repetition index) of this run.
    pub stream: u64,
    /// The absolute injection rate targeted.
    pub lambda: f64,
    /// The protocol's capacity `1/f(m)`.
    pub lambda_max: f64,
    /// The rate the protocol was provisioned for.
    pub provisioned: f64,
    /// Frame length in slots.
    pub frame_len: usize,
    /// Slots simulated.
    pub slots: u64,
    /// Effective `(w, λ)` rate observed on the injection trace, when a
    /// window validator ran.
    pub effective_rate: Option<f64>,
    /// The full simulation report.
    pub report: SimulationReport,
    /// The stability verdict.
    pub verdict: StabilityVerdict,
}

impl ScenarioOutcome {
    /// Renders the verdict as a table cell.
    pub fn verdict_cell(&self) -> String {
        verdict_cell(&self.verdict)
    }
}

/// Renders a verdict as a table cell.
pub fn verdict_cell(verdict: &StabilityVerdict) -> String {
    match verdict {
        StabilityVerdict::Stable { .. } => "stable".to_string(),
        StabilityVerdict::Unstable { slope } => format!("UNSTABLE ({slope:+.3}/slot)"),
        StabilityVerdict::Inconclusive => "inconclusive".to_string(),
    }
}

impl Scenario {
    /// Assembles a scenario from a declarative spec.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Spec`] if the spec fails validation.
    pub fn from_spec(spec: &ScenarioSpec) -> Result<Self, ScenarioError> {
        spec.validate()?;
        let adversarial = spec.injection.kind.is_adversarial();
        Ok(Scenario {
            name: spec.name.clone(),
            substrate: Box::new(spec.substrate.clone()),
            protocol: Box::new(spec.protocol.clone()),
            injector: Box::new(spec.injection.clone()),
            lambda: spec.injection.lambda,
            relative_lambda: spec.injection.relative,
            smoothing: adversarial.then_some(spec.injection.delay_max),
            validate_window: adversarial.then_some(spec.injection.window),
            run: spec.run.clone(),
        })
    }

    /// Runs stream 0.
    ///
    /// # Errors
    ///
    /// Propagates assembly errors from the component factories.
    pub fn run(&self) -> Result<ScenarioOutcome, ScenarioError> {
        self.run_stream(0)
    }

    /// Builds this scenario's substrate, shared-ready.
    ///
    /// Substrate builds are deterministic and runs never mutate them, so
    /// the returned handle can serve any number of
    /// [`run_stream_on`](Self::run_stream_on) calls — across repetitions,
    /// sweep cells and worker threads — without changing any result.
    ///
    /// # Errors
    ///
    /// Propagates the substrate factory's build error.
    pub fn build_substrate(&self) -> Result<Arc<Substrate>, ScenarioError> {
        self.substrate.build().map(Arc::new)
    }

    /// Runs one repetition on RNG stream `stream`.
    ///
    /// Substrate, protocol and injector are rebuilt from their specs, so
    /// the result depends only on `(self, stream)` — never on what other
    /// streams ran before or concurrently.
    ///
    /// # Errors
    ///
    /// Propagates assembly errors from the component factories.
    pub fn run_stream(&self, stream: u64) -> Result<ScenarioOutcome, ScenarioError> {
        let substrate = self.build_substrate()?;
        self.run_stream_on(&substrate, stream)
    }

    /// Runs one repetition on RNG stream `stream` against an
    /// already-built substrate (see [`build_substrate`](Self::build_substrate)
    /// and [`crate::cache::SubstrateCache`]).
    ///
    /// Only protocol and injector are built here; the result is
    /// bit-for-bit the [`run_stream`](Self::run_stream) result, because
    /// substrate construction is deterministic and read-only during runs.
    ///
    /// # Errors
    ///
    /// Propagates assembly errors from the component factories.
    pub fn run_stream_on(
        &self,
        substrate: &Substrate,
        stream: u64,
    ) -> Result<ScenarioOutcome, ScenarioError> {
        let lambda_max = self.protocol.lambda_max(substrate)?;
        let lambda = if self.relative_lambda {
            self.lambda * lambda_max
        } else {
            self.lambda
        };
        let built = self
            .protocol
            .build(substrate, lambda, self.run.provision_cap)?;
        let injector = self.injector.build(substrate, lambda)?;
        let slots = self.run.frames.max(1) * built.frame_len.max(1) as u64;
        let config = SimulationConfig::new(slots, self.run.seed)
            .with_stream(stream)
            .with_events(self.run.events);

        let phy = &*substrate.feasibility;
        let mut effective_rate = None;
        let report = match (self.smoothing, self.validate_window) {
            (smoothing, Some(w)) => {
                let mut validating = ValidatingInjector::new(injector, substrate.model.clone(), w);
                let report = if let Some(delay_max) = smoothing {
                    let mut wrapped =
                        AdversarialWrapper::new(built.protocol, built.frame_len, delay_max);
                    run_simulation(&mut wrapped, &mut validating, phy, config)
                } else {
                    let mut protocol = built.protocol;
                    run_simulation(&mut protocol, &mut validating, phy, config)
                };
                effective_rate = Some(validating.validator().effective_rate());
                report
            }
            (Some(delay_max), None) => {
                let mut wrapped =
                    AdversarialWrapper::new(built.protocol, built.frame_len, delay_max);
                let mut injector = injector;
                run_simulation(&mut wrapped, &mut injector, phy, config)
            }
            (None, None) => {
                let mut protocol = built.protocol;
                let mut injector = injector;
                run_simulation(&mut protocol, &mut injector, phy, config)
            }
        };
        let verdict = classify_stability(&report, 0.05);
        Ok(ScenarioOutcome {
            name: self.name.clone(),
            substrate: substrate.label.clone(),
            protocol: self.protocol.label(),
            injector: self.injector.label(),
            stream,
            lambda,
            lambda_max,
            provisioned: built.provisioned,
            frame_len: built.frame_len,
            slots,
            effective_rate,
            report,
            verdict,
        })
    }

    /// Runs `reps` independent repetitions (streams `0..reps`) on up to
    /// `threads` OS threads, in stream order.
    ///
    /// For substrate specs that opted into sharing (a `Some`
    /// [`SubstrateSpec::cache_key`] — every built-in config) the
    /// substrate is built once and shared
    /// by every repetition and worker thread; keyless custom specs keep
    /// the rebuild-per-repetition behaviour their opt-out asks for.
    /// Protocol and injector are rebuilt per stream as always.
    ///
    /// # Errors
    ///
    /// Returns the first per-stream error, if any.
    pub fn run_repetitions(
        &self,
        reps: u64,
        threads: usize,
    ) -> Result<Vec<ScenarioOutcome>, ScenarioError> {
        let shared = self
            .substrate
            .cache_key()
            .is_some()
            .then(|| self.build_substrate())
            .transpose()?;
        match &shared {
            Some(substrate) => self.run_repetitions_on(substrate, reps, threads),
            None => {
                let results = dps_sim::parallel::parallel_map(reps as usize, threads, |rep| {
                    self.run_stream(rep as u64)
                });
                results.into_iter().collect()
            }
        }
    }

    /// Runs `reps` independent repetitions (streams `0..reps`) against
    /// one caller-supplied substrate, on up to `threads` OS threads, in
    /// stream order — [`run_repetitions`](Self::run_repetitions) with
    /// the substrate held by the caller, so per-substrate diagnostics
    /// (e.g. [`Substrate::sinr_tiles`]'s far-walk and panel counters)
    /// can be read back after the runs.
    ///
    /// # Errors
    ///
    /// Returns the first per-stream error, if any.
    pub fn run_repetitions_on(
        &self,
        substrate: &Arc<Substrate>,
        reps: u64,
        threads: usize,
    ) -> Result<Vec<ScenarioOutcome>, ScenarioError> {
        let results = dps_sim::parallel::parallel_map(reps as usize, threads, |rep| {
            self.run_stream_on(substrate, rep as u64)
        });
        results.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    #[test]
    fn ring_preset_runs_and_is_stable_below_capacity() {
        let spec = registry::spec_for("ring-routing").unwrap();
        let outcome = Scenario::from_spec(&spec).unwrap().run().unwrap();
        assert!(outcome.report.injected > 0);
        assert_eq!(
            outcome.report.delivered + outcome.report.final_backlog as u64,
            outcome.report.injected,
            "packet conservation"
        );
        assert!(outcome.verdict.is_stable(), "{:?}", outcome.verdict);
        assert_eq!(outcome.lambda_max, 1.0);
    }

    #[test]
    fn overload_is_detected() {
        let spec = registry::spec_for("ring-routing").unwrap().with_lambda(1.4);
        let outcome = Scenario::from_spec(&spec).unwrap().run().unwrap();
        assert!(!outcome.verdict.is_stable(), "{:?}", outcome.verdict);
    }

    #[test]
    fn adversarial_runs_report_effective_rate() {
        let mut spec = registry::spec_for("adversarial-ring").unwrap();
        spec.run.frames = 30;
        let outcome = Scenario::from_spec(&spec).unwrap().run().unwrap();
        let effective = outcome.effective_rate.expect("validator ran");
        assert!(effective > 0.0 && effective <= spec.injection.lambda + 1e-9);
    }

    #[test]
    fn event_engine_matches_per_slot_reference_on_presets() {
        // The `events` toggle must be observationally transparent: every
        // report field except the skip diagnostic is bit-for-bit equal.
        for name in ["sparse-ring", "ring-routing", "adversarial-ring"] {
            let mut spec = registry::spec_for(name).unwrap();
            spec.run.frames = 20;
            let fast = Scenario::from_spec(&spec).unwrap().run().unwrap();
            spec.run.events = false;
            let slow = Scenario::from_spec(&spec).unwrap().run().unwrap();
            assert_eq!(fast.report.injected, slow.report.injected, "{name}");
            assert_eq!(fast.report.delivered, slow.report.delivered, "{name}");
            assert_eq!(fast.report.latencies, slow.report.latencies, "{name}");
            assert_eq!(fast.report.path_lens, slow.report.path_lens, "{name}");
            assert_eq!(
                fast.report.backlog_series, slow.report.backlog_series,
                "{name}"
            );
            assert_eq!(
                fast.report.final_backlog, slow.report.final_backlog,
                "{name}"
            );
            assert_eq!(fast.report.attempts, slow.report.attempts, "{name}");
            assert_eq!(fast.report.successes, slow.report.successes, "{name}");
            assert_eq!(slow.report.idle_slots_skipped, 0, "{name}");
        }
    }

    #[test]
    fn event_engine_is_transparent_on_tiled_substrate() {
        // Skip hints must compose with tiled feasibility: a city-shaped
        // (but test-sized) tiled spec reports identical results with the
        // event engine on and off, at ε = 0 and at ε > 0.
        for epsilon in [0.0, 1e-2] {
            let mut spec = registry::spec_for("sinr-city").unwrap();
            if let crate::spec::SubstrateConfig::SinrTiled {
                links,
                side,
                grid,
                epsilon: eps,
                ..
            } = &mut spec.substrate
            {
                *links = 32;
                *side = 120.0;
                *grid = 4;
                *eps = epsilon;
            } else {
                panic!("sinr-city is tiled");
            }
            spec.run.frames = 6;
            let fast = Scenario::from_spec(&spec).unwrap().run().unwrap();
            spec.run.events = false;
            let slow = Scenario::from_spec(&spec).unwrap().run().unwrap();
            assert_eq!(fast.report.injected, slow.report.injected, "eps {epsilon}");
            assert_eq!(
                fast.report.delivered, slow.report.delivered,
                "eps {epsilon}"
            );
            assert_eq!(
                fast.report.latencies, slow.report.latencies,
                "eps {epsilon}"
            );
            assert_eq!(fast.report.attempts, slow.report.attempts, "eps {epsilon}");
            assert_eq!(
                fast.report.successes, slow.report.successes,
                "eps {epsilon}"
            );
            assert_eq!(
                fast.report.final_backlog, slow.report.final_backlog,
                "eps {epsilon}"
            );
            assert_eq!(slow.report.idle_slots_skipped, 0, "eps {epsilon}");
        }
    }

    #[test]
    fn sparse_preset_skips_most_of_the_run() {
        let mut spec = registry::spec_for("sparse-ring").unwrap();
        spec.run.frames = 40;
        let outcome = Scenario::from_spec(&spec).unwrap().run().unwrap();
        assert!(outcome.report.injected > 0, "the ring is quiet, not dead");
        assert!(
            outcome.report.idle_slots_skipped > outcome.slots / 2,
            "skipped only {} of {} slots",
            outcome.report.idle_slots_skipped,
            outcome.slots
        );
    }

    #[test]
    fn repetitions_are_deterministic_across_thread_counts() {
        let mut spec = registry::spec_for("ring-routing").unwrap();
        spec.run.frames = 10;
        let scenario = Scenario::from_spec(&spec).unwrap();
        let sequential = scenario.run_repetitions(4, 1).unwrap();
        let parallel = scenario.run_repetitions(4, 4).unwrap();
        for (a, b) in sequential.iter().zip(&parallel) {
            assert_eq!(a.stream, b.stream);
            assert_eq!(a.report.injected, b.report.injected);
            assert_eq!(a.report.delivered, b.report.delivered);
            assert_eq!(a.report.final_backlog, b.report.final_backlog);
            assert_eq!(a.report.latencies, b.report.latencies);
            assert_eq!(a.report.backlog_series, b.report.backlog_series);
        }
    }
}
