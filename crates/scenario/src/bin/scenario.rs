//! CLI running declarative scenarios: registry presets or spec files.
//!
//! ```text
//! scenario list
//! scenario show <preset> [--json]
//! scenario run <preset|spec.toml|spec.json> [options]
//! scenario sweep <preset|spec.toml|spec.json> --lambdas 0.5,0.9,1.3 [options]
//! scenario check <preset|spec.toml|spec.json>
//!
//! options:
//!   --lambda X        override the injection rate
//!   --frames N        override the run horizon (frames)
//!   --seed N          override the root seed
//!   --reps N          repetitions (independent RNG streams)
//!   --threads N       OS threads for repetitions/sweeps
//!   --sizes a,b,c     (sweep) substrate sizes to sweep
//!   --lambdas a,b,c   (sweep) injection rates to sweep
//!   --csv PATH        write the result table as CSV
//!   --json            print machine-readable JSON instead of tables
//! ```

use dps_scenario::{registry, ProtocolConfig, Scenario, ScenarioOutcome, ScenarioSpec, Sweep};
use dps_sim::table::{fmt3, Table};
use std::path::Path;
use std::process::exit;

struct Options {
    lambda: Option<f64>,
    frames: Option<u64>,
    seed: Option<u64>,
    reps: u64,
    threads: usize,
    lambdas: Vec<f64>,
    sizes: Vec<usize>,
    csv: Option<String>,
    json: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => usage(""),
    };
    match command {
        "list" => list(),
        "show" => show(rest),
        "run" => run(rest),
        "sweep" => sweep(rest),
        "check" => check(rest),
        "--help" | "-h" | "help" => usage(""),
        other => usage(&format!("unknown command `{other}`")),
    }
}

fn list() {
    println!("{:22}  {:34}  summary", "preset", "paper");
    for preset in registry::presets() {
        println!(
            "{:22}  {:34}  {}",
            preset.name, preset.paper, preset.summary
        );
    }
}

fn show(rest: &[String]) {
    let (spec, options) = load_spec(rest);
    if options.json {
        println!("{}", spec.to_json());
    } else {
        print!("{}", spec.to_toml());
    }
}

fn run(rest: &[String]) {
    let (spec, options) = load_spec(rest);
    let scenario = Scenario::from_spec(&spec).unwrap_or_else(|e| fail(&e.to_string()));
    // Hold the substrate here (when its spec opts into sharing) so
    // per-substrate diagnostics survive the runs and can be reported.
    let shared = scenario
        .substrate
        .cache_key()
        .is_some()
        .then(|| scenario.build_substrate())
        .transpose()
        .unwrap_or_else(|e| fail(&e.to_string()));
    let outcomes = match &shared {
        Some(substrate) => scenario.run_repetitions_on(substrate, options.reps, options.threads),
        None => scenario.run_repetitions(options.reps, options.threads),
    }
    .unwrap_or_else(|e| fail(&e.to_string()));
    let table = outcome_table(&spec.name, &outcomes);
    if options.json {
        let serde::Value::Map(mut fields) = table.to_value() else {
            unreachable!("Table::to_value always yields a map")
        };
        if let Some(tiles) = shared.as_ref().and_then(|s| s.sinr_tiles.as_ref()) {
            fields.push((
                "tile_diagnostics".to_string(),
                tile_diagnostics_value(&tiles.diagnostics()),
            ));
        }
        println!(
            "{}",
            serde::json::to_string_pretty(&serde::Value::Map(fields))
        );
    } else {
        println!(
            "# {} — {} | {} | {}",
            spec.name,
            scenario.substrate.label(),
            scenario.protocol.label(),
            scenario.injector.label()
        );
        print!("{}", table.render());
    }
    if let Some(path) = &options.csv {
        std::fs::write(path, table.to_csv()).unwrap_or_else(|e| fail(&e.to_string()));
    }
}

fn sweep(rest: &[String]) {
    let (spec, options) = load_spec(rest);
    let mut sweep = Sweep::new(spec)
        .repetitions(options.reps)
        .threads(options.threads);
    if !options.lambdas.is_empty() {
        sweep = sweep.over_lambdas(&options.lambdas);
    }
    if !options.sizes.is_empty() {
        sweep = sweep.over_sizes(&options.sizes);
    }
    let report = sweep.run().unwrap_or_else(|e| fail(&e.to_string()));
    if options.json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.to_table().render());
    }
    if let Some(path) = &options.csv {
        std::fs::write(path, report.to_csv()).unwrap_or_else(|e| fail(&e.to_string()));
    }
}

/// Exhaustively model-checks the frame-protocol invariants backing the
/// named scenario. The scenario's own frame geometry is far beyond
/// exhaustive exploration, so the checker runs `dps-model`'s tiny
/// instances — same protocol logic, every interleaving — and this
/// command's job is to tie that guarantee to the scenario the user is
/// about to trust.
fn check(rest: &[String]) {
    let (spec, _options) = load_spec(rest);
    match spec.protocol {
        ProtocolConfig::FrameGreedy
        | ProtocolConfig::FrameTwoStage
        | ProtocolConfig::FrameUniformTransformed { .. }
        | ProtocolConfig::FrameMacSymmetric { .. }
        | ProtocolConfig::FrameMacRoundRobin
        | ProtocolConfig::ConflictColoring => {}
        ProtocolConfig::Sis => fail(&format!(
            "`{}` runs the SIS baseline; only the frame protocols have an exhaustive model",
            spec.name
        )),
    }
    println!(
        "# {} — frame-protocol invariants, exhaustively checked on tiny instances",
        spec.name
    );
    println!("# (the scenario's real geometry is too large to exhaust; every injection,");
    println!("#  success and clean-up interleaving of these instances is explored)");
    let config = dps_model::CheckConfig::default();
    let mut ok = true;
    for model in dps_model::presets() {
        match dps_model::check_model(&model, &config) {
            Ok(report) => println!(
                "{:<20} ok: {} states, {} transitions{}",
                model.name(),
                report.distinct_states,
                report.transitions,
                if report.truncated {
                    " (truncated)"
                } else {
                    " (exhausted)"
                }
            ),
            Err(ce) => {
                eprintln!("{:<20} FAILED: {ce}", model.name());
                ok = false;
            }
        }
    }
    if !ok {
        exit(1);
    }
}

/// The tiled substrate's far-walk and panel-cache counters as a JSON
/// map, spliced next to the outcome table under `tile_diagnostics`.
fn tile_diagnostics_value(diag: &dps_sinr::tiles::TileDiagnostics) -> serde::Value {
    let seq_u64 =
        |values: &[u64]| serde::Value::Seq(values.iter().map(|&v| serde::Value::U64(v)).collect());
    serde::Value::Map(vec![
        ("slots".to_string(), serde::Value::U64(diag.slots)),
        (
            "level_tiles_per_side".to_string(),
            serde::Value::Seq(
                diag.level_tiles_per_side
                    .iter()
                    .map(|&g| serde::Value::U64(g as u64))
                    .collect(),
            ),
        ),
        (
            "tiles_visited_per_level".to_string(),
            seq_u64(&diag.tiles_visited_per_level),
        ),
        (
            "far_terms_per_level".to_string(),
            seq_u64(&diag.far_terms_per_level),
        ),
        ("near_terms".to_string(), serde::Value::U64(diag.near_terms)),
        ("panel_hits".to_string(), serde::Value::U64(diag.panel_hits)),
        (
            "panel_misses".to_string(),
            serde::Value::U64(diag.panel_misses),
        ),
        (
            "panel_evictions".to_string(),
            serde::Value::U64(diag.panel_evictions),
        ),
        (
            "panel_resident_bytes".to_string(),
            serde::Value::U64(diag.panel_resident_bytes as u64),
        ),
        (
            "panel_high_water_bytes".to_string(),
            serde::Value::U64(diag.panel_high_water_bytes as u64),
        ),
    ])
}

fn outcome_table(name: &str, outcomes: &[ScenarioOutcome]) -> Table {
    let mut table = Table::new(
        format!("scenario: {name}"),
        &[
            "rep",
            "lambda",
            "lambda_max",
            "frame T",
            "slots",
            "verdict",
            "injected",
            "delivered",
            "final backlog",
            "mean latency",
        ],
    );
    for o in outcomes {
        table.push_row(vec![
            o.stream.to_string(),
            fmt3(o.lambda),
            fmt3(o.lambda_max),
            o.frame_len.to_string(),
            o.slots.to_string(),
            o.verdict_cell(),
            o.report.injected.to_string(),
            o.report.delivered.to_string(),
            o.report.final_backlog.to_string(),
            fmt3(o.report.latency_summary().mean),
        ]);
    }
    table
}

/// Loads the spec named by the first positional argument — a registry
/// preset, or a path to a `.toml`/`.json` file — and applies overrides.
fn load_spec(rest: &[String]) -> (ScenarioSpec, Options) {
    let (target, rest) = match rest.split_first() {
        Some((t, rest)) if !t.starts_with('-') => (t.clone(), rest),
        _ => usage("expected a preset name or spec file"),
    };
    let options = parse_options(rest);
    let mut spec = if Path::new(&target).exists() {
        let text = std::fs::read_to_string(&target)
            .unwrap_or_else(|e| fail(&format!("reading {target}: {e}")));
        let parsed = if target.ends_with(".json") {
            ScenarioSpec::from_json(&text)
        } else {
            ScenarioSpec::from_toml(&text)
        };
        parsed.unwrap_or_else(|e| fail(&format!("{target}: {e}")))
    } else {
        registry::spec_for(&target).unwrap_or_else(|e| fail(&e.to_string()))
    };
    if let Some(lambda) = options.lambda {
        spec.injection.lambda = lambda;
    }
    if let Some(frames) = options.frames {
        spec.run.frames = frames;
    }
    if let Some(seed) = options.seed {
        spec.run.seed = seed;
    }
    (spec, options)
}

fn parse_options(rest: &[String]) -> Options {
    let mut options = Options {
        lambda: None,
        frames: None,
        seed: None,
        reps: 1,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        lambdas: Vec::new(),
        sizes: Vec::new(),
        csv: None,
        json: false,
    };
    let mut args = rest.iter();
    while let Some(arg) = args.next() {
        let mut value = |what: &str| -> String {
            args.next()
                .unwrap_or_else(|| usage(&format!("{what} needs a value")))
                .clone()
        };
        match arg.as_str() {
            "--lambda" => options.lambda = Some(parse(&value("--lambda"), "--lambda")),
            "--frames" => options.frames = Some(parse(&value("--frames"), "--frames")),
            "--seed" => options.seed = Some(parse(&value("--seed"), "--seed")),
            "--reps" => options.reps = parse(&value("--reps"), "--reps"),
            "--threads" => options.threads = parse(&value("--threads"), "--threads"),
            "--lambdas" => options.lambdas = parse_list(&value("--lambdas"), "--lambdas"),
            "--sizes" => options.sizes = parse_list(&value("--sizes"), "--sizes"),
            "--csv" => options.csv = Some(value("--csv")),
            "--json" => options.json = true,
            other => usage(&format!("unknown option `{other}`")),
        }
    }
    options
}

fn parse<T: std::str::FromStr>(text: &str, what: &str) -> T {
    text.parse()
        .unwrap_or_else(|_| usage(&format!("{what}: invalid value `{text}`")))
}

fn parse_list<T: std::str::FromStr>(text: &str, what: &str) -> Vec<T> {
    text.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| parse(s.trim(), what))
        .collect()
}

fn fail(message: &str) -> ! {
    eprintln!("error: {message}");
    exit(1);
}

fn usage(message: &str) -> ! {
    if !message.is_empty() {
        eprintln!("error: {message}");
    }
    eprintln!(
        "usage: scenario list\n\
        \x20      scenario show <preset> [--json]\n\
        \x20      scenario run <preset|spec.toml|spec.json> [--lambda X] [--frames N] \
         [--seed N] [--reps N] [--threads N] [--csv PATH] [--json]\n\
        \x20      scenario sweep <preset|spec.toml|spec.json> [--lambdas a,b,c] \
         [--sizes a,b,c] [--reps N] [--threads N] [--csv PATH] [--json]\n\
        \x20      scenario check <preset|spec.toml|spec.json>"
    );
    exit(if message.is_empty() { 0 } else { 2 });
}
