//! Error type of the scenario layer.

use dps_core::error::ModelError;
use std::fmt;

/// Anything that can go wrong building or running a scenario.
#[derive(Clone, Debug)]
pub enum ScenarioError {
    /// A core-model error (invalid rate, inconsistent frame, bad path…).
    Model(ModelError),
    /// A declarative spec failed validation.
    Spec(String),
    /// A spec file failed to parse.
    Parse(serde::Error),
    /// No registry preset with the given name.
    UnknownPreset(String),
}

impl ScenarioError {
    /// Creates a validation error.
    pub fn spec(message: impl Into<String>) -> Self {
        ScenarioError::Spec(message.into())
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Model(e) => write!(f, "model error: {e}"),
            ScenarioError::Spec(m) => write!(f, "invalid scenario spec: {m}"),
            ScenarioError::Parse(e) => write!(f, "spec parse error: {e}"),
            ScenarioError::UnknownPreset(name) => {
                write!(f, "unknown preset `{name}` (see `scenario list`)")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<ModelError> for ScenarioError {
    fn from(e: ModelError) -> Self {
        ScenarioError::Model(e)
    }
}

impl From<serde::Error> for ScenarioError {
    fn from(e: serde::Error) -> Self {
        ScenarioError::Parse(e)
    }
}
