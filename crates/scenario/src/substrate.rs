//! Built substrates and the object-safe [`SubstrateSpec`] factory trait.
//!
//! A [`Substrate`] bundles everything workload-independent about a run:
//! the network, the interference matrix the protocol designs against, the
//! physical-layer feasibility oracle transmissions are judged by, and the
//! route family packets travel on. Components are held behind `Arc`s so
//! one substrate can hand the same model to a protocol, an injector and a
//! window validator without re-deriving geometry.

use crate::error::ScenarioError;
use crate::spec::{PowerConfig, SubstrateConfig};
use dps_conflict::graph::ConflictGraph;
use dps_conflict::matrix::ConflictInterference;
use dps_core::feasibility::{Feasibility, PerLinkFeasibility, SingleChannelFeasibility};
use dps_core::ids::LinkId;
use dps_core::interference::{CompleteInterference, IdentityInterference, InterferenceModel};
use dps_core::path::RoutePath;
use dps_core::rng::split_stream;
use dps_routing::workloads::RoutingSetup;
use dps_sinr::cache::SinrCache;
use dps_sinr::feasibility::SinrFeasibility;
use dps_sinr::instances::random_instance;
use dps_sinr::matrix::SinrInterference;
use dps_sinr::network::SinrNetwork;
use dps_sinr::params::SinrParams;
use dps_sinr::power::{LinearPower, PowerAssignment, SquareRootPower, UniformPower};
use dps_sinr::tiles::{TileOptions, TiledInterference, TiledSinrCache, TiledSinrFeasibility};
use std::fmt;
use std::sync::Arc;

/// The conflict-graph pieces a conflict substrate additionally carries
/// (protocol specs like greedy coloring need the graph itself, not just
/// its interference matrix).
#[derive(Clone, Debug)]
pub struct ConflictParts {
    /// The conflict graph over the links.
    pub graph: ConflictGraph,
    /// The witness ordering (shortest-first) the matrix is derived from.
    pub pi: Vec<LinkId>,
}

/// A fully built substrate: everything a protocol/injector pair plugs
/// into.
pub struct Substrate {
    /// Human-readable description, used in tables.
    pub label: String,
    /// Number of links `m` of the network.
    pub num_links: usize,
    /// Significant size (the `m` handed to `f(m)` and frame tuning).
    pub m: usize,
    /// The linear interference measure schedules are designed against.
    pub model: Arc<dyn InterferenceModel + Send + Sync>,
    /// The physical ground truth judging transmission attempts.
    pub feasibility: Arc<dyn Feasibility + Send + Sync>,
    /// The route family packets are injected on.
    pub routes: Vec<Arc<RoutePath>>,
    /// Conflict-graph pieces, for conflict substrates.
    pub conflict: Option<ConflictParts>,
    /// The shared SINR geometry cache, for SINR substrates: the one
    /// [`SinrCache`] both the interference matrix and the feasibility
    /// oracle of this substrate were built from (and that sweep cells
    /// sharing this substrate reuse).
    pub sinr_cache: Option<Arc<SinrCache>>,
    /// The spatial tile index, for tiled SINR substrates: near-field
    /// gain panels and far-field aggregation state shared by the
    /// feasibility oracle (and charged against the cache budget).
    pub sinr_tiles: Option<Arc<TiledSinrCache>>,
}

impl Substrate {
    /// Rough resident size of this substrate, in bytes — the estimate
    /// the [`crate::cache::SubstrateCache`] eviction budget is charged
    /// against.
    ///
    /// SINR substrates defer to the caches' own accounting:
    /// [`SinrCache::approx_bytes`] charges the per-link vectors plus the
    /// dense gain table exactly when it was materialized, and
    /// [`TiledSinrCache::approx_bytes`] charges the tile index and the
    /// allocated near-field panels. The dense `m × m` W matrix of
    /// [`SinrInterference`] is charged only for non-tiled substrates
    /// (tiled ones judge through the on-demand [`TiledInterference`]).
    /// Routes and conflict structures are counted approximately; the
    /// value is an eviction heuristic, not an allocator measurement.
    pub fn approx_bytes(&self) -> usize {
        let m = self.num_links;
        let mut bytes = std::mem::size_of::<Substrate>() + self.label.len();
        bytes += self.routes.iter().map(|r| 64 + 4 * r.len()).sum::<usize>();
        if let Some(cache) = &self.sinr_cache {
            // The geometry cache knows whether its dense gain table was
            // materialized; don't guess here (the old heuristic charged
            // `m²` twice for dense substrates and once even when the
            // table was never built).
            bytes += cache.approx_bytes();
            if let Some(tiles) = &self.sinr_tiles {
                bytes += tiles.approx_bytes();
            } else {
                // The dense W matrix of `SinrInterference`.
                bytes += m * m * 8;
            }
        } else if let Some(conflict) = &self.conflict {
            bytes += conflict.pi.len() * 4 + m * 32;
            bytes += conflict.graph.num_conflicts() * 16;
        } else {
            // Routing/MAC substrates: O(m) models and oracles.
            bytes += m * 64;
        }
        bytes
    }
}

impl fmt::Debug for Substrate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Substrate")
            .field("label", &self.label)
            .field("num_links", &self.num_links)
            .field("m", &self.m)
            .field("routes", &self.routes.len())
            .finish_non_exhaustive()
    }
}

/// An object-safe factory of [`Substrate`]s.
///
/// The built-in implementation is [`SubstrateConfig`] (the declarative
/// enum); custom substrates implement this trait directly and compose
/// with every protocol and injector spec — see the `star_lowerbound`
/// example for a custom implementation.
pub trait SubstrateSpec: fmt::Debug + Send + Sync {
    /// A short human-readable label for tables.
    fn label(&self) -> String;

    /// Builds the substrate.
    ///
    /// Building must be deterministic: any internal randomness (geometry)
    /// must come from seeds stored in the spec, so that repetitions and
    /// sweep cells see the same instance.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] if the configuration is not realizable.
    fn build(&self) -> Result<Substrate, ScenarioError>;

    /// A key identifying the topology this spec builds, for the
    /// substrate-sharing layer ([`crate::cache::SubstrateCache`]): two
    /// specs with the same key must build interchangeable substrates.
    ///
    /// Because building is deterministic, any injective serialization of
    /// the spec's parameters (including its geometry seed) qualifies —
    /// the built-in [`SubstrateConfig`] uses its JSON form. The default
    /// `None` opts out: every consumer then rebuilds from scratch, which
    /// is always correct, just slower. Custom specs should return a key
    /// embedding every build-affecting parameter (prefixed with a unique
    /// type name to avoid colliding with other spec types).
    fn cache_key(&self) -> Option<String> {
        None
    }
}

/// One single-hop route per link — the demand family of the MAC, SINR and
/// conflict experiments.
pub fn single_hop_routes(num_links: usize) -> Vec<Arc<RoutePath>> {
    (0..num_links as u32)
        .map(|l| RoutePath::single_hop(LinkId(l)).shared())
        .collect()
}

impl SubstrateSpec for SubstrateConfig {
    fn cache_key(&self) -> Option<String> {
        // The JSON form names every build-affecting parameter (kind,
        // sizes, geometry seed); builds are a pure function of it.
        Some(serde::json::to_string(self))
    }

    fn label(&self) -> String {
        match self {
            SubstrateConfig::RingRouting { nodes, hops } => {
                format!("ring({nodes}), {hops}-hop routing")
            }
            SubstrateConfig::LineRouting { links, hops } => {
                format!("line({links}), {hops}-hop routing")
            }
            SubstrateConfig::GridRouting { rows, cols } => format!("grid({rows}x{cols}) routing"),
            SubstrateConfig::SinrRandom { links, power, .. } => {
                let power = match power {
                    PowerConfig::Uniform => "uniform",
                    PowerConfig::Linear => "linear",
                    PowerConfig::SquareRoot => "sqrt",
                };
                format!("SINR random(m={links}), {power} power")
            }
            SubstrateConfig::SinrTiled {
                links,
                power,
                grid,
                epsilon,
                levels,
                threads,
                ..
            } => {
                let power = match power {
                    PowerConfig::Uniform => "uniform",
                    PowerConfig::Linear => "linear",
                    PowerConfig::SquareRoot => "sqrt",
                };
                format!(
                    "SINR tiled(m={links}, g={grid}, L={levels}, eps={epsilon}, th={threads}), \
                     {power} power"
                )
            }
            SubstrateConfig::Mac { stations } => format!("MAC({stations} stations)"),
            SubstrateConfig::ConflictGeometric { links, .. } => {
                format!("conflict protocol-model(m={links})")
            }
        }
    }

    fn build(&self) -> Result<Substrate, ScenarioError> {
        let label = SubstrateSpec::label(self);
        match *self {
            SubstrateConfig::RingRouting { nodes, hops } => {
                routing_substrate(label, RoutingSetup::ring(nodes, hops)?)
            }
            SubstrateConfig::LineRouting { links, hops } => {
                routing_substrate(label, RoutingSetup::line(links, hops)?)
            }
            SubstrateConfig::GridRouting { rows, cols } => {
                routing_substrate(label, RoutingSetup::grid(rows, cols))
            }
            SubstrateConfig::SinrRandom {
                links,
                side,
                min_len,
                max_len,
                power,
                seed,
            } => {
                let params = SinrParams::default_noiseless();
                // Geometry stream 0 of the substrate's own seed space.
                let mut geo_rng = split_stream(seed, 0);
                let net = random_instance(links, side, min_len, max_len, params, &mut geo_rng);
                // One shared geometry cache per topology: the matrix
                // build and the exact oracle read the same precomputed
                // signals, margins and gains — the `O(m²)` `powf` work
                // happens exactly once per substrate.
                let (model, feasibility, cache): (
                    Arc<dyn InterferenceModel + Send + Sync>,
                    Arc<dyn Feasibility + Send + Sync>,
                    Arc<SinrCache>,
                ) = match power {
                    PowerConfig::Uniform => sinr_parts(
                        &net,
                        UniformPower::unit(),
                        SinrInterference::fixed_power_with_cache,
                    ),
                    PowerConfig::Linear => sinr_parts(
                        &net,
                        LinearPower::new(params.alpha),
                        SinrInterference::fixed_power_with_cache,
                    ),
                    PowerConfig::SquareRoot => sinr_parts(
                        &net,
                        SquareRootPower::new(params.alpha),
                        SinrInterference::monotone_power_with_cache,
                    ),
                };
                Ok(Substrate {
                    label,
                    num_links: links,
                    m: links,
                    model,
                    feasibility,
                    routes: single_hop_routes(links),
                    conflict: None,
                    sinr_cache: Some(cache),
                    sinr_tiles: None,
                })
            }
            SubstrateConfig::SinrTiled {
                links,
                side,
                min_len,
                max_len,
                power,
                seed,
                grid,
                epsilon,
                panel_budget,
                levels,
                panel_cache,
                threads,
            } => {
                let params = SinrParams::default_noiseless();
                // Same geometry stream as `SinrRandom`: a tiled spec
                // with ε = 0 judges the *identical* instance bit-for-bit.
                let mut geo_rng = split_stream(seed, 0);
                let net = random_instance(links, side, min_len, max_len, params, &mut geo_rng);
                let options = TileOptions::new(grid, epsilon)
                    .with_levels(levels)
                    .with_panel_budget(panel_budget)
                    .with_panel_mode(panel_cache);
                let (model, feasibility, cache, tiles) = match power {
                    PowerConfig::Uniform => {
                        tiled_parts(&net, UniformPower::unit(), options, threads)
                    }
                    PowerConfig::Linear => {
                        tiled_parts(&net, LinearPower::new(params.alpha), options, threads)
                    }
                    PowerConfig::SquareRoot => {
                        tiled_parts(&net, SquareRootPower::new(params.alpha), options, threads)
                    }
                };
                Ok(Substrate {
                    label,
                    num_links: links,
                    m: links,
                    model,
                    feasibility,
                    routes: single_hop_routes(links),
                    conflict: None,
                    sinr_cache: Some(cache),
                    sinr_tiles: Some(tiles),
                })
            }
            SubstrateConfig::Mac { stations } => Ok(Substrate {
                label,
                num_links: stations,
                m: stations,
                model: Arc::new(CompleteInterference::new(stations)),
                feasibility: Arc::new(SingleChannelFeasibility::new()),
                routes: single_hop_routes(stations),
                conflict: None,
                sinr_cache: None,
                sinr_tiles: None,
            }),
            SubstrateConfig::ConflictGeometric {
                links,
                side_factor,
                delta,
                seed,
            } => {
                let mut geo_rng = split_stream(seed, 0);
                let side = side_factor * (links as f64).sqrt();
                let geo = dps_conflict::models::random_geo_links(links, side, 1.0, &mut geo_rng);
                let graph = dps_conflict::models::protocol_model(&geo, delta);
                let pi =
                    dps_conflict::inductive::ordering_by_key(links, |l| geo[l.index()].length());
                let model = ConflictInterference::new(graph.clone(), &pi);
                let feasibility =
                    dps_conflict::feasibility::IndependentSetFeasibility::new(graph.clone());
                Ok(Substrate {
                    label,
                    num_links: links,
                    m: links,
                    model: Arc::new(model),
                    feasibility: Arc::new(feasibility),
                    routes: single_hop_routes(links),
                    conflict: Some(ConflictParts { graph, pi }),
                    sinr_cache: None,
                    sinr_tiles: None,
                })
            }
        }
    }
}

/// Builds the matrix + oracle pair of a SINR substrate from one shared
/// [`SinrCache`]; `matrix` picks the §6 construction matching the power
/// assignment family.
fn sinr_parts<P: PowerAssignment + Clone + Send + Sync + 'static>(
    net: &SinrNetwork,
    power: P,
    matrix: fn(&SinrNetwork, &SinrCache) -> SinrInterference,
) -> (
    Arc<dyn InterferenceModel + Send + Sync>,
    Arc<dyn Feasibility + Send + Sync>,
    Arc<SinrCache>,
) {
    let cache = Arc::new(SinrCache::new(net, &power));
    let model = Arc::new(matrix(net, &cache));
    let feasibility = Arc::new(SinrFeasibility::with_cache(
        net.clone(),
        power,
        cache.clone(),
    ));
    (model, feasibility, cache)
}

/// Builds the on-demand model + tiled oracle of a tiled SINR substrate
/// from one shared [`SinrCache`] (the dense gain table stays under the
/// default cap, so metro-scale instances are `O(m)` — panels and
/// far-field aggregation stand in beyond it) and one shared
/// [`TiledSinrCache`].
type TiledParts = (
    Arc<dyn InterferenceModel + Send + Sync>,
    Arc<dyn Feasibility + Send + Sync>,
    Arc<SinrCache>,
    Arc<TiledSinrCache>,
);

fn tiled_parts<P: PowerAssignment + Clone + Send + Sync + 'static>(
    net: &SinrNetwork,
    power: P,
    options: TileOptions,
    threads: usize,
) -> TiledParts {
    let cache = Arc::new(SinrCache::new(net, &power));
    let tiles = Arc::new(TiledSinrCache::with_options(cache.clone(), options));
    // Tiles-backed model: entries stay exact, but the whole-matrix
    // measure (injection-rate normalization) routes through the index's
    // far-field aggregation — at m = 2²⁰ the trait-default O(m²) row
    // walk costs hours, the tiled walk seconds.
    let model = Arc::new(TiledInterference::with_tiles(tiles.clone()));
    let feasibility = Arc::new(
        TiledSinrFeasibility::with_tiles(net.clone(), power, tiles.clone()).kernel_threads(threads),
    );
    (model, feasibility, cache, tiles)
}

fn routing_substrate(label: String, setup: RoutingSetup) -> Result<Substrate, ScenarioError> {
    let num_links = setup.network.num_links();
    Ok(Substrate {
        label,
        num_links,
        m: setup.network.significant_size(),
        model: Arc::new(IdentityInterference::new(num_links)),
        feasibility: Arc::new(PerLinkFeasibility::new(num_links)),
        routes: setup.routes,
        conflict: None,
        sinr_cache: None,
        sinr_tiles: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_core::interference::validate;

    #[test]
    fn every_builtin_substrate_builds_consistently() {
        let configs = vec![
            SubstrateConfig::RingRouting { nodes: 6, hops: 2 },
            SubstrateConfig::LineRouting { links: 6, hops: 3 },
            SubstrateConfig::GridRouting { rows: 3, cols: 3 },
            SubstrateConfig::SinrRandom {
                links: 6,
                side: 40.0,
                min_len: 1.0,
                max_len: 3.0,
                power: PowerConfig::Linear,
                seed: 3,
            },
            SubstrateConfig::SinrTiled {
                links: 6,
                side: 40.0,
                min_len: 1.0,
                max_len: 3.0,
                power: PowerConfig::Linear,
                seed: 3,
                grid: 4,
                epsilon: 0.0,
                panel_budget: 1 << 16,
                levels: 2,
                panel_cache: dps_sinr::tiles::PanelCacheMode::Fixed,
                threads: 1,
            },
            SubstrateConfig::Mac { stations: 5 },
            SubstrateConfig::ConflictGeometric {
                links: 10,
                side_factor: 2.0,
                delta: 0.5,
                seed: 4,
            },
        ];
        for config in configs {
            let substrate = config.build().expect("builds");
            assert!(substrate.num_links > 0);
            assert!(substrate.m > 0);
            assert!(!substrate.routes.is_empty());
            assert_eq!(substrate.model.num_links(), substrate.num_links);
            validate(&*substrate.model).expect("structural invariants");
            assert_eq!(
                substrate.conflict.is_some(),
                config.is_conflict(),
                "{config:?}"
            );
        }
    }

    #[test]
    fn tiled_substrate_matches_exact_substrate_at_epsilon_zero() {
        // Same geometry seed ⇒ the tiled substrate judges the identical
        // instance: model weights and feasibility verdicts bit-for-bit.
        let links = 12;
        let exact = SubstrateConfig::SinrRandom {
            links,
            side: 60.0,
            min_len: 1.0,
            max_len: 3.0,
            power: PowerConfig::Linear,
            seed: 9,
        }
        .build()
        .unwrap();
        // Hierarchy depth, adaptive panels and worker threads are all
        // bitwise-neutral knobs — ε = 0 is the whole contract.
        let tiled = SubstrateConfig::SinrTiled {
            links,
            side: 60.0,
            min_len: 1.0,
            max_len: 3.0,
            power: PowerConfig::Linear,
            seed: 9,
            grid: 4,
            epsilon: 0.0,
            panel_budget: 1 << 16,
            levels: 3,
            panel_cache: dps_sinr::tiles::PanelCacheMode::Adaptive,
            threads: 2,
        }
        .build()
        .unwrap();
        assert!(tiled.sinr_tiles.is_some());
        for on in 0..links as u32 {
            for from in 0..links as u32 {
                let a = exact.model.weight(LinkId(on), LinkId(from));
                let b = tiled.model.weight(LinkId(on), LinkId(from));
                assert_eq!(a.to_bits(), b.to_bits(), "W[{on}][{from}]");
            }
        }
        let attempts: Vec<dps_core::feasibility::Attempt> = (0..links as u32)
            .map(|l| dps_core::feasibility::Attempt {
                link: LinkId(l),
                packet: dps_core::ids::PacketId(l as u64),
            })
            .collect();
        let rng = split_stream(5, 0);
        assert_eq!(
            exact.feasibility.successes(&attempts, &mut rng.clone()),
            tiled.feasibility.successes(&attempts, &mut rng.clone()),
        );
        // The byte estimate charges the tile index and panels (the
        // dense gain table is auto-gated by the cache's cap, so metro
        // sizes stay O(m); this small instance keeps it).
        let tiles = tiled.sinr_tiles.as_ref().unwrap();
        assert!(tiled.approx_bytes() >= tiles.approx_bytes());
    }

    #[test]
    fn seeded_geometry_is_reproducible() {
        let config = SubstrateConfig::SinrRandom {
            links: 8,
            side: 60.0,
            min_len: 1.0,
            max_len: 2.0,
            power: PowerConfig::Uniform,
            seed: 11,
        };
        let a = config.build().unwrap();
        let b = config.build().unwrap();
        // Same seed ⇒ same interference matrix.
        let mut load = dps_core::load::LinkLoad::new(8);
        for l in 0..8u32 {
            load.set(LinkId(l), (l + 1) as f64);
        }
        assert_eq!(a.model.measure(&load), b.model.measure(&load));
    }
}
