//! Built injectors and the object-safe [`InjectorSpec`] factory trait,
//! plus the window-validating wrapper experiments report effective
//! adversary rates with.

use crate::error::ScenarioError;
use crate::spec::{InjectionConfig, InjectionKind};
use crate::substrate::Substrate;
use dps_core::injection::adversarial::{
    BurstyAdversary, RoundRobinAdversary, SingleEdgeAdversary, SmoothAdversary, WindowValidator,
};
use dps_core::injection::batch::BatchStochasticInjector;
use dps_core::injection::stochastic::uniform_generators;
use dps_core::injection::Injector;
use dps_core::interference::InterferenceModel;
use dps_core::path::RoutePath;
use std::fmt;
use std::sync::Arc;

/// An object-safe factory of injectors.
///
/// The built-in implementation is [`InjectionConfig`]; custom workloads
/// (trace replay, mixed traffic…) implement this trait directly.
pub trait InjectorSpec: fmt::Debug + Send + Sync {
    /// A short human-readable label for tables.
    fn label(&self) -> String;

    /// Builds an injector targeting measure-rate `lambda` on `substrate`.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] if the rate is infeasible for the
    /// substrate's route family.
    fn build(
        &self,
        substrate: &Substrate,
        lambda: f64,
    ) -> Result<Box<dyn Injector + Send>, ScenarioError>;
}

impl InjectorSpec for InjectionConfig {
    fn label(&self) -> String {
        match self.kind {
            InjectionKind::Stochastic => "stochastic".into(),
            InjectionKind::Smooth => format!("smooth adversary (w={})", self.window),
            InjectionKind::Bursty => format!("bursty adversary (w={})", self.window),
            InjectionKind::SingleEdge => format!("single-edge adversary (w={})", self.window),
            InjectionKind::RoundRobin => format!("round-robin adversary (w={})", self.window),
        }
    }

    fn build(
        &self,
        substrate: &Substrate,
        lambda: f64,
    ) -> Result<Box<dyn Injector + Send>, ScenarioError> {
        if substrate.routes.is_empty() {
            return Err(ScenarioError::spec(format!(
                "substrate `{}` has no routes to inject on",
                substrate.label
            )));
        }
        let model = substrate.model.clone();
        let routes = substrate.routes.clone();
        let w = self.window;
        Ok(match self.kind {
            // Stochastic workloads run on the batch engine: same per-slot
            // distribution as the naive per-generator sampler,
            // O(1)-amortized idle slots (skip-ahead calendar / dense
            // binomial batch, selected from the generators' totals).
            InjectionKind::Stochastic => Box::new(BatchStochasticInjector::from(
                stochastic_at_rate(&model, routes, lambda)?,
            )),
            InjectionKind::Smooth => Box::new(SmoothAdversary::new(model, routes, w, lambda)),
            InjectionKind::Bursty => Box::new(BurstyAdversary::new(model, routes, w, lambda)),
            InjectionKind::SingleEdge => Box::new(SingleEdgeAdversary::new(
                model,
                routes[0].clone(),
                w,
                lambda,
            )),
            InjectionKind::RoundRobin => {
                Box::new(RoundRobinAdversary::new(model, routes, w, lambda))
            }
        })
    }
}

/// Builds a stochastic injector over `routes` whose rate under `model` is
/// exactly `lambda`.
///
/// Starts from a small uniform per-generator probability and rescales;
/// retries with smaller bases when the target rate would push a single
/// generator past probability one.
///
/// # Errors
///
/// Propagates the final [`dps_core::error::ModelError`] if no base
/// probability admits the target rate.
pub fn stochastic_at_rate<M: InterferenceModel + ?Sized>(
    model: &M,
    routes: Vec<Arc<RoutePath>>,
    lambda: f64,
) -> Result<dps_core::injection::stochastic::StochasticInjector, ScenarioError> {
    let mut last_err = None;
    for base in [0.01, 0.001, 0.0001] {
        match uniform_generators(routes.clone(), base)
            .and_then(|inj| inj.scaled_to_rate(model, lambda))
        {
            Ok(injector) => return Ok(injector),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.expect("at least one attempt").into())
}

/// An [`InjectorSpec`] building the naive per-generator stochastic
/// sampler (one Bernoulli draw per generator per slot) instead of the
/// batch engine — the pre-batching behaviour, kept for A/B measurement
/// (`bench_inject`) and as a bisection aid. Distribution-identical to
/// the batch engine; only the RNG stream and the per-slot cost differ.
#[derive(Clone, Copy, Debug, Default)]
pub struct NaiveStochasticSpec;

impl InjectorSpec for NaiveStochasticSpec {
    fn label(&self) -> String {
        "stochastic (naive per-generator)".into()
    }

    fn build(
        &self,
        substrate: &Substrate,
        lambda: f64,
    ) -> Result<Box<dyn Injector + Send>, ScenarioError> {
        Ok(Box::new(stochastic_at_rate(
            &*substrate.model,
            substrate.routes.clone(),
            lambda,
        )?))
    }
}

/// Wraps an injector and records its trace into a [`WindowValidator`], so
/// runs can report the *effective* `(w, λ)` rate an adversary achieved.
pub struct ValidatingInjector<I, M: InterferenceModel> {
    inner: I,
    validator: WindowValidator<M>,
}

impl<I: Injector, M: InterferenceModel> ValidatingInjector<I, M> {
    /// Wraps `inner`, validating under `model` with window length `w`.
    pub fn new(inner: I, model: M, w: usize) -> Self {
        ValidatingInjector {
            inner,
            validator: WindowValidator::new(model, w),
        }
    }

    /// The recorded validator.
    pub fn validator(&self) -> &WindowValidator<M> {
        &self.validator
    }
}

impl<I: Injector, M: InterferenceModel> Injector for ValidatingInjector<I, M> {
    fn inject(&mut self, slot: u64, rng: &mut dyn rand::RngCore) -> Vec<Arc<RoutePath>> {
        let mut out = Vec::new();
        self.inject_into(slot, rng, &mut out);
        out
    }

    fn inject_into(
        &mut self,
        slot: u64,
        rng: &mut dyn rand::RngCore,
        out: &mut Vec<Arc<RoutePath>>,
    ) {
        self.inner.inject_into(slot, rng, out);
        self.validator.record_slot(out.iter().map(|p| p.as_ref()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SubstrateConfig;
    use crate::substrate::SubstrateSpec;
    use dps_core::rng::split_stream;

    #[test]
    fn every_kind_builds_and_injects() {
        let substrate = SubstrateConfig::RingRouting { nodes: 4, hops: 1 }
            .build()
            .unwrap();
        for kind in [
            InjectionKind::Stochastic,
            InjectionKind::Smooth,
            InjectionKind::Bursty,
            InjectionKind::SingleEdge,
            InjectionKind::RoundRobin,
        ] {
            let config = InjectionConfig {
                kind,
                lambda: 0.5,
                ..InjectionConfig::default()
            };
            let mut injector = config.build(&substrate, 0.5).expect("builds");
            let mut rng = split_stream(1, 0);
            let mut total = 0usize;
            for slot in 0..256 {
                total += injector.inject(slot, &mut rng).len();
            }
            assert!(total > 0, "{kind:?} injected nothing");
        }
    }

    #[test]
    fn stochastic_hits_requested_rate() {
        let substrate = SubstrateConfig::RingRouting { nodes: 4, hops: 1 }
            .build()
            .unwrap();
        let injector =
            stochastic_at_rate(&*substrate.model, substrate.routes.clone(), 0.7).unwrap();
        assert!((injector.rate(&*substrate.model) - 0.7).abs() < 1e-9);
    }

    #[test]
    fn validator_observes_adversary_within_bound() {
        let substrate = SubstrateConfig::RingRouting { nodes: 4, hops: 1 }
            .build()
            .unwrap();
        let config = InjectionConfig {
            kind: InjectionKind::Bursty,
            lambda: 0.6,
            window: 16,
            ..InjectionConfig::default()
        };
        let inner = config.build(&substrate, 0.6).unwrap();
        let mut validating = ValidatingInjector::new(inner, substrate.model.clone(), 16);
        let mut rng = split_stream(2, 0);
        for slot in 0..512 {
            let _ = validating.inject(slot, &mut rng);
        }
        assert!(validating.validator().is_bounded(0.6 + 1e-9));
        assert!(validating.validator().effective_rate() > 0.2);
    }
}
