//! The named-preset registry: one ready-to-run [`ScenarioSpec`] per
//! substrate/protocol pairing the paper analyses.
//!
//! | Preset | Paper | Substrate |
//! |--------|-------|-----------|
//! | `ring-routing` | Thm 3 (§4) / E2a | ring packet routing |
//! | `line-routing` | §7 / E11 | line packet routing |
//! | `grid-routing` | §7 / E11 | grid packet routing |
//! | `routing-sis` | §7 / E11b | ring + Shortest-In-System baseline |
//! | `sinr-linear` | Cor 12 (§6) / E2b | SINR, linear powers |
//! | `sinr-uniform` | Cor 13 (§6) / E6 | SINR, uniform powers |
//! | `sinr-dense` | Cor 12 (§6), large `m` | SINR, cached-geometry fast path |
//! | `sinr-huge` | Cor 12 (§6), beyond the dense cap | SINR, on-the-fly gain fallback |
//! | `sinr-city` | Cor 12 (§6), city scale | SINR tiled at ε = 0 (exact-comparable, m=16384) |
//! | `sinr-metro` | Cor 12 (§6), metro scale | SINR tiled at ε = 10⁻³ (hierarchical far-field aggregation, m=65536) |
//! | `sinr-megacity` | Cor 12 (§6), megacity scale | SINR tiled at ε = 10⁻³ (4-level hierarchy + adaptive panels, m=2²⁰) |
//! | `mac-symmetric` | Cor 16 (§7.1) / E8 | MAC, Algorithm 2 |
//! | `mac-roundrobin` | Cor 18 (§7.1) / E8 | MAC, Round-Robin-Withholding |
//! | `conflict-coloring` | Thm 19 (§7.2) / E9 | conflict graph, greedy coloring |
//! | `conflict-transformed` | §3 + §7.2 / E9 | conflict graph, Algorithm 1 |
//! | `adversarial-ring` | Thm 11 (§5) / E5 | ring + bursty window adversary |
//! | `sparse-ring` | Thm 3 (§4), sparse regime | large quiet ring, event-driven slot skipping |

use crate::error::ScenarioError;
use crate::spec::{
    InjectionConfig, InjectionKind, PowerConfig, ProtocolConfig, RunConfig, ScenarioSpec,
    SubstrateConfig,
};

/// One registry entry.
pub struct Preset {
    /// The preset's name (the `scenario run <name>` argument).
    pub name: &'static str,
    /// The paper claim it exercises.
    pub paper: &'static str,
    /// One-line description.
    pub summary: &'static str,
    make: fn() -> ScenarioSpec,
}

impl Preset {
    /// Materializes the preset's spec.
    pub fn spec(&self) -> ScenarioSpec {
        (self.make)()
    }
}

fn spec(
    name: &str,
    substrate: SubstrateConfig,
    protocol: ProtocolConfig,
    injection: InjectionConfig,
    provision_cap: f64,
) -> ScenarioSpec {
    ScenarioSpec {
        name: name.to_string(),
        substrate,
        protocol,
        injection,
        run: RunConfig {
            provision_cap,
            ..RunConfig::default()
        },
    }
}

fn stochastic(lambda: f64, relative: bool) -> InjectionConfig {
    InjectionConfig {
        kind: InjectionKind::Stochastic,
        lambda,
        relative,
        ..InjectionConfig::default()
    }
}

/// All presets, in registry order.
pub fn presets() -> &'static [Preset] {
    &[
        Preset {
            name: "ring-routing",
            paper: "Theorem 3 (Section 4) / E2a",
            summary: "ring packet routing under the frame protocol, stable for lambda < 1",
            make: || {
                spec(
                    "ring-routing",
                    SubstrateConfig::RingRouting { nodes: 8, hops: 2 },
                    ProtocolConfig::FrameGreedy,
                    stochastic(0.5, false),
                    0.95,
                )
            },
        },
        Preset {
            name: "line-routing",
            paper: "Section 7 / E11",
            summary: "line packet routing under the frame protocol",
            make: || {
                spec(
                    "line-routing",
                    SubstrateConfig::LineRouting { links: 8, hops: 3 },
                    ProtocolConfig::FrameGreedy,
                    stochastic(0.5, false),
                    0.95,
                )
            },
        },
        Preset {
            name: "grid-routing",
            paper: "Section 7 / E11",
            summary: "grid packet routing with dimension-ordered routes",
            make: || {
                spec(
                    "grid-routing",
                    SubstrateConfig::GridRouting { rows: 3, cols: 3 },
                    ProtocolConfig::FrameGreedy,
                    stochastic(0.5, false),
                    0.95,
                )
            },
        },
        Preset {
            name: "routing-sis",
            paper: "Section 7 / E11b",
            summary: "ring packet routing under the Shortest-In-System baseline",
            make: || {
                spec(
                    "routing-sis",
                    SubstrateConfig::RingRouting { nodes: 8, hops: 2 },
                    ProtocolConfig::Sis,
                    stochastic(0.8, false),
                    0.95,
                )
            },
        },
        Preset {
            name: "sinr-linear",
            paper: "Corollary 12 (Section 6) / E2b",
            summary: "random SINR instance with linear powers, two-stage decay scheduler",
            make: || {
                spec(
                    "sinr-linear",
                    SubstrateConfig::SinrRandom {
                        links: 16,
                        side: 80.0,
                        min_len: 1.0,
                        max_len: 3.0,
                        power: PowerConfig::Linear,
                        seed: 999,
                    },
                    ProtocolConfig::FrameTwoStage,
                    stochastic(0.5, true),
                    0.8,
                )
            },
        },
        Preset {
            name: "sinr-uniform",
            paper: "Corollary 13 (Section 6) / E6",
            summary: "random SINR instance with uniform powers, two-stage decay scheduler",
            make: || {
                spec(
                    "sinr-uniform",
                    SubstrateConfig::SinrRandom {
                        links: 16,
                        side: 80.0,
                        min_len: 1.0,
                        max_len: 3.0,
                        power: PowerConfig::Uniform,
                        seed: 999,
                    },
                    ProtocolConfig::FrameTwoStage,
                    stochastic(0.5, true),
                    0.8,
                )
            },
        },
        Preset {
            name: "sinr-dense",
            paper: "Corollary 12 (Section 6), production scale",
            summary: "large random SINR instance (m=256) exercising the cached-geometry fast path",
            make: || {
                spec(
                    "sinr-dense",
                    SubstrateConfig::SinrRandom {
                        links: 256,
                        side: 320.0,
                        min_len: 1.0,
                        max_len: 3.0,
                        power: PowerConfig::Linear,
                        seed: 999,
                    },
                    ProtocolConfig::FrameTwoStage,
                    stochastic(0.5, true),
                    0.8,
                )
            },
        },
        Preset {
            name: "sinr-huge",
            paper: "Corollary 12 (Section 6), beyond the dense-table cap",
            summary: "huge random SINR instance (m=4096) exercising the on-the-fly gain fallback",
            make: || {
                let mut spec = spec(
                    "sinr-huge",
                    SubstrateConfig::SinrRandom {
                        links: 4096,
                        side: 1280.0,
                        min_len: 1.0,
                        max_len: 3.0,
                        power: PowerConfig::Linear,
                        seed: 999,
                    },
                    ProtocolConfig::FrameTwoStage,
                    stochastic(0.5, true),
                    0.8,
                );
                // 4096 links exceed the default dense-gain budget
                // (`dps_sinr::cache::DEFAULT_DENSE_GAIN_LIMIT` = 1024),
                // so the oracle runs on the O(m)-memory fallback path;
                // keep the default horizon short — each frame is big.
                spec.run.frames = 10;
                spec
            },
        },
        Preset {
            name: "sinr-city",
            paper: "Corollary 12 (Section 6), city scale",
            summary: "city-scale SINR instance (m=16384) on the tiled substrate at epsilon=0 \
                      (bit-for-bit the exact oracle)",
            make: || {
                let mut spec = spec(
                    "sinr-city",
                    SubstrateConfig::SinrTiled {
                        links: 16384,
                        side: 2560.0,
                        min_len: 1.0,
                        max_len: 3.0,
                        power: PowerConfig::Linear,
                        seed: 999,
                        grid: 32,
                        epsilon: 0.0,
                        panel_budget: 8 << 20,
                        levels: 1,
                        panel_cache: dps_sinr::tiles::PanelCacheMode::Fixed,
                        threads: 1,
                    },
                    ProtocolConfig::FrameTwoStage,
                    stochastic(0.5, true),
                    0.8,
                );
                // ε = 0 keeps the tiled kernel bit-for-bit comparable to
                // `sinr-huge`-style exact runs; frames stay short — each
                // frame at m=16384 is already a large slot count.
                spec.run.frames = 4;
                spec
            },
        },
        Preset {
            name: "sinr-metro",
            paper: "Corollary 12 (Section 6), metro scale",
            summary: "metro-scale SINR instance (m=65536) on the tiled substrate with far-field \
                      tile aggregation (epsilon=1e-3)",
            make: || {
                let mut spec = spec(
                    "sinr-metro",
                    SubstrateConfig::SinrTiled {
                        links: 65536,
                        side: 5120.0,
                        min_len: 1.0,
                        max_len: 3.0,
                        power: PowerConfig::Linear,
                        seed: 999,
                        grid: 64,
                        epsilon: 1e-3,
                        panel_budget: 8 << 20,
                        levels: 3,
                        panel_cache: dps_sinr::tiles::PanelCacheMode::Fixed,
                        threads: 1,
                    },
                    ProtocolConfig::FrameTwoStage,
                    stochastic(0.5, true),
                    0.8,
                );
                // A dense gain table at m=65536 would be 34 GiB; the
                // tiled substrate judges slots from O(m) state plus the
                // budgeted near-field panels. One frame is plenty for a
                // sweep cell at this size.
                spec.run.frames = 2;
                spec
            },
        },
        Preset {
            name: "sinr-megacity",
            paper: "Corollary 12 (Section 6), megacity scale",
            summary: "megacity-scale SINR instance (m=2^20) on the hierarchical tiled substrate \
                      with adaptive panels (epsilon=1e-3)",
            make: || {
                let mut spec = spec(
                    "sinr-megacity",
                    SubstrateConfig::SinrTiled {
                        links: 1 << 20,
                        side: 81920.0,
                        min_len: 1.0,
                        max_len: 3.0,
                        power: PowerConfig::Linear,
                        seed: 999,
                        grid: 128,
                        epsilon: 1e-3,
                        panel_budget: 64 << 20,
                        levels: 4,
                        panel_cache: dps_sinr::tiles::PanelCacheMode::Adaptive,
                        threads: 1,
                    },
                    ProtocolConfig::FrameTwoStage,
                    stochastic(0.1, true),
                    0.8,
                );
                // m = 2^20 spread over an 80·√m side: megacity *extent*,
                // four times sparser per area than `sinr-metro`. At metro
                // density the ε·margin/m near-field qualification radius
                // covers ~50k links per receiver and a slot costs ~10¹⁰
                // gain terms — no hierarchy can hide that; sparser
                // spacing keeps the near field to a few leaf tiles so
                // the hierarchical far walk carries the slot. The leaf
                // grid (128 per side) is above the far-table cap, so
                // qualification rides the hierarchy's 64- and 32-per-side
                // levels, and the adaptive panel cache bounds near-field
                // storage to the touched tile pairs. Injection is kept
                // light (λ = 0.1) and short — two frames, because the
                // two-stage protocol only schedules arrivals from the
                // next frame boundary on, so a single frame would never
                // exercise the slot kernel. This preset is a scale
                // smoke, not a sweep cell.
                spec.run.frames = 2;
                spec
            },
        },
        Preset {
            name: "mac-symmetric",
            paper: "Corollary 16 (Section 7.1) / E8",
            summary: "multiple-access channel under Algorithm 2, threshold 1/(1+delta)e",
            make: || {
                spec(
                    "mac-symmetric",
                    SubstrateConfig::Mac { stations: 8 },
                    ProtocolConfig::FrameMacSymmetric { delta: 0.5 },
                    stochastic(0.5, true),
                    0.7,
                )
            },
        },
        Preset {
            name: "mac-roundrobin",
            paper: "Corollary 18 (Section 7.1) / E8",
            summary: "multiple-access channel under Round-Robin-Withholding, threshold 1",
            make: || {
                spec(
                    "mac-roundrobin",
                    SubstrateConfig::Mac { stations: 8 },
                    ProtocolConfig::FrameMacRoundRobin,
                    stochastic(0.6, true),
                    0.95,
                )
            },
        },
        Preset {
            name: "conflict-coloring",
            paper: "Theorem 19 (Section 7.2) / E9",
            summary: "protocol-model conflict graph under the greedy-coloring scheduler",
            make: || {
                spec(
                    "conflict-coloring",
                    SubstrateConfig::ConflictGeometric {
                        links: 24,
                        side_factor: 2.0,
                        delta: 0.5,
                        seed: 21,
                    },
                    ProtocolConfig::ConflictColoring,
                    stochastic(0.5, true),
                    0.7,
                )
            },
        },
        Preset {
            name: "conflict-transformed",
            paper: "Section 3 + Section 7.2 / E9",
            summary: "protocol-model conflict graph under Algorithm 1 over uniform-rate",
            make: || {
                spec(
                    "conflict-transformed",
                    SubstrateConfig::ConflictGeometric {
                        links: 24,
                        side_factor: 2.0,
                        delta: 0.5,
                        seed: 21,
                    },
                    ProtocolConfig::FrameUniformTransformed { chi: 8.0 },
                    stochastic(0.5, true),
                    0.7,
                )
            },
        },
        Preset {
            name: "adversarial-ring",
            paper: "Theorem 11 (Section 5) / E5",
            summary: "ring routing under a bursty (w, lambda)-bounded adversary with smoothing",
            make: || {
                spec(
                    "adversarial-ring",
                    SubstrateConfig::RingRouting { nodes: 8, hops: 1 },
                    ProtocolConfig::FrameGreedy,
                    InjectionConfig {
                        kind: InjectionKind::Bursty,
                        lambda: 0.6,
                        relative: false,
                        window: 64,
                        delay_max: 8,
                    },
                    0.95,
                )
            },
        },
        Preset {
            name: "sparse-ring",
            paper: "Theorem 3 (Section 4), sparse-traffic regime",
            summary: "large mostly-idle ring exercising the event-driven slot-skipping engine",
            make: || {
                // λ is a per-link measure rate, so 64 routes at 0.0002
                // aggregate to ~0.013 packets/slot — the batch injector
                // stays in calendar mode and the frame protocol is
                // quiescent almost everywhere, so nearly the whole run is
                // covered by event-engine jumps.
                spec(
                    "sparse-ring",
                    SubstrateConfig::RingRouting { nodes: 64, hops: 1 },
                    ProtocolConfig::FrameGreedy,
                    stochastic(0.0002, false),
                    0.95,
                )
            },
        },
    ]
}

/// Looks a preset up by name.
pub fn find(name: &str) -> Option<&'static Preset> {
    presets().iter().find(|p| p.name == name)
}

/// Materializes the spec of the preset `name`.
///
/// # Errors
///
/// Returns [`ScenarioError::UnknownPreset`] if no preset has that name.
pub fn spec_for(name: &str) -> Result<ScenarioSpec, ScenarioError> {
    find(name)
        .map(Preset::spec)
        .ok_or_else(|| ScenarioError::UnknownPreset(name.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_validates_and_round_trips() {
        for preset in presets() {
            let spec = preset.spec();
            spec.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", preset.name));
            let toml = spec.to_toml();
            let parsed = ScenarioSpec::from_toml(&toml)
                .unwrap_or_else(|e| panic!("{} TOML: {e}", preset.name));
            assert_eq!(parsed, spec, "{}", preset.name);
            let parsed = ScenarioSpec::from_json(&spec.to_json())
                .unwrap_or_else(|e| panic!("{} JSON: {e}", preset.name));
            assert_eq!(parsed, spec, "{}", preset.name);
        }
    }

    #[test]
    fn names_are_unique_and_lookup_works() {
        let mut names: Vec<&str> = presets().iter().map(|p| p.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), presets().len());
        assert!(find("ring-routing").is_some());
        assert!(find("nope").is_none());
        assert!(matches!(
            spec_for("nope"),
            Err(ScenarioError::UnknownPreset(_))
        ));
    }

    #[test]
    fn registry_spans_all_four_substrate_families() {
        let specs: Vec<ScenarioSpec> = presets().iter().map(Preset::spec).collect();
        assert!(specs.iter().any(|s| s.substrate.is_routing()));
        assert!(specs.iter().any(|s| s.substrate.is_conflict()));
        assert!(specs
            .iter()
            .any(|s| matches!(s.substrate, SubstrateConfig::SinrRandom { .. })));
        assert!(specs
            .iter()
            .any(|s| matches!(s.substrate, SubstrateConfig::SinrTiled { .. })));
        assert!(specs
            .iter()
            .any(|s| matches!(s.substrate, SubstrateConfig::Mac { .. })));
    }
}
