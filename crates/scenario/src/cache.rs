//! The substrate-sharing layer: build each topology once, hand it to
//! every consumer.
//!
//! Sweeps spread one spec over a `(λ, size, seed, repetition)` grid, and
//! most of that grid shares a topology: the injection rate and the
//! repetition stream do not touch geometry at all, so rebuilding the
//! substrate — including the `O(m²)`-`powf` SINR matrix and gain-table
//! construction — per cell is pure waste. A [`SubstrateCache`] keys built
//! [`Substrate`]s by the spec's [`SubstrateSpec::cache_key`] (which
//! embeds the substrate kind, its size parameters and its geometry seed)
//! and returns `Arc` handles, so all cells of a sweep — and all worker
//! threads — drive the same instance.
//!
//! Sharing is safe because substrate builds are deterministic (the trait
//! contract) and runs never mutate the substrate: protocols and
//! injectors are rebuilt per cell from their own specs, reading the
//! substrate through `&`/`Arc`. The golden-fingerprint test in the
//! integration suite pins shared-substrate sweeps to per-cell
//! construction bit-for-bit.

use crate::error::ScenarioError;
use crate::substrate::{Substrate, SubstrateSpec};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A keyed store of built substrates, shared via [`Arc`].
///
/// Thread-safe; a cache can be consulted concurrently from sweep worker
/// threads. Specs whose [`SubstrateSpec::cache_key`] is `None` (custom
/// specs that did not opt in) are built fresh on every call.
///
/// The cache holds every distinct topology alive until it is dropped:
/// a grid sweeping many large substrates (sizes or geometry seeds)
/// peaks at the sum of all of their interference matrices, where the
/// per-cell rebuild it replaces peaked at one topology per worker
/// thread. Trade memory back by splitting such a sweep into chunks
/// (one `Sweep::run` per topology group) — each run drops its cache.
#[derive(Debug, Default)]
pub struct SubstrateCache {
    entries: Mutex<HashMap<String, Arc<Substrate>>>,
}

impl SubstrateCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct topologies currently cached.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("no panics while cached").len()
    }

    /// Whether the cache holds no topologies yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the substrate `spec` builds, building it only if no
    /// equivalent topology (same [`SubstrateSpec::cache_key`]) is cached
    /// yet.
    ///
    /// # Errors
    ///
    /// Propagates the spec's build error; failed builds are not cached.
    pub fn get_or_build(&self, spec: &dyn SubstrateSpec) -> Result<Arc<Substrate>, ScenarioError> {
        self.get_or_build_keyed(spec.cache_key().as_deref(), spec)
    }

    /// [`get_or_build`](Self::get_or_build) with the spec's cache key
    /// already computed — callers that derived the key for their own
    /// bookkeeping (the sweep's dedup pass) hand it in instead of
    /// paying a second serialization. `key` must be exactly
    /// `spec.cache_key()` (`None` opts out of sharing).
    ///
    /// # Errors
    ///
    /// Propagates the spec's build error; failed builds are not cached.
    pub fn get_or_build_keyed(
        &self,
        key: Option<&str>,
        spec: &dyn SubstrateSpec,
    ) -> Result<Arc<Substrate>, ScenarioError> {
        let Some(key) = key else {
            // No key: the spec opted out of sharing.
            return spec.build().map(Arc::new);
        };
        if let Some(hit) = self
            .entries
            .lock()
            .expect("no panics while cached")
            .get(key)
        {
            return Ok(hit.clone());
        }
        // Build outside the lock: concurrent misses on the same key may
        // race to build, but builds are deterministic, so whichever
        // insert wins, every caller holds an interchangeable substrate —
        // and slow builds never serialize unrelated keys.
        let built = Arc::new(spec.build()?);
        Ok(self
            .entries
            .lock()
            .expect("no panics while cached")
            .entry(key.to_string())
            .or_insert(built)
            .clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{PowerConfig, SubstrateConfig};

    fn sinr_config(seed: u64) -> SubstrateConfig {
        SubstrateConfig::SinrRandom {
            links: 6,
            side: 40.0,
            min_len: 1.0,
            max_len: 3.0,
            power: PowerConfig::Linear,
            seed,
        }
    }

    #[test]
    fn same_spec_shares_one_substrate() {
        let cache = SubstrateCache::new();
        let a = cache.get_or_build(&sinr_config(7)).unwrap();
        let b = cache.get_or_build(&sinr_config(7)).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same key must share the build");
        assert_eq!(cache.len(), 1);
        // The SINR pieces share one geometry cache in turn.
        let sinr = a.sinr_cache.as_ref().expect("SINR substrate has a cache");
        assert!(sinr.is_dense());
    }

    #[test]
    fn different_seeds_build_different_substrates() {
        let cache = SubstrateCache::new();
        let a = cache.get_or_build(&sinr_config(7)).unwrap();
        let b = cache.get_or_build(&sinr_config(8)).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn keyless_specs_rebuild_every_time() {
        #[derive(Debug)]
        struct Opaque;
        impl SubstrateSpec for Opaque {
            fn label(&self) -> String {
                "opaque".into()
            }
            fn build(&self) -> Result<Substrate, ScenarioError> {
                SubstrateConfig::Mac { stations: 3 }.build()
            }
        }
        let cache = SubstrateCache::new();
        let a = cache.get_or_build(&Opaque).unwrap();
        let b = cache.get_or_build(&Opaque).unwrap();
        assert!(!Arc::ptr_eq(&a, &b), "keyless specs must not be shared");
        assert!(cache.is_empty());
    }

    #[test]
    fn build_errors_propagate_and_are_not_cached() {
        let cache = SubstrateCache::new();
        let bad = SubstrateConfig::RingRouting { nodes: 2, hops: 5 };
        assert!(cache.get_or_build(&bad).is_err());
        assert!(cache.is_empty());
    }
}
