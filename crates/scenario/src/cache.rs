//! The substrate-sharing layer: build each topology once, hand it to
//! every consumer.
//!
//! Sweeps spread one spec over a `(λ, size, seed, repetition)` grid, and
//! most of that grid shares a topology: the injection rate and the
//! repetition stream do not touch geometry at all, so rebuilding the
//! substrate — including the `O(m²)`-`powf` SINR matrix and gain-table
//! construction — per cell is pure waste. A [`SubstrateCache`] keys built
//! [`Substrate`]s by the spec's [`SubstrateSpec::cache_key`] (which
//! embeds the substrate kind, its size parameters and its geometry seed)
//! and returns `Arc` handles, so all cells of a sweep — and all worker
//! threads — drive the same instance.
//!
//! Sharing is safe because substrate builds are deterministic (the trait
//! contract) and runs never mutate the substrate: protocols and
//! injectors are rebuilt per cell from their own specs, reading the
//! substrate through `&`/`Arc`. The golden-fingerprint test in the
//! integration suite pins shared-substrate sweeps to per-cell
//! construction bit-for-bit.
//!
//! The cache is **bounded**: entries are tracked LRU, charged their
//! [`Substrate::approx_bytes`] estimate, and evicted when an entry or
//! byte budget is exceeded — multi-topology sweeps (many sizes or
//! geometry seeds of a large SINR substrate) no longer hold every
//! topology alive for the whole run. The most recently used entry is
//! always retained (best effort: its consumers hold live `Arc`s during
//! their runs anyway, so evicting it cannot lower the peak). Eviction
//! never invalidates handed out handles (`Arc` keeps a substrate alive
//! for whoever still uses it); a later request for an evicted key
//! simply rebuilds, and concurrent misses on one key share a single
//! in-flight build. The default budget is [`DEFAULT_BYTE_BUDGET`];
//! [`SubstrateCache::unbounded`] restores the hold-everything
//! behaviour.

use crate::error::ScenarioError;
use crate::substrate::{Substrate, SubstrateSpec};
// Determinism audit (dps-lint: hash-container): both containers are
// keyed lookups. The only iteration is eviction's victim scan, which
// reduces via a total (last_used, key) order, so the randomized
// iteration order never reaches cache behaviour or output.
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Condvar, Mutex};

/// Default byte budget of a [`SubstrateCache`]: 1 GiB of estimated
/// substrate bytes — roughly eight m = 4096 SINR topologies — before
/// least-recently-used topologies are dropped.
pub const DEFAULT_BYTE_BUDGET: usize = 1 << 30;

#[derive(Debug)]
struct CacheEntry {
    substrate: Arc<Substrate>,
    bytes: usize,
    /// Logical access clock: larger = more recently used.
    last_used: u64,
}

#[derive(Debug, Default)]
struct CacheInner {
    entries: HashMap<String, CacheEntry>,
    bytes: usize,
    clock: u64,
    /// Keys with a build in flight: concurrent misses on the same key
    /// wait for the builder instead of duplicating the `O(m²)` build —
    /// with LRU eviction a popular key can miss repeatedly, and every
    /// cell of a just-evicted topology would otherwise race to rebuild.
    building: HashSet<String>,
}

impl CacheInner {
    /// Evicts least-recently-used entries until both budgets hold —
    /// except the most recently used entry, which is always retained:
    /// whoever just built or fetched it holds a live `Arc` for the
    /// duration of its run anyway, so evicting it could not lower the
    /// actual peak, only force concurrent consumers of the same key to
    /// rebuild it serially. A single over-budget topology therefore
    /// stays shared (best effort) instead of thrashing.
    fn evict_to_budget(&mut self, max_entries: Option<usize>, max_bytes: Option<usize>) {
        let over = |inner: &CacheInner| {
            max_entries.is_some_and(|n| inner.entries.len() > n)
                || max_bytes.is_some_and(|b| inner.bytes > b)
        };
        while self.entries.len() > 1 && over(self) {
            // Victim order must not depend on the map's randomized
            // iteration order (dps-lint: hash-container): `last_used`
            // ties are broken by key, making the minimum unique even
            // though the logical clock already never repeats.
            let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(k, e)| (e.last_used, k.as_str()))
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            let entry = self.entries.remove(&victim).expect("victim exists");
            self.bytes -= entry.bytes;
        }
    }
}

/// A keyed LRU store of built substrates, shared via [`Arc`].
///
/// Thread-safe; a cache can be consulted concurrently from sweep worker
/// threads. Specs whose [`SubstrateSpec::cache_key`] is `None` (custom
/// specs that did not opt in) are built fresh on every call.
///
/// Entries are charged their [`Substrate::approx_bytes`] estimate
/// against a byte budget ([`DEFAULT_BYTE_BUDGET`] unless configured)
/// and optionally an entry-count budget; exceeding either evicts the
/// least-recently-used topologies. Evicted substrates stay alive as
/// long as any consumer still holds their `Arc`; re-requesting them
/// rebuilds (correct — builds are deterministic — just slower), so the
/// budget trades peak memory for rebuild time on topology-heavy grids.
#[derive(Debug)]
pub struct SubstrateCache {
    inner: Mutex<CacheInner>,
    /// Signalled whenever an in-flight build finishes (successfully or
    /// not), waking the waiters of that key.
    build_done: Condvar,
    max_entries: Option<usize>,
    max_bytes: Option<usize>,
}

impl Default for SubstrateCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SubstrateCache {
    /// A cache bounded by the default byte budget
    /// ([`DEFAULT_BYTE_BUDGET`]).
    pub fn new() -> Self {
        Self::with_byte_budget(DEFAULT_BYTE_BUDGET)
    }

    /// A cache that never evicts — the pre-budget behaviour: every
    /// distinct topology stays alive until the cache is dropped.
    pub fn unbounded() -> Self {
        SubstrateCache {
            inner: Mutex::new(CacheInner::default()),
            build_done: Condvar::new(),
            max_entries: None,
            max_bytes: None,
        }
    }

    /// A cache evicting LRU beyond `budget_bytes` of estimated
    /// substrate bytes.
    pub fn with_byte_budget(budget_bytes: usize) -> Self {
        SubstrateCache {
            inner: Mutex::new(CacheInner::default()),
            build_done: Condvar::new(),
            max_entries: None,
            max_bytes: Some(budget_bytes),
        }
    }

    /// Additionally caps the number of cached topologies.
    pub fn with_max_entries(mut self, max_entries: usize) -> Self {
        self.max_entries = Some(max_entries);
        self
    }

    /// Number of distinct topologies currently cached.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("no panics while cached")
            .entries
            .len()
    }

    /// Whether the cache holds no topologies yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimated bytes currently held by cached topologies.
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().expect("no panics while cached").bytes
    }

    /// Returns the substrate `spec` builds, building it only if no
    /// equivalent topology (same [`SubstrateSpec::cache_key`]) is cached
    /// yet.
    ///
    /// # Errors
    ///
    /// Propagates the spec's build error; failed builds are not cached.
    pub fn get_or_build(&self, spec: &dyn SubstrateSpec) -> Result<Arc<Substrate>, ScenarioError> {
        self.get_or_build_keyed(spec.cache_key().as_deref(), spec)
    }

    /// [`get_or_build`](Self::get_or_build) with the spec's cache key
    /// already computed — callers that derived the key for their own
    /// bookkeeping (the sweep's dedup pass) hand it in instead of
    /// paying a second serialization. `key` must be exactly
    /// `spec.cache_key()` (`None` opts out of sharing).
    ///
    /// # Errors
    ///
    /// Propagates the spec's build error; failed builds are not cached.
    pub fn get_or_build_keyed(
        &self,
        key: Option<&str>,
        spec: &dyn SubstrateSpec,
    ) -> Result<Arc<Substrate>, ScenarioError> {
        let Some(key) = key else {
            // No key: the spec opted out of sharing.
            return spec.build().map(Arc::new);
        };
        {
            let mut inner = self.inner.lock().expect("no panics while cached");
            loop {
                inner.clock += 1;
                let clock = inner.clock;
                if let Some(entry) = inner.entries.get_mut(key) {
                    entry.last_used = clock;
                    return Ok(entry.substrate.clone());
                }
                if !inner.building.contains(key) {
                    // This caller becomes the key's single builder.
                    inner.building.insert(key.to_string());
                    break;
                }
                // Another caller is building this key: wait for it
                // rather than duplicating the `O(m²)` build, then
                // re-check (the build may have failed, or its entry may
                // have been oversized/evicted — then this caller takes
                // over as builder).
                inner = self.build_done.wait(inner).expect("no panics while cached");
            }
        }
        // Build outside the lock: only this caller builds this key
        // (the `building` guard above), and slow builds never serialize
        // unrelated keys. The drop guard re-opens the key and wakes
        // waiters on every exit path — success, build error, panic — so
        // waiters can never deadlock on an abandoned build slot.
        struct BuildSlot<'a> {
            cache: &'a SubstrateCache,
            key: &'a str,
        }
        impl Drop for BuildSlot<'_> {
            fn drop(&mut self) {
                let mut inner = match self.cache.inner.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                inner.building.remove(self.key);
                self.cache.build_done.notify_all();
            }
        }
        let _slot = BuildSlot { cache: self, key };
        let built = Arc::new(spec.build()?);
        let bytes = built.approx_bytes();
        // Even an over-budget substrate is inserted: eviction always
        // retains the most recent entry (see `evict_to_budget`), so
        // waiters on this key share this build instead of redoing it.
        let mut inner = self.inner.lock().expect("no panics while cached");
        inner.clock += 1;
        let clock = inner.clock;
        inner.bytes += bytes;
        inner.entries.insert(
            key.to_string(),
            CacheEntry {
                substrate: built.clone(),
                bytes,
                last_used: clock,
            },
        );
        inner.evict_to_budget(self.max_entries, self.max_bytes);
        Ok(built)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{PowerConfig, SubstrateConfig};

    fn sinr_config(seed: u64) -> SubstrateConfig {
        SubstrateConfig::SinrRandom {
            links: 6,
            side: 40.0,
            min_len: 1.0,
            max_len: 3.0,
            power: PowerConfig::Linear,
            seed,
        }
    }

    #[test]
    fn same_spec_shares_one_substrate() {
        let cache = SubstrateCache::new();
        let a = cache.get_or_build(&sinr_config(7)).unwrap();
        let b = cache.get_or_build(&sinr_config(7)).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same key must share the build");
        assert_eq!(cache.len(), 1);
        assert!(cache.resident_bytes() > 0);
        // The SINR pieces share one geometry cache in turn.
        let sinr = a.sinr_cache.as_ref().expect("SINR substrate has a cache");
        assert!(sinr.is_dense());
    }

    #[test]
    fn different_seeds_build_different_substrates() {
        let cache = SubstrateCache::new();
        let a = cache.get_or_build(&sinr_config(7)).unwrap();
        let b = cache.get_or_build(&sinr_config(8)).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn keyless_specs_rebuild_every_time() {
        #[derive(Debug)]
        struct Opaque;
        impl SubstrateSpec for Opaque {
            fn label(&self) -> String {
                "opaque".into()
            }
            fn build(&self) -> Result<Substrate, ScenarioError> {
                SubstrateConfig::Mac { stations: 3 }.build()
            }
        }
        let cache = SubstrateCache::new();
        let a = cache.get_or_build(&Opaque).unwrap();
        let b = cache.get_or_build(&Opaque).unwrap();
        assert!(!Arc::ptr_eq(&a, &b), "keyless specs must not be shared");
        assert!(cache.is_empty());
    }

    #[test]
    fn build_errors_propagate_and_are_not_cached() {
        let cache = SubstrateCache::new();
        let bad = SubstrateConfig::RingRouting { nodes: 2, hops: 5 };
        assert!(cache.get_or_build(&bad).is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn lru_evicts_under_a_tiny_byte_budget() {
        let probe = SubstrateCache::unbounded();
        let one = probe.get_or_build(&sinr_config(1)).unwrap().approx_bytes();
        // Room for two topologies, not three.
        let cache = SubstrateCache::with_byte_budget(2 * one + one / 2);
        let a = cache.get_or_build(&sinr_config(1)).unwrap();
        let _b = cache.get_or_build(&sinr_config(2)).unwrap();
        assert_eq!(cache.len(), 2);
        // Touch `a` so seed 2 is the LRU victim when seed 3 arrives.
        let a_again = cache.get_or_build(&sinr_config(1)).unwrap();
        assert!(Arc::ptr_eq(&a, &a_again));
        let _c = cache.get_or_build(&sinr_config(3)).unwrap();
        assert_eq!(cache.len(), 2, "third topology must evict one");
        assert!(cache.resident_bytes() <= 2 * one + one / 2);
        // Seed 1 (recently used) survived; seed 2 was evicted and
        // rebuilds as a fresh instance.
        let a_third = cache.get_or_build(&sinr_config(1)).unwrap();
        assert!(Arc::ptr_eq(&a, &a_third), "recently used entry evicted");
    }

    #[test]
    fn entry_cap_bounds_topology_count() {
        let cache = SubstrateCache::unbounded().with_max_entries(1);
        let a = cache.get_or_build(&sinr_config(1)).unwrap();
        let b = cache.get_or_build(&sinr_config(2)).unwrap();
        assert_eq!(cache.len(), 1);
        // Handed-out handles survive eviction.
        assert!(a.sinr_cache.is_some() && b.sinr_cache.is_some());
        let b_again = cache.get_or_build(&sinr_config(2)).unwrap();
        assert!(Arc::ptr_eq(&b, &b_again), "resident entry must be shared");
    }

    #[test]
    fn oversized_substrate_is_retained_until_displaced() {
        // Even over budget, the most recent topology stays shared — its
        // consumers hold live Arcs anyway, so evicting it could only
        // force serial rebuilds — but the next key displaces it.
        let cache = SubstrateCache::with_byte_budget(1);
        let a = cache.get_or_build(&sinr_config(1)).unwrap();
        assert!(a.num_links > 0);
        assert_eq!(cache.len(), 1, "newest entry must be retained");
        let a_again = cache.get_or_build(&sinr_config(1)).unwrap();
        assert!(Arc::ptr_eq(&a, &a_again), "oversized entry must be shared");
        let _b = cache.get_or_build(&sinr_config(2)).unwrap();
        assert_eq!(cache.len(), 1, "over budget keeps only the newest");
        let a_rebuilt = cache.get_or_build(&sinr_config(1)).unwrap();
        assert!(!Arc::ptr_eq(&a, &a_rebuilt), "displaced entry rebuilds");
    }

    #[test]
    fn concurrent_misses_on_one_key_build_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[derive(Debug)]
        struct Counting(Arc<AtomicUsize>);
        impl SubstrateSpec for Counting {
            fn label(&self) -> String {
                "counting".into()
            }
            fn cache_key(&self) -> Option<String> {
                Some("counting".into())
            }
            fn build(&self) -> Result<Substrate, ScenarioError> {
                self.0.fetch_add(1, Ordering::SeqCst);
                // Widen the race window: all waiters must block on the
                // in-flight build instead of starting their own.
                std::thread::sleep(std::time::Duration::from_millis(20));
                SubstrateConfig::Mac { stations: 3 }.build()
            }
        }

        let cache = SubstrateCache::new();
        let builds = Arc::new(AtomicUsize::new(0));
        let results: Vec<Arc<Substrate>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let cache = &cache;
                    let builds = builds.clone();
                    s.spawn(move || cache.get_or_build(&Counting(builds)).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            builds.load(Ordering::SeqCst),
            1,
            "concurrent misses must share one build"
        );
        for pair in results.windows(2) {
            assert!(Arc::ptr_eq(&pair[0], &pair[1]));
        }
    }
}
