//! Built protocols and the object-safe [`ProtocolSpec`] factory trait.

use crate::error::ScenarioError;
use crate::spec::ProtocolConfig;
use crate::substrate::Substrate;
use dps_core::dynamic::{DynamicProtocol, FrameConfig};
use dps_core::protocol::Protocol;
use dps_core::staticsched::greedy::GreedyPerLink;
use dps_core::staticsched::two_stage::TwoStageDecayScheduler;
use dps_core::staticsched::uniform_rate::UniformRateScheduler;
use dps_core::staticsched::StaticScheduler;
use dps_core::transform::DenseTransform;
use std::fmt;

/// A protocol assembled by a [`ProtocolSpec`], with the metadata every
/// runner needs alongside it.
pub struct BuiltProtocol {
    /// The protocol, boxed so any spec combination composes.
    pub protocol: Box<dyn Protocol + Send>,
    /// Frame length in slots (1 for frameless protocols) — run horizons
    /// are counted in frames.
    pub frame_len: usize,
    /// The protocol's capacity `1/f(m)`.
    pub lambda_max: f64,
    /// The rate the protocol was actually provisioned for (capped below
    /// `lambda_max`; the injector may exceed it to probe overload).
    pub provisioned: f64,
}

/// An object-safe factory of protocols.
///
/// The built-in implementation is [`ProtocolConfig`]; custom protocols
/// (e.g. the Section 8 star protocols) implement this trait directly.
pub trait ProtocolSpec: fmt::Debug + Send + Sync {
    /// A short human-readable label for tables.
    fn label(&self) -> String;

    /// The capacity `1/f(m)` this protocol would have on `substrate`,
    /// before any protocol state is built. Sweeps use this to resolve
    /// capacity-relative injection rates.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] if the spec cannot serve the substrate.
    fn lambda_max(&self, substrate: &Substrate) -> Result<f64, ScenarioError>;

    /// Builds the protocol, provisioned for rate
    /// `min(lambda, provision_cap · lambda_max)`.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] if the configuration is inconsistent.
    fn build(
        &self,
        substrate: &Substrate,
        lambda: f64,
        provision_cap: f64,
    ) -> Result<BuiltProtocol, ScenarioError>;
}

impl ProtocolConfig {
    /// The boxed static scheduler of frame-protocol variants
    /// (`None` for direct protocols like SIS).
    fn scheduler(
        &self,
        substrate: &Substrate,
    ) -> Result<Option<Box<dyn StaticScheduler + Send + Sync>>, ScenarioError> {
        Ok(match self {
            ProtocolConfig::FrameGreedy => Some(Box::new(GreedyPerLink::new())),
            ProtocolConfig::FrameTwoStage => {
                Some(Box::new(TwoStageDecayScheduler::new(substrate.m)))
            }
            ProtocolConfig::FrameUniformTransformed { chi } => Some(Box::new(
                DenseTransform::new(UniformRateScheduler::new(), substrate.m).with_chi(*chi),
            )),
            ProtocolConfig::FrameMacSymmetric { delta } => Some(Box::new(
                dps_mac::algorithm2::SymmetricMacScheduler::new(*delta, 1.0),
            )),
            ProtocolConfig::FrameMacRoundRobin => Some(Box::new(
                dps_mac::round_robin::RoundRobinWithholding::new(substrate.m),
            )),
            ProtocolConfig::ConflictColoring => {
                let parts = substrate.conflict.as_ref().ok_or_else(|| {
                    ScenarioError::spec(format!(
                        "protocol `conflict-coloring` needs a conflict-graph substrate, \
                         got `{}`",
                        substrate.label
                    ))
                })?;
                Some(Box::new(
                    dps_conflict::coloring::GreedyColoringScheduler::new(
                        parts.graph.clone(),
                        &parts.pi,
                    ),
                ))
            }
            ProtocolConfig::Sis => None,
        })
    }
}

impl ProtocolSpec for ProtocolConfig {
    fn label(&self) -> String {
        match self {
            ProtocolConfig::FrameGreedy => "frame(greedy per-link)".into(),
            ProtocolConfig::FrameTwoStage => "frame(two-stage decay)".into(),
            ProtocolConfig::FrameUniformTransformed { chi } => {
                format!("frame(transformed uniform-rate, chi={chi})")
            }
            ProtocolConfig::FrameMacSymmetric { delta } => {
                format!("frame(Algorithm 2, delta={delta})")
            }
            ProtocolConfig::FrameMacRoundRobin => "frame(round-robin-withholding)".into(),
            ProtocolConfig::ConflictColoring => "frame(greedy coloring)".into(),
            ProtocolConfig::Sis => "shortest-in-system".into(),
        }
    }

    fn lambda_max(&self, substrate: &Substrate) -> Result<f64, ScenarioError> {
        Ok(match self.scheduler(substrate)? {
            Some(scheduler) => 1.0 / scheduler.f_of(substrate.m),
            // SIS is stable for every λ < 1.
            None => 1.0,
        })
    }

    fn build(
        &self,
        substrate: &Substrate,
        lambda: f64,
        provision_cap: f64,
    ) -> Result<BuiltProtocol, ScenarioError> {
        match self.scheduler(substrate)? {
            Some(scheduler) => {
                let lambda_max = 1.0 / scheduler.f_of(substrate.m);
                let provisioned = lambda.min(provision_cap * lambda_max);
                let config = FrameConfig::tuned(&scheduler, substrate.m, provisioned)?;
                let frame_len = config.frame_len;
                let protocol = DynamicProtocol::new(scheduler, config, substrate.num_links);
                Ok(BuiltProtocol {
                    protocol: Box::new(protocol),
                    frame_len,
                    lambda_max,
                    provisioned,
                })
            }
            None => Ok(BuiltProtocol {
                protocol: Box::new(dps_routing::sis::SisProtocol::new(substrate.num_links)),
                frame_len: 1,
                lambda_max: 1.0,
                provisioned: lambda,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SubstrateConfig;
    use crate::substrate::SubstrateSpec;

    #[test]
    fn frame_protocols_report_capacity_and_build_boxed() {
        let substrate = SubstrateConfig::RingRouting { nodes: 6, hops: 2 }
            .build()
            .unwrap();
        let spec = ProtocolConfig::FrameGreedy;
        assert_eq!(spec.lambda_max(&substrate).unwrap(), 1.0);
        let built = spec.build(&substrate, 0.5, 0.95).unwrap();
        assert!(built.frame_len > 1);
        assert_eq!(built.provisioned, 0.5);
        assert_eq!(built.protocol.backlog(), 0);
    }

    #[test]
    fn provisioning_is_capped_below_capacity() {
        let substrate = SubstrateConfig::Mac { stations: 6 }.build().unwrap();
        let spec = ProtocolConfig::FrameMacSymmetric { delta: 0.5 };
        let lambda_max = spec.lambda_max(&substrate).unwrap();
        assert!(lambda_max < 1.0 / std::f64::consts::E + 1e-9);
        let built = spec.build(&substrate, 10.0 * lambda_max, 0.7).unwrap();
        assert!((built.provisioned - 0.7 * lambda_max).abs() < 1e-12);
    }

    #[test]
    fn coloring_requires_conflict_substrate() {
        let routing = SubstrateConfig::RingRouting { nodes: 4, hops: 1 }
            .build()
            .unwrap();
        assert!(ProtocolConfig::ConflictColoring
            .build(&routing, 0.2, 0.7)
            .is_err());
        let conflict = SubstrateConfig::ConflictGeometric {
            links: 8,
            side_factor: 2.0,
            delta: 0.5,
            seed: 1,
        }
        .build()
        .unwrap();
        let built = ProtocolConfig::ConflictColoring
            .lambda_max(&conflict)
            .unwrap();
        assert!(built > 0.0);
    }

    #[test]
    fn sis_is_frameless() {
        let substrate = SubstrateConfig::RingRouting { nodes: 4, hops: 2 }
            .build()
            .unwrap();
        let built = ProtocolConfig::Sis.build(&substrate, 0.8, 0.95).unwrap();
        assert_eq!(built.frame_len, 1);
        assert_eq!(built.lambda_max, 1.0);
    }
}
