//! The declarative scenario description: a serde-backed [`ScenarioSpec`]
//! readable from and writable to TOML and JSON.
//!
//! A spec names one point in the workspace's configuration space — a
//! substrate (which network + interference model + physical layer), a
//! protocol, an injection process and a run horizon. Specs are plain
//! data: building and executing them is the job of
//! [`Scenario`](crate::scenario::Scenario), and spreading one spec over a
//! parameter grid is the job of [`Sweep`](crate::sweep::Sweep).

use crate::error::ScenarioError;
use serde::{Deserialize, Error as SerdeError, Serialize, Value};

/// A complete declarative scenario description.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Display name, used in tables and reports.
    pub name: String,
    /// The substrate: network, interference model, feasibility, routes.
    pub substrate: SubstrateConfig,
    /// The protocol serving the substrate.
    pub protocol: ProtocolConfig,
    /// The injection process driving it.
    pub injection: InjectionConfig,
    /// Horizon, seeding and provisioning of the run.
    pub run: RunConfig,
}

/// Which substrate to build.
#[derive(Clone, Debug, PartialEq)]
pub enum SubstrateConfig {
    /// A directed ring of `nodes` nodes; all routes of `hops` consecutive
    /// links (packet routing, `W = identity`).
    RingRouting {
        /// Number of ring nodes (= links).
        nodes: usize,
        /// Route length in hops.
        hops: usize,
    },
    /// A directed line of `links` links; all routes of `hops` consecutive
    /// links.
    LineRouting {
        /// Number of line links.
        links: usize,
        /// Route length in hops.
        hops: usize,
    },
    /// A `rows × cols` grid with dimension-ordered routes.
    GridRouting {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// A random SINR instance in a square (Section 6): `links` sender–
    /// receiver pairs, single-hop demands, exact SINR feasibility.
    SinrRandom {
        /// Number of links.
        links: usize,
        /// Side length of the deployment square.
        side: f64,
        /// Minimum link length.
        min_len: f64,
        /// Maximum link length.
        max_len: f64,
        /// The power assignment shaping the interference matrix.
        power: PowerConfig,
        /// Geometry seed (kept separate from the run seed so the same
        /// instance can be driven by many runs).
        seed: u64,
    },
    /// A random SINR instance judged through the spatially-tiled
    /// substrate ([`dps_sinr::tiles`]): near-field gain panels,
    /// far-field tile aggregation under the error knob `epsilon`
    /// (`0` = bit-for-bit the exact oracle), and an on-demand `O(m)`-
    /// memory interference model — the metro-scale configuration.
    SinrTiled {
        /// Number of links.
        links: usize,
        /// Side length of the deployment square.
        side: f64,
        /// Minimum link length.
        min_len: f64,
        /// Maximum link length.
        max_len: f64,
        /// The power assignment shaping the interference matrix.
        power: PowerConfig,
        /// Geometry seed (kept separate from the run seed so the same
        /// instance can be driven by many runs).
        seed: u64,
        /// Tiles per grid side (`1..=1024`).
        grid: usize,
        /// Far-field error knob `ε ≥ 0`; per-receiver interference is
        /// perturbed by at most `ε · margin` per slot.
        epsilon: f64,
        /// Byte budget for near-field gain panels.
        panel_budget: usize,
        /// Hierarchy depth: quadtree coarsening levels stacked over the
        /// leaf grid (`1..=8`; `1` is the flat index).
        levels: usize,
        /// Near-field panel residency policy (`"fixed"` build-time
        /// allocation or `"adaptive"` LRU evict/refill).
        panel_cache: dps_sinr::tiles::PanelCacheMode,
        /// Worker threads of the slot kernel (`1..=64`). Verdicts are
        /// bit-for-bit identical at any setting.
        threads: usize,
    },
    /// The multiple-access channel (Section 7.1): `stations` stations on
    /// one shared medium, all-ones interference.
    Mac {
        /// Number of stations.
        stations: usize,
    },
    /// Random unit-length links under the protocol model, scheduled on
    /// their conflict graph (Section 7.2).
    ConflictGeometric {
        /// Number of links.
        links: usize,
        /// Deployment square side, as a multiple of `sqrt(links)`.
        side_factor: f64,
        /// Protocol-model guard-zone parameter.
        delta: f64,
        /// Geometry seed.
        seed: u64,
    },
}

/// Power assignment of a SINR substrate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PowerConfig {
    /// Every link transmits at unit power.
    Uniform,
    /// `p ∝ d^α` — received signal strength is equal on every link
    /// (the Corollary 12 setting).
    Linear,
    /// `p ∝ d^{α/2}` — the square-root assignment (Corollary 13 setting).
    SquareRoot,
}

/// Which protocol to run.
#[derive(Clone, Debug, PartialEq)]
pub enum ProtocolConfig {
    /// The dynamic frame protocol around the greedy per-link algorithm
    /// (`f = 1`; the packet-routing workhorse).
    FrameGreedy,
    /// The frame protocol around the two-stage decay scheduler (the SINR
    /// workhorse of Corollary 12).
    FrameTwoStage,
    /// The frame protocol around Algorithm 1 applied to the uniform-rate
    /// scheduler (Section 3 + Theorem 19).
    FrameUniformTransformed {
        /// The transformation's density parameter `χ`.
        chi: f64,
    },
    /// The frame protocol around Algorithm 2, the symmetric MAC algorithm
    /// (Corollary 16).
    FrameMacSymmetric {
        /// Algorithm 2's δ (threshold `1/(1+δ)e`).
        delta: f64,
    },
    /// The frame protocol around Round-Robin-Withholding, the asymmetric
    /// MAC algorithm (Corollary 18).
    FrameMacRoundRobin,
    /// The frame protocol around the deterministic greedy-coloring
    /// scheduler; requires a conflict-graph substrate.
    ConflictColoring,
    /// The Shortest-In-System baseline (no frames; packet routing only).
    Sis,
}

/// How packets are injected.
#[derive(Clone, Debug, PartialEq)]
pub struct InjectionConfig {
    /// The injection process.
    pub kind: InjectionKind,
    /// Injection rate λ. With `relative = false` this is the absolute
    /// measure per slot; with `relative = true` it is a fraction of the
    /// protocol's capacity `1/f(m)`.
    pub lambda: f64,
    /// Interpret `lambda` relative to the protocol's capacity.
    pub relative: bool,
    /// Adversary window length `w` (ignored by stochastic injection).
    pub window: usize,
    /// Maximum random initial delay of the Section 5 smoothing wrapper
    /// (adversarial kinds only).
    pub delay_max: u64,
}

/// The shape of the injection process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectionKind {
    /// Independent per-route Bernoulli generators (Section 2.1).
    Stochastic,
    /// A `(w, λ)`-bounded adversary spreading its budget evenly.
    Smooth,
    /// A `(w, λ)`-bounded adversary dumping its budget at window starts.
    Bursty,
    /// A `(w, λ)`-bounded adversary flooding a single route.
    SingleEdge,
    /// A `(w, λ)`-bounded adversary cycling through the routes.
    RoundRobin,
}

impl InjectionKind {
    /// Whether this is one of the window-adversary kinds.
    pub fn is_adversarial(&self) -> bool {
        !matches!(self, InjectionKind::Stochastic)
    }
}

/// Horizon, seeding and provisioning of a run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunConfig {
    /// Run length in frames (multiplied by the protocol's frame length;
    /// frameless protocols count slots directly... times 1).
    pub frames: u64,
    /// Root RNG seed.
    pub seed: u64,
    /// The protocol is provisioned for at most this fraction of its
    /// capacity `1/f(m)` — near-threshold frame lengths grow as
    /// `Θ(overhead/ε²)`, so experiments cap the provisioning rate while
    /// the injector may exceed it to probe overload.
    pub provision_cap: f64,
    /// Whether the simulation engine may use the event-driven fast path
    /// (skipping provably inert slot ranges). Results are identical
    /// either way; `false` forces the per-slot reference loop.
    pub events: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            frames: 50,
            seed: 20120616,
            provision_cap: 0.95,
            events: true,
        }
    }
}

impl Default for InjectionConfig {
    fn default() -> Self {
        InjectionConfig {
            kind: InjectionKind::Stochastic,
            lambda: 0.5,
            relative: false,
            window: 64,
            delay_max: 8,
        }
    }
}

impl ScenarioSpec {
    /// Parses a spec from TOML and validates it.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Parse`] on malformed TOML and
    /// [`ScenarioError::Spec`] on invalid parameters.
    pub fn from_toml(text: &str) -> Result<Self, ScenarioError> {
        let spec: ScenarioSpec = serde::toml::from_str(text)?;
        spec.validate()?;
        Ok(spec)
    }

    /// Parses a spec from JSON and validates it.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Parse`] on malformed JSON and
    /// [`ScenarioError::Spec`] on invalid parameters.
    pub fn from_json(text: &str) -> Result<Self, ScenarioError> {
        let spec: ScenarioSpec = serde::json::from_str(text)?;
        spec.validate()?;
        Ok(spec)
    }

    /// Renders the spec as TOML.
    pub fn to_toml(&self) -> String {
        serde::toml::to_string(self)
    }

    /// Renders the spec as pretty JSON.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Returns `self` with a different injection rate.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.injection.lambda = lambda;
        self
    }

    /// Returns `self` with a different root seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.run.seed = seed;
        self
    }

    /// Returns `self` with the substrate scaled to (roughly) `m` links —
    /// the knob [`Sweep`](crate::sweep::Sweep) turns for size sweeps.
    pub fn with_size(mut self, m: usize) -> Self {
        self.substrate = self.substrate.with_size(m);
        self
    }

    /// Checks every parameter; all spec entry points call this.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Spec`] naming the offending field.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.name.is_empty() {
            return Err(ScenarioError::spec("name must not be empty"));
        }
        self.substrate.validate()?;
        self.injection.validate()?;
        if self.run.frames == 0 {
            return Err(ScenarioError::spec("run.frames must be at least 1"));
        }
        if !(self.run.provision_cap > 0.0 && self.run.provision_cap < 1.0) {
            return Err(ScenarioError::spec(format!(
                "run.provision_cap must be in (0, 1), got {}",
                self.run.provision_cap
            )));
        }
        if self.protocol == ProtocolConfig::Sis && !self.substrate.is_routing() {
            return Err(ScenarioError::spec(
                "protocol `sis` requires a routing substrate",
            ));
        }
        if self.protocol == ProtocolConfig::ConflictColoring && !self.substrate.is_conflict() {
            return Err(ScenarioError::spec(
                "protocol `conflict-coloring` requires a conflict-graph substrate",
            ));
        }
        Ok(())
    }
}

impl SubstrateConfig {
    /// Whether this is a packet-routing substrate (`W = identity`).
    pub fn is_routing(&self) -> bool {
        matches!(
            self,
            SubstrateConfig::RingRouting { .. }
                | SubstrateConfig::LineRouting { .. }
                | SubstrateConfig::GridRouting { .. }
        )
    }

    /// Whether this substrate carries a conflict graph.
    pub fn is_conflict(&self) -> bool {
        matches!(self, SubstrateConfig::ConflictGeometric { .. })
    }

    /// Scales the substrate to (roughly) `m` links.
    pub fn with_size(self, m: usize) -> Self {
        match self {
            SubstrateConfig::RingRouting { hops, .. } => SubstrateConfig::RingRouting {
                nodes: m,
                hops: hops.min(m),
            },
            SubstrateConfig::LineRouting { hops, .. } => SubstrateConfig::LineRouting {
                links: m,
                hops: hops.min(m),
            },
            SubstrateConfig::GridRouting { .. } => {
                // Keep the grid square; links ≈ 2·rows·cols.
                let side = (((m / 2).max(4)) as f64).sqrt().round().max(2.0) as usize;
                SubstrateConfig::GridRouting {
                    rows: side,
                    cols: side,
                }
            }
            SubstrateConfig::SinrRandom {
                side,
                min_len,
                max_len,
                power,
                seed,
                links,
            } => SubstrateConfig::SinrRandom {
                // Keep the density constant while scaling.
                side: side * (m as f64 / links.max(1) as f64).sqrt(),
                links: m,
                min_len,
                max_len,
                power,
                seed,
            },
            SubstrateConfig::SinrTiled {
                side,
                min_len,
                max_len,
                power,
                seed,
                links,
                grid,
                epsilon,
                panel_budget,
                levels,
                panel_cache,
                threads,
            } => SubstrateConfig::SinrTiled {
                // Keep the density constant while scaling.
                side: side * (m as f64 / links.max(1) as f64).sqrt(),
                links: m,
                min_len,
                max_len,
                power,
                seed,
                grid,
                epsilon,
                panel_budget,
                levels,
                panel_cache,
                threads,
            },
            SubstrateConfig::Mac { .. } => SubstrateConfig::Mac { stations: m },
            SubstrateConfig::ConflictGeometric {
                side_factor,
                delta,
                seed,
                ..
            } => SubstrateConfig::ConflictGeometric {
                links: m,
                side_factor,
                delta,
                seed,
            },
        }
    }

    fn validate(&self) -> Result<(), ScenarioError> {
        let positive = |value: usize, what: &str| {
            if value == 0 {
                Err(ScenarioError::spec(format!("{what} must be at least 1")))
            } else {
                Ok(())
            }
        };
        match self {
            SubstrateConfig::RingRouting { nodes, hops } => {
                positive(*nodes, "substrate.nodes")?;
                positive(*hops, "substrate.hops")?;
                if hops > nodes {
                    return Err(ScenarioError::spec(format!(
                        "substrate.hops ({hops}) exceeds the ring size ({nodes})"
                    )));
                }
            }
            SubstrateConfig::LineRouting { links, hops } => {
                positive(*links, "substrate.links")?;
                positive(*hops, "substrate.hops")?;
                if hops > links {
                    return Err(ScenarioError::spec(format!(
                        "substrate.hops ({hops}) exceeds the line length ({links})"
                    )));
                }
            }
            SubstrateConfig::GridRouting { rows, cols } => {
                if *rows < 2 || *cols < 2 {
                    return Err(ScenarioError::spec(
                        "substrate.rows and substrate.cols must be at least 2",
                    ));
                }
            }
            SubstrateConfig::SinrRandom {
                links,
                side,
                min_len,
                max_len,
                ..
            } => {
                positive(*links, "substrate.links")?;
                if side.is_nan() || *side <= 0.0 {
                    return Err(ScenarioError::spec("substrate.side must be positive"));
                }
                if !(*min_len > 0.0 && min_len <= max_len) {
                    return Err(ScenarioError::spec(format!(
                        "substrate link lengths must satisfy 0 < min_len ({min_len}) <= max_len ({max_len})"
                    )));
                }
            }
            SubstrateConfig::SinrTiled {
                links,
                side,
                min_len,
                max_len,
                grid,
                epsilon,
                levels,
                threads,
                ..
            } => {
                positive(*links, "substrate.links")?;
                if side.is_nan() || *side <= 0.0 {
                    return Err(ScenarioError::spec("substrate.side must be positive"));
                }
                if !(*min_len > 0.0 && min_len <= max_len) {
                    return Err(ScenarioError::spec(format!(
                        "substrate link lengths must satisfy 0 < min_len ({min_len}) <= max_len ({max_len})"
                    )));
                }
                if !(1..=dps_sinr::tiles::MAX_TILES_PER_SIDE).contains(grid) {
                    return Err(ScenarioError::spec(format!(
                        "substrate.grid must be in 1..={}, got {grid}",
                        dps_sinr::tiles::MAX_TILES_PER_SIDE
                    )));
                }
                if !(epsilon.is_finite() && *epsilon >= 0.0) {
                    return Err(ScenarioError::spec(format!(
                        "substrate.epsilon must be finite and non-negative, got {epsilon}"
                    )));
                }
                if !(1..=dps_sinr::tiles::MAX_TILE_LEVELS).contains(levels) {
                    return Err(ScenarioError::spec(format!(
                        "substrate.levels must be in 1..={}, got {levels}",
                        dps_sinr::tiles::MAX_TILE_LEVELS
                    )));
                }
                if !(1..=dps_sinr::tiles::MAX_KERNEL_THREADS).contains(threads) {
                    return Err(ScenarioError::spec(format!(
                        "substrate.threads must be in 1..={}, got {threads}",
                        dps_sinr::tiles::MAX_KERNEL_THREADS
                    )));
                }
            }
            SubstrateConfig::Mac { stations } => positive(*stations, "substrate.stations")?,
            SubstrateConfig::ConflictGeometric {
                links,
                side_factor,
                delta,
                ..
            } => {
                positive(*links, "substrate.links")?;
                if side_factor.is_nan() || *side_factor <= 0.0 {
                    return Err(ScenarioError::spec(
                        "substrate.side_factor must be positive",
                    ));
                }
                if delta.is_nan() || *delta < 0.0 {
                    return Err(ScenarioError::spec("substrate.delta must be non-negative"));
                }
            }
        }
        Ok(())
    }
}

impl InjectionConfig {
    fn validate(&self) -> Result<(), ScenarioError> {
        if !(self.lambda.is_finite() && self.lambda > 0.0) {
            return Err(ScenarioError::spec(format!(
                "injection.lambda must be positive and finite, got {}",
                self.lambda
            )));
        }
        if self.window == 0 {
            return Err(ScenarioError::spec("injection.window must be at least 1"));
        }
        if self.kind.is_adversarial() && self.delay_max == 0 {
            return Err(ScenarioError::spec(
                "injection.delay_max must be at least 1 for adversarial kinds",
            ));
        }
        Ok(())
    }
}

// --- serde ----------------------------------------------------------------
//
// Enums are hand-written (the in-tree serde derive covers structs only):
// each variant serializes as a map with a `kind` discriminator, which is
// also the natural TOML shape:
//
// ```toml
// [substrate]
// kind = "ring-routing"
// nodes = 8
// hops = 2
// ```

fn kind_of(value: &Value) -> Result<String, SerdeError> {
    value
        .get("kind")
        .ok_or_else(|| SerdeError::missing_field("kind"))?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| SerdeError::custom("`kind` must be a string"))
}

fn map(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

impl Serialize for ScenarioSpec {
    fn to_value(&self) -> Value {
        map(vec![
            ("name", self.name.to_value()),
            ("substrate", self.substrate.to_value()),
            ("protocol", self.protocol.to_value()),
            ("injection", self.injection.to_value()),
            ("run", self.run.to_value()),
        ])
    }
}

impl Deserialize for ScenarioSpec {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        Ok(ScenarioSpec {
            name: serde::de_field(value, "name")?,
            substrate: serde::de_field(value, "substrate")?,
            protocol: serde::de_field(value, "protocol")?,
            injection: serde::de_field(value, "injection")?,
            // The whole [run] table may be omitted.
            run: serde::de_field::<Option<RunConfig>>(value, "run")?.unwrap_or_default(),
        })
    }
}

impl Serialize for SubstrateConfig {
    fn to_value(&self) -> Value {
        match self {
            SubstrateConfig::RingRouting { nodes, hops } => map(vec![
                ("kind", "ring-routing".to_value()),
                ("nodes", nodes.to_value()),
                ("hops", hops.to_value()),
            ]),
            SubstrateConfig::LineRouting { links, hops } => map(vec![
                ("kind", "line-routing".to_value()),
                ("links", links.to_value()),
                ("hops", hops.to_value()),
            ]),
            SubstrateConfig::GridRouting { rows, cols } => map(vec![
                ("kind", "grid-routing".to_value()),
                ("rows", rows.to_value()),
                ("cols", cols.to_value()),
            ]),
            SubstrateConfig::SinrRandom {
                links,
                side,
                min_len,
                max_len,
                power,
                seed,
            } => map(vec![
                ("kind", "sinr-random".to_value()),
                ("links", links.to_value()),
                ("side", side.to_value()),
                ("min_len", min_len.to_value()),
                ("max_len", max_len.to_value()),
                ("power", power.to_value()),
                ("seed", seed.to_value()),
            ]),
            SubstrateConfig::SinrTiled {
                links,
                side,
                min_len,
                max_len,
                power,
                seed,
                grid,
                epsilon,
                panel_budget,
                levels,
                panel_cache,
                threads,
            } => map(vec![
                ("kind", "sinr-tiled".to_value()),
                ("links", links.to_value()),
                ("side", side.to_value()),
                ("min_len", min_len.to_value()),
                ("max_len", max_len.to_value()),
                ("power", power.to_value()),
                ("seed", seed.to_value()),
                ("grid", grid.to_value()),
                ("epsilon", epsilon.to_value()),
                ("panel_budget", panel_budget.to_value()),
                ("levels", levels.to_value()),
                (
                    "panel_cache",
                    // Inline (the mode lives in dps-sinr, the serde
                    // traits here — the orphan rule forbids a direct
                    // impl).
                    Value::Str(
                        match panel_cache {
                            dps_sinr::tiles::PanelCacheMode::Fixed => "fixed",
                            dps_sinr::tiles::PanelCacheMode::Adaptive => "adaptive",
                        }
                        .to_string(),
                    ),
                ),
                ("threads", threads.to_value()),
            ]),
            SubstrateConfig::Mac { stations } => map(vec![
                ("kind", "mac".to_value()),
                ("stations", stations.to_value()),
            ]),
            SubstrateConfig::ConflictGeometric {
                links,
                side_factor,
                delta,
                seed,
            } => map(vec![
                ("kind", "conflict-geometric".to_value()),
                ("links", links.to_value()),
                ("side_factor", side_factor.to_value()),
                ("delta", delta.to_value()),
                ("seed", seed.to_value()),
            ]),
        }
    }
}

impl Deserialize for SubstrateConfig {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        match kind_of(value)?.as_str() {
            "ring-routing" => Ok(SubstrateConfig::RingRouting {
                nodes: serde::de_field(value, "nodes")?,
                hops: serde::de_field(value, "hops")?,
            }),
            "line-routing" => Ok(SubstrateConfig::LineRouting {
                links: serde::de_field(value, "links")?,
                hops: serde::de_field(value, "hops")?,
            }),
            "grid-routing" => Ok(SubstrateConfig::GridRouting {
                rows: serde::de_field(value, "rows")?,
                cols: serde::de_field(value, "cols")?,
            }),
            "sinr-random" => Ok(SubstrateConfig::SinrRandom {
                links: serde::de_field(value, "links")?,
                side: serde::de_field(value, "side")?,
                min_len: serde::de_field(value, "min_len")?,
                max_len: serde::de_field(value, "max_len")?,
                power: serde::de_field(value, "power")?,
                seed: serde::de_field::<Option<u64>>(value, "seed")?.unwrap_or(0),
            }),
            "sinr-tiled" => Ok(SubstrateConfig::SinrTiled {
                links: serde::de_field(value, "links")?,
                side: serde::de_field(value, "side")?,
                min_len: serde::de_field(value, "min_len")?,
                max_len: serde::de_field(value, "max_len")?,
                power: serde::de_field(value, "power")?,
                seed: serde::de_field::<Option<u64>>(value, "seed")?.unwrap_or(0),
                grid: serde::de_field::<Option<usize>>(value, "grid")?.unwrap_or(16),
                epsilon: serde::de_field::<Option<f64>>(value, "epsilon")?.unwrap_or(0.0),
                panel_budget: serde::de_field::<Option<usize>>(value, "panel_budget")?
                    .unwrap_or(dps_sinr::tiles::DEFAULT_PANEL_BUDGET_BYTES),
                levels: serde::de_field::<Option<usize>>(value, "levels")?.unwrap_or(1),
                panel_cache: match serde::de_field::<Option<String>>(value, "panel_cache")?
                    .as_deref()
                {
                    None | Some("fixed") => dps_sinr::tiles::PanelCacheMode::Fixed,
                    Some("adaptive") => dps_sinr::tiles::PanelCacheMode::Adaptive,
                    Some(other) => {
                        return Err(SerdeError::custom(format!(
                            "unknown panel_cache `{other}` (expected `fixed` or `adaptive`)"
                        )))
                    }
                },
                threads: serde::de_field::<Option<usize>>(value, "threads")?.unwrap_or(1),
            }),
            "mac" => Ok(SubstrateConfig::Mac {
                stations: serde::de_field(value, "stations")?,
            }),
            "conflict-geometric" => Ok(SubstrateConfig::ConflictGeometric {
                links: serde::de_field(value, "links")?,
                side_factor: serde::de_field(value, "side_factor")?,
                delta: serde::de_field(value, "delta")?,
                seed: serde::de_field::<Option<u64>>(value, "seed")?.unwrap_or(0),
            }),
            other => Err(SerdeError::custom(format!(
                "unknown substrate kind `{other}`"
            ))),
        }
    }
}

impl Serialize for PowerConfig {
    fn to_value(&self) -> Value {
        Value::Str(
            match self {
                PowerConfig::Uniform => "uniform",
                PowerConfig::Linear => "linear",
                PowerConfig::SquareRoot => "square-root",
            }
            .to_string(),
        )
    }
}

impl Deserialize for PowerConfig {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        match value.as_str() {
            Some("uniform") => Ok(PowerConfig::Uniform),
            Some("linear") => Ok(PowerConfig::Linear),
            Some("square-root") => Ok(PowerConfig::SquareRoot),
            Some(other) => Err(SerdeError::custom(format!("unknown power `{other}`"))),
            None => Err(SerdeError::expected("string", value)),
        }
    }
}

impl Serialize for ProtocolConfig {
    fn to_value(&self) -> Value {
        match self {
            ProtocolConfig::FrameGreedy => map(vec![("kind", "frame-greedy".to_value())]),
            ProtocolConfig::FrameTwoStage => map(vec![("kind", "frame-two-stage".to_value())]),
            ProtocolConfig::FrameUniformTransformed { chi } => map(vec![
                ("kind", "frame-uniform-transformed".to_value()),
                ("chi", chi.to_value()),
            ]),
            ProtocolConfig::FrameMacSymmetric { delta } => map(vec![
                ("kind", "frame-mac-symmetric".to_value()),
                ("delta", delta.to_value()),
            ]),
            ProtocolConfig::FrameMacRoundRobin => {
                map(vec![("kind", "frame-mac-round-robin".to_value())])
            }
            ProtocolConfig::ConflictColoring => map(vec![("kind", "conflict-coloring".to_value())]),
            ProtocolConfig::Sis => map(vec![("kind", "sis".to_value())]),
        }
    }
}

impl Deserialize for ProtocolConfig {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        match kind_of(value)?.as_str() {
            "frame-greedy" => Ok(ProtocolConfig::FrameGreedy),
            "frame-two-stage" => Ok(ProtocolConfig::FrameTwoStage),
            "frame-uniform-transformed" => Ok(ProtocolConfig::FrameUniformTransformed {
                chi: serde::de_field::<Option<f64>>(value, "chi")?.unwrap_or(8.0),
            }),
            "frame-mac-symmetric" => Ok(ProtocolConfig::FrameMacSymmetric {
                delta: serde::de_field::<Option<f64>>(value, "delta")?.unwrap_or(0.5),
            }),
            "frame-mac-round-robin" => Ok(ProtocolConfig::FrameMacRoundRobin),
            "conflict-coloring" => Ok(ProtocolConfig::ConflictColoring),
            "sis" => Ok(ProtocolConfig::Sis),
            other => Err(SerdeError::custom(format!(
                "unknown protocol kind `{other}`"
            ))),
        }
    }
}

impl Serialize for InjectionKind {
    fn to_value(&self) -> Value {
        Value::Str(
            match self {
                InjectionKind::Stochastic => "stochastic",
                InjectionKind::Smooth => "smooth",
                InjectionKind::Bursty => "bursty",
                InjectionKind::SingleEdge => "single-edge",
                InjectionKind::RoundRobin => "round-robin",
            }
            .to_string(),
        )
    }
}

impl Deserialize for InjectionKind {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        match value.as_str() {
            Some("stochastic") => Ok(InjectionKind::Stochastic),
            Some("smooth") => Ok(InjectionKind::Smooth),
            Some("bursty") => Ok(InjectionKind::Bursty),
            Some("single-edge") => Ok(InjectionKind::SingleEdge),
            Some("round-robin") => Ok(InjectionKind::RoundRobin),
            Some(other) => Err(SerdeError::custom(format!(
                "unknown injection kind `{other}`"
            ))),
            None => Err(SerdeError::expected("string", value)),
        }
    }
}

impl Serialize for InjectionConfig {
    fn to_value(&self) -> Value {
        map(vec![
            ("kind", self.kind.to_value()),
            ("lambda", self.lambda.to_value()),
            ("relative", self.relative.to_value()),
            ("window", self.window.to_value()),
            ("delay_max", self.delay_max.to_value()),
        ])
    }
}

impl Deserialize for InjectionConfig {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let defaults = InjectionConfig::default();
        Ok(InjectionConfig {
            kind: serde::de_field::<Option<InjectionKind>>(value, "kind")?.unwrap_or(defaults.kind),
            lambda: serde::de_field(value, "lambda")?,
            relative: serde::de_field::<Option<bool>>(value, "relative")?
                .unwrap_or(defaults.relative),
            window: serde::de_field::<Option<usize>>(value, "window")?.unwrap_or(defaults.window),
            delay_max: serde::de_field::<Option<u64>>(value, "delay_max")?
                .unwrap_or(defaults.delay_max),
        })
    }
}

impl Serialize for RunConfig {
    fn to_value(&self) -> Value {
        map(vec![
            ("frames", self.frames.to_value()),
            ("seed", self.seed.to_value()),
            ("provision_cap", self.provision_cap.to_value()),
            ("events", self.events.to_value()),
        ])
    }
}

impl Deserialize for RunConfig {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let defaults = RunConfig::default();
        Ok(RunConfig {
            frames: serde::de_field::<Option<u64>>(value, "frames")?.unwrap_or(defaults.frames),
            seed: serde::de_field::<Option<u64>>(value, "seed")?.unwrap_or(defaults.seed),
            provision_cap: serde::de_field::<Option<f64>>(value, "provision_cap")?
                .unwrap_or(defaults.provision_cap),
            events: serde::de_field::<Option<bool>>(value, "events")?.unwrap_or(defaults.events),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "ring demo".into(),
            substrate: SubstrateConfig::RingRouting { nodes: 8, hops: 2 },
            protocol: ProtocolConfig::FrameGreedy,
            injection: InjectionConfig {
                kind: InjectionKind::Stochastic,
                lambda: 0.5,
                relative: false,
                window: 64,
                delay_max: 8,
            },
            run: RunConfig {
                frames: 50,
                seed: 7,
                provision_cap: 0.95,
                events: true,
            },
        }
    }

    #[test]
    fn toml_round_trip_is_identity() {
        let spec = sample_spec();
        let toml = spec.to_toml();
        let parsed = ScenarioSpec::from_toml(&toml).unwrap();
        assert_eq!(parsed, spec);
        // And a second render is stable.
        assert_eq!(parsed.to_toml(), toml);
    }

    #[test]
    fn json_round_trip_is_identity() {
        let mut spec = sample_spec();
        spec.substrate = SubstrateConfig::SinrRandom {
            links: 16,
            side: 80.0,
            min_len: 1.0,
            max_len: 3.0,
            power: PowerConfig::Linear,
            seed: 999,
        };
        spec.protocol = ProtocolConfig::FrameTwoStage;
        spec.injection.relative = true;
        let json = spec.to_json();
        let parsed = ScenarioSpec::from_json(&json).unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn cross_format_round_trip() {
        // TOML → spec → JSON → spec → TOML reproduces the document.
        let spec = sample_spec();
        let via_json = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(via_json.to_toml(), spec.to_toml());
    }

    #[test]
    fn missing_optional_tables_use_defaults() {
        let toml = r#"
name = "minimal"
[substrate]
kind = "mac"
stations = 8
[protocol]
kind = "frame-mac-round-robin"
[injection]
lambda = 0.4
"#;
        // `run` omitted, injection kind omitted.
        let spec = ScenarioSpec::from_toml(toml).unwrap();
        assert_eq!(spec.run, RunConfig::default());
        assert_eq!(spec.injection.kind, InjectionKind::Stochastic);
        assert_eq!(spec.injection.lambda, 0.4);
        spec.validate().unwrap();
    }

    #[test]
    fn invalid_lambda_is_rejected() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let spec = sample_spec().with_lambda(bad);
            assert!(spec.validate().is_err(), "lambda {bad} must be rejected");
        }
    }

    #[test]
    fn invalid_sizes_are_rejected() {
        let mut spec = sample_spec();
        spec.substrate = SubstrateConfig::RingRouting { nodes: 0, hops: 1 };
        assert!(spec.validate().is_err());
        spec.substrate = SubstrateConfig::RingRouting { nodes: 4, hops: 9 };
        assert!(spec.validate().is_err());
        spec.substrate = SubstrateConfig::Mac { stations: 0 };
        assert!(spec.validate().is_err());
        spec.substrate = SubstrateConfig::SinrRandom {
            links: 8,
            side: 40.0,
            min_len: 3.0,
            max_len: 1.0,
            power: PowerConfig::Uniform,
            seed: 0,
        };
        assert!(spec.validate().is_err());
    }

    #[test]
    fn protocol_substrate_mismatch_is_rejected() {
        let mut spec = sample_spec();
        spec.protocol = ProtocolConfig::ConflictColoring;
        assert!(spec.validate().is_err());
        spec.substrate = SubstrateConfig::Mac { stations: 4 };
        spec.protocol = ProtocolConfig::Sis;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn unknown_kinds_fail_to_parse() {
        let toml = sample_spec().to_toml().replace("ring-routing", "moebius");
        assert!(matches!(
            ScenarioSpec::from_toml(&toml),
            Err(ScenarioError::Parse(_))
        ));
    }

    fn tiled_substrate() -> SubstrateConfig {
        SubstrateConfig::SinrTiled {
            links: 256,
            side: 200.0,
            min_len: 0.8,
            max_len: 3.0,
            power: PowerConfig::Linear,
            seed: 42,
            grid: 8,
            epsilon: 1e-2,
            panel_budget: 1 << 20,
            levels: 3,
            panel_cache: dps_sinr::tiles::PanelCacheMode::Adaptive,
            threads: 2,
        }
    }

    #[test]
    fn sinr_tiled_round_trips_and_defaults() {
        let mut spec = sample_spec();
        spec.substrate = tiled_substrate();
        spec.protocol = ProtocolConfig::FrameTwoStage;
        let toml = spec.to_toml();
        assert_eq!(ScenarioSpec::from_toml(&toml).unwrap(), spec);
        let json = spec.to_json();
        assert_eq!(ScenarioSpec::from_json(&json).unwrap(), spec);

        // grid/epsilon/panel_budget/levels/panel_cache/threads may be
        // omitted.
        let toml = r#"
name = "tiled minimal"
[substrate]
kind = "sinr-tiled"
links = 64
side = 100.0
min_len = 1.0
max_len = 2.0
power = "uniform"
[protocol]
kind = "frame-two-stage"
[injection]
lambda = 0.4
"#;
        let spec = ScenarioSpec::from_toml(toml).unwrap();
        match spec.substrate {
            SubstrateConfig::SinrTiled {
                grid,
                epsilon,
                panel_budget,
                seed,
                levels,
                panel_cache,
                threads,
                ..
            } => {
                assert_eq!(grid, 16);
                assert_eq!(epsilon, 0.0);
                assert_eq!(panel_budget, dps_sinr::tiles::DEFAULT_PANEL_BUDGET_BYTES);
                assert_eq!(seed, 0);
                assert_eq!(levels, 1);
                assert_eq!(panel_cache, dps_sinr::tiles::PanelCacheMode::Fixed);
                assert_eq!(threads, 1);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn sinr_tiled_rejects_bad_grid_and_epsilon() {
        let mut spec = sample_spec();
        for (grid, epsilon) in [
            (0, 0.0),
            (1025, 0.0),
            (8, -1.0),
            (8, f64::NAN),
            (8, f64::INFINITY),
        ] {
            let mut substrate = tiled_substrate();
            if let SubstrateConfig::SinrTiled {
                grid: g,
                epsilon: e,
                ..
            } = &mut substrate
            {
                *g = grid;
                *e = epsilon;
            }
            spec.substrate = substrate;
            assert!(
                spec.validate().is_err(),
                "grid {grid}, epsilon {epsilon} must be rejected"
            );
        }
    }

    #[test]
    fn sinr_tiled_rejects_bad_levels_threads_and_panel_cache() {
        let mut spec = sample_spec();
        for (levels, threads) in [(0, 1), (9, 1), (1, 0), (1, 65)] {
            let mut substrate = tiled_substrate();
            if let SubstrateConfig::SinrTiled {
                levels: l,
                threads: t,
                ..
            } = &mut substrate
            {
                *l = levels;
                *t = threads;
            }
            spec.substrate = substrate;
            assert!(
                spec.validate().is_err(),
                "levels {levels}, threads {threads} must be rejected"
            );
        }
        // An unknown residency policy fails at parse time.
        spec.substrate = tiled_substrate();
        let toml = spec.to_toml().replace("adaptive", "clairvoyant");
        assert!(matches!(
            ScenarioSpec::from_toml(&toml),
            Err(ScenarioError::Parse(_))
        ));
    }

    #[test]
    fn with_size_scales_every_substrate() {
        let ring = SubstrateConfig::RingRouting { nodes: 8, hops: 2 }.with_size(16);
        assert_eq!(ring, SubstrateConfig::RingRouting { nodes: 16, hops: 2 });
        let mac = SubstrateConfig::Mac { stations: 8 }.with_size(4);
        assert_eq!(mac, SubstrateConfig::Mac { stations: 4 });
        let sinr = SubstrateConfig::SinrRandom {
            links: 16,
            side: 80.0,
            min_len: 1.0,
            max_len: 3.0,
            power: PowerConfig::Linear,
            seed: 1,
        }
        .with_size(64);
        if let SubstrateConfig::SinrRandom { links, side, .. } = sinr {
            assert_eq!(links, 64);
            assert!((side - 160.0).abs() < 1e-9, "density-preserving scaling");
        } else {
            panic!("variant changed");
        }
        let tiled = tiled_substrate().with_size(1024);
        if let SubstrateConfig::SinrTiled {
            links, side, grid, ..
        } = tiled
        {
            assert_eq!(links, 1024);
            assert!((side - 400.0).abs() < 1e-9, "density-preserving scaling");
            assert_eq!(grid, 8, "grid resolution survives scaling");
        } else {
            panic!("variant changed");
        }
    }
}
