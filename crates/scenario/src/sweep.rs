//! Parameter sweeps: one spec spread over a `(λ, m, seed, repetition)`
//! grid, executed on the workspace's `std::thread::scope` parallel runner
//! ([`dps_sim::parallel::parallel_map`]).
//!
//! Sweeps run on a shared substrate layer: every distinct topology of
//! the grid — keyed by `(substrate spec, size, geometry seed)` through a
//! [`SubstrateCache`] — is built exactly once and handed to all of its
//! λ/repetition cells (and worker threads) behind an `Arc`. For SINR
//! substrates that means one `O(m²)` matrix + gain-table construction
//! per topology instead of one per cell, with bit-for-bit identical
//! results (substrate builds are deterministic and runs never mutate
//! them; the integration suite pins this with a golden fingerprint).

use crate::cache::SubstrateCache;
use crate::error::ScenarioError;
use crate::scenario::{Scenario, ScenarioOutcome};
use crate::spec::ScenarioSpec;
use dps_sim::table::{fmt3, Table};
use serde::Value;

/// A sweep builder over injection rates, substrate sizes, seeds and
/// repetitions.
///
/// ```
/// use dps_scenario::{registry, Sweep};
///
/// let mut spec = registry::spec_for("ring-routing")?;
/// spec.run.frames = 10; // keep the doctest fast
/// let report = Sweep::new(spec)
///     .over_lambdas(&[0.4, 0.8])
///     .repetitions(2)
///     .threads(2)
///     .run()?;
/// assert_eq!(report.cells.len(), 4);
/// println!("{}", report.to_table().render());
/// # Ok::<(), dps_scenario::ScenarioError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Sweep {
    base: ScenarioSpec,
    lambdas: Vec<f64>,
    sizes: Vec<Option<usize>>,
    seeds: Vec<u64>,
    repetitions: u64,
    threads: usize,
    share_substrates: bool,
    substrate_budget_bytes: usize,
}

/// One grid point of a sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepPoint {
    /// The injection rate of this cell (absolute or capacity-relative,
    /// following the base spec).
    pub lambda: f64,
    /// The substrate size override, if the sweep varies sizes.
    pub size: Option<usize>,
    /// The root seed of this cell.
    pub seed: u64,
    /// The repetition (RNG stream) index.
    pub rep: u64,
}

/// One executed grid point.
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// The grid point.
    pub point: SweepPoint,
    /// Its outcome.
    pub outcome: ScenarioOutcome,
}

/// The result of a sweep, renderable as a table, CSV or JSON.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// The swept scenario's name.
    pub name: String,
    /// All executed cells, in grid order (λ outermost, then size, seed,
    /// repetition).
    pub cells: Vec<SweepCell>,
}

impl Sweep {
    /// A sweep of `base` — by default a single cell (the base λ, size and
    /// seed, one repetition) on all available cores.
    pub fn new(base: ScenarioSpec) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Sweep {
            lambdas: vec![base.injection.lambda],
            sizes: vec![None],
            seeds: vec![base.run.seed],
            repetitions: 1,
            threads,
            share_substrates: true,
            substrate_budget_bytes: crate::cache::DEFAULT_BYTE_BUDGET,
            base,
        }
    }

    /// Sweeps the injection rate over `lambdas`.
    pub fn over_lambdas(mut self, lambdas: &[f64]) -> Self {
        if !lambdas.is_empty() {
            self.lambdas = lambdas.to_vec();
        }
        self
    }

    /// Sweeps the substrate size over `sizes` (see
    /// [`ScenarioSpec::with_size`]).
    pub fn over_sizes(mut self, sizes: &[usize]) -> Self {
        if !sizes.is_empty() {
            self.sizes = sizes.iter().map(|&m| Some(m)).collect();
        }
        self
    }

    /// Sweeps the root seed over `seeds`.
    pub fn over_seeds(mut self, seeds: &[u64]) -> Self {
        if !seeds.is_empty() {
            self.seeds = seeds.to_vec();
        }
        self
    }

    /// Runs `reps` repetitions (independent RNG streams) per cell.
    pub fn repetitions(mut self, reps: u64) -> Self {
        self.repetitions = reps.max(1);
        self
    }

    /// Caps the number of OS threads.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Toggles the shared-substrate layer (on by default).
    ///
    /// With sharing off every cell rebuilds its topology from scratch —
    /// the pre-sharing behaviour, kept for A/B comparison (`bench_sweep`
    /// measures exactly this) and as a bisection aid. Results are
    /// bit-for-bit identical either way.
    pub fn share_substrates(mut self, share: bool) -> Self {
        self.share_substrates = share;
        self
    }

    /// Caps the estimated bytes of topologies the sweep's substrate
    /// cache keeps resident (default
    /// [`crate::cache::DEFAULT_BYTE_BUDGET`]).
    ///
    /// Multi-topology grids (size or geometry-seed sweeps of large
    /// substrates) evict least-recently-used topologies beyond the
    /// budget and rebuild them on demand, trading peak memory for
    /// rebuild time. Results are bit-for-bit identical under any
    /// budget — builds are deterministic.
    pub fn substrate_budget_bytes(mut self, budget_bytes: usize) -> Self {
        self.substrate_budget_bytes = budget_bytes;
        self
    }

    /// The grid points this sweep will execute, in execution order.
    pub fn points(&self) -> Vec<SweepPoint> {
        let mut points = Vec::new();
        for &lambda in &self.lambdas {
            for &size in &self.sizes {
                for &seed in &self.seeds {
                    for rep in 0..self.repetitions {
                        points.push(SweepPoint {
                            lambda,
                            size,
                            seed,
                            rep,
                        });
                    }
                }
            }
        }
        points
    }

    /// Executes the grid in parallel.
    ///
    /// Each cell rebuilds protocol and injector from the (validated)
    /// spec, so results are identical no matter how many threads execute
    /// the grid; topologies are built once per distinct `(substrate,
    /// size, seed)` and shared across their cells (see
    /// [`share_substrates`](Self::share_substrates)).
    ///
    /// # Errors
    ///
    /// Returns the first cell error (invalid derived spec or infeasible
    /// rate), if any.
    pub fn run(&self) -> Result<SweepReport, ScenarioError> {
        self.base.validate()?;
        let points = self.points();
        // Build every cell's scenario up front so spec-level errors
        // surface before any simulation time is spent.
        let scenarios: Vec<(SweepPoint, Scenario)> = points
            .into_iter()
            .map(|point| {
                let mut spec = self.base.clone().with_lambda(point.lambda);
                if let Some(m) = point.size {
                    spec = spec.with_size(m);
                }
                spec = spec.with_seed(point.seed);
                Scenario::from_spec(&spec).map(|s| (point, s))
            })
            .collect::<Result<_, _>>()?;
        // Prebuild each distinct topology once, spreading the builds of
        // multi-topology grids (size/substrate-seed sweeps) over the
        // worker threads; afterwards a cell's lookup is a cache hit
        // unless the LRU byte budget evicted its topology, in which case
        // the cell rebuilds on demand. Cells resolve their substrate
        // lazily — holding every handle up front would pin all
        // topologies resident and defeat the budget. Keyless specs
        // (custom substrates that opted out of sharing) rebuild inside
        // their cells — as does everything when sharing is off (the
        // pre-sharing behaviour, kept for A/B measurement).
        let substrates = SubstrateCache::with_byte_budget(self.substrate_budget_bytes);
        let keys: Vec<Option<String>> = if self.share_substrates {
            // One cache_key computation per cell, reused for the dedup
            // pass and the per-cell lookups below.
            let keys: Vec<Option<String>> = scenarios
                .iter()
                .map(|(_, scenario)| scenario.substrate.cache_key())
                .collect();
            // Determinism audit (dps-lint: hash-container): the set is
            // insert-only dedup state; iteration below walks the
            // insertion-ordered `keys` Vec, so warm-up order is the
            // config order regardless of the set's internal order.
            let mut seen = std::collections::HashSet::new();
            let first_of_key: Vec<usize> = keys
                .iter()
                .enumerate()
                .filter(|(_, key)| key.as_ref().is_some_and(|k| seen.insert(k.clone())))
                .map(|(index, _)| index)
                .collect();
            // Stop warming once the cache is at budget or stops
            // growing (eviction displaced as much as the build added):
            // building more would only evict topologies just built,
            // each then built twice — once here, once by its cells.
            // Skipped topologies are built lazily by their first cell.
            // The checks are racy across workers, which at worst warms
            // an extra topology per thread.
            let warm_stopped = std::sync::atomic::AtomicBool::new(false);
            dps_sim::parallel::parallel_map(first_of_key.len(), self.threads, |i| {
                use std::sync::atomic::Ordering;
                if warm_stopped.load(Ordering::Relaxed)
                    || substrates.resident_bytes() >= self.substrate_budget_bytes
                {
                    return Ok::<(), ScenarioError>(());
                }
                let before = substrates.resident_bytes();
                let index = first_of_key[i];
                substrates
                    .get_or_build_keyed(keys[index].as_deref(), &*scenarios[index].1.substrate)?;
                if substrates.resident_bytes() <= before {
                    warm_stopped.store(true, Ordering::Relaxed);
                }
                Ok(())
            })
            .into_iter()
            .collect::<Result<Vec<()>, _>>()?;
            keys
        } else {
            vec![None; scenarios.len()]
        };
        let outcomes = dps_sim::parallel::parallel_map(scenarios.len(), self.threads, |i| {
            let (point, scenario) = &scenarios[i];
            match &keys[i] {
                Some(key) => {
                    let substrate =
                        substrates.get_or_build_keyed(Some(key), &*scenario.substrate)?;
                    scenario.run_stream_on(&substrate, point.rep)
                }
                None => scenario.run_stream(point.rep),
            }
        });
        let cells = scenarios
            .iter()
            .zip(outcomes)
            .map(|((point, _), outcome)| {
                Ok(SweepCell {
                    point: *point,
                    outcome: outcome?,
                })
            })
            .collect::<Result<Vec<_>, ScenarioError>>()?;
        Ok(SweepReport {
            name: self.base.name.clone(),
            cells,
        })
    }
}

impl SweepReport {
    /// Renders the sweep as a [`Table`].
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            format!("sweep: {}", self.name),
            &[
                "lambda",
                "m",
                "seed",
                "rep",
                "verdict",
                "mean backlog",
                "final backlog",
                "delivered/injected",
                "mean latency",
            ],
        );
        for cell in &self.cells {
            let o = &cell.outcome;
            table.push_row(vec![
                fmt3(o.lambda),
                cell.point
                    .size
                    .map(|m| m.to_string())
                    .unwrap_or_else(|| "-".into()),
                cell.point.seed.to_string(),
                cell.point.rep.to_string(),
                o.verdict_cell(),
                fmt3(o.report.mean_backlog()),
                o.report.final_backlog.to_string(),
                fmt3(o.report.delivery_ratio()),
                fmt3(o.report.latency_summary().mean),
            ]);
        }
        table
    }

    /// Renders the sweep as CSV.
    pub fn to_csv(&self) -> String {
        self.to_table().to_csv()
    }

    /// Renders the sweep as JSON (numbers stay numbers, unlike the
    /// table-cell rendering).
    pub fn to_json(&self) -> String {
        let cells: Vec<Value> = self
            .cells
            .iter()
            .map(|cell| {
                let o = &cell.outcome;
                let mut entries = vec![
                    ("lambda".to_string(), Value::F64(o.lambda)),
                    ("seed".to_string(), Value::U64(cell.point.seed)),
                    ("rep".to_string(), Value::U64(cell.point.rep)),
                    ("lambda_max".to_string(), Value::F64(o.lambda_max)),
                    ("frame_len".to_string(), Value::U64(o.frame_len as u64)),
                    ("slots".to_string(), Value::U64(o.slots)),
                    ("stable".to_string(), Value::Bool(o.verdict.is_stable())),
                    ("injected".to_string(), Value::U64(o.report.injected)),
                    ("delivered".to_string(), Value::U64(o.report.delivered)),
                    (
                        "final_backlog".to_string(),
                        Value::U64(o.report.final_backlog as u64),
                    ),
                    (
                        "mean_backlog".to_string(),
                        Value::F64(o.report.mean_backlog()),
                    ),
                    (
                        "mean_latency".to_string(),
                        Value::F64(o.report.latency_summary().mean),
                    ),
                ];
                if let Some(m) = cell.point.size {
                    entries.insert(1, ("m".to_string(), Value::U64(m as u64)));
                }
                if let Some(rate) = o.effective_rate {
                    entries.push(("effective_rate".to_string(), Value::F64(rate)));
                }
                Value::Map(entries)
            })
            .collect();
        let root = Value::Map(vec![
            ("scenario".to_string(), Value::Str(self.name.clone())),
            ("cells".to_string(), Value::Seq(cells)),
        ]);
        serde::json::to_string_pretty(&root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    fn quick_base() -> ScenarioSpec {
        let mut spec = registry::spec_for("ring-routing").unwrap();
        spec.run.frames = 8;
        spec
    }

    #[test]
    fn grid_enumerates_in_order() {
        let sweep = Sweep::new(quick_base())
            .over_lambdas(&[0.3, 0.6])
            .over_seeds(&[1, 2])
            .repetitions(2);
        let points = sweep.points();
        assert_eq!(points.len(), 8);
        assert_eq!(points[0].lambda, 0.3);
        assert_eq!(points[0].seed, 1);
        assert_eq!(points[1].rep, 1);
        assert_eq!(points[7].lambda, 0.6);
    }

    #[test]
    fn sweep_runs_and_renders_all_formats() {
        let mut base = quick_base();
        // Long enough that the warm-up ramp does not dominate the verdict.
        base.run.frames = 40;
        let report = Sweep::new(base)
            .over_lambdas(&[0.4, 1.3])
            .threads(2)
            .run()
            .unwrap();
        assert_eq!(report.cells.len(), 2);
        let table = report.to_table();
        assert_eq!(table.num_rows(), 2);
        assert!(report.to_csv().contains("lambda"));
        let json = serde::json::parse(&report.to_json()).unwrap();
        let cells = json.get("cells").unwrap().as_seq().unwrap();
        assert_eq!(cells.len(), 2);
        assert!(cells[0].get("stable").unwrap().as_bool().unwrap());
        assert!(!cells[1].get("stable").unwrap().as_bool().unwrap());
    }

    #[test]
    fn size_sweep_rescales_the_substrate() {
        let report = Sweep::new(quick_base())
            .over_sizes(&[4, 8])
            .threads(2)
            .run()
            .unwrap();
        assert_eq!(report.cells.len(), 2);
        assert!(report.cells[0].outcome.substrate.contains("ring(4)"));
        assert!(report.cells[1].outcome.substrate.contains("ring(8)"));
    }

    #[test]
    fn invalid_base_is_rejected_before_running() {
        let spec = quick_base().with_lambda(-1.0);
        assert!(Sweep::new(spec).run().is_err());
    }

    #[test]
    fn tiny_substrate_budget_matches_unbounded_results() {
        // A 1-byte budget evicts every topology immediately, forcing
        // per-cell rebuilds; builds are deterministic, so the cells must
        // be bit-for-bit the default-budget cells.
        let mut spec = registry::spec_for("sinr-linear").unwrap();
        spec.run.frames = 2;
        let run = |budget: usize| {
            Sweep::new(spec.clone())
                .over_sizes(&[6, 8])
                .threads(2)
                .substrate_budget_bytes(budget)
                .run()
                .unwrap()
        };
        let bounded = run(1);
        let unbounded = run(usize::MAX);
        assert_eq!(bounded.cells.len(), unbounded.cells.len());
        for (a, b) in bounded.cells.iter().zip(&unbounded.cells) {
            assert_eq!(a.point, b.point);
            assert_eq!(a.outcome.report.injected, b.outcome.report.injected);
            assert_eq!(a.outcome.report.delivered, b.outcome.report.delivered);
            assert_eq!(a.outcome.report.latencies, b.outcome.report.latencies);
            assert_eq!(
                a.outcome.report.backlog_series,
                b.outcome.report.backlog_series
            );
        }
    }
}
