//! CI entry point: scans the workspace's simulation sources for
//! determinism hazards and fails on any finding not covered by the
//! audited allowlist (`dps-lint.allow` at the repo root).
//!
//! ```text
//! dps-lint [--root DIR] [--allow FILE]
//! ```
//!
//! Exit code 1 on unaudited findings or a malformed allowlist; stale
//! allowlist entries (matching nothing) are reported as warnings so
//! audits do not outlive the code they blessed.

use dps_lint::{apply_allowlist, default_roots, parse_allowlist, scan_roots};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .expect("crates/lint sits two levels under the repo root");
    let mut allow_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--allow" => match args.next() {
                Some(file) => allow_path = Some(PathBuf::from(file)),
                None => {
                    eprintln!("--allow needs a file");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("usage: dps-lint [--root DIR] [--allow FILE]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let allow_path = allow_path.unwrap_or_else(|| root.join("dps-lint.allow"));

    let allow_text = match std::fs::read_to_string(&allow_path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("cannot read allowlist {}: {err}", allow_path.display());
            return ExitCode::FAILURE;
        }
    };
    let entries = match parse_allowlist(&allow_text) {
        Ok(entries) => entries,
        Err(msg) => {
            eprintln!("{}: {msg}", allow_path.display());
            return ExitCode::FAILURE;
        }
    };

    let findings = match scan_roots(&default_roots(&root)) {
        Ok(findings) => findings,
        Err(err) => {
            eprintln!("scan failed: {err}");
            return ExitCode::FAILURE;
        }
    };
    let (violations, used) = apply_allowlist(&findings, &entries);

    for (entry, &was_used) in entries.iter().zip(&used) {
        if !was_used {
            eprintln!(
                "warning: stale allowlist entry `{} | {} | {}` matched nothing",
                entry.rule, entry.path_suffix, entry.fragment
            );
        }
    }
    if violations.is_empty() {
        println!(
            "dps-lint: clean ({} audited findings, {} allowlist entries)",
            findings.len(),
            entries.len()
        );
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        let why = dps_lint::RULES
            .iter()
            .find(|r| r.name == v.rule)
            .map(|r| r.why)
            .unwrap_or("");
        eprintln!("{v}\n    {why}");
    }
    eprintln!(
        "dps-lint: {} unaudited determinism hazard(s); audit each site and add it to {}",
        violations.len(),
        allow_path.display()
    );
    ExitCode::FAILURE
}
