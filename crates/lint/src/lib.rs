//! Determinism lints for the simulation workspace.
//!
//! Every simulation result in this repository is supposed to be a pure
//! function of `(configuration, seed)` — that is what the golden
//! fingerprints, the interned/Packet lane-equivalence tests and the
//! event/per-slot differential tests all assert. Three hazard classes
//! can silently break that purity:
//!
//! * **`hash-container`** — `HashMap`/`HashSet` iteration order is
//!   randomized per process (`RandomState`); iterating one in a code
//!   path that feeds simulation decisions or output makes runs
//!   irreproducible.
//! * **`std-time`** — wall-clock reads (`std::time`, `SystemTime`,
//!   `Instant::now`) leak the host's clock into results.
//! * **`unseeded-rng`** — entropy-seeded generators (`thread_rng`,
//!   `from_entropy`, `OsRng`, `rand::random`) bypass the workspace's
//!   root-seed/stream-splitting discipline.
//!
//! The linter is a deliberately simple line scanner: it flags every
//! *use* of a hazardous name (not just iteration), because proving
//! "this map is never iterated" syntactically is beyond a line scanner
//! and the workspace's policy is that every such use must be audited
//! once and recorded in the allowlist (`dps-lint.allow` at the repo
//! root) with a comment explaining why it is sound. A new hazard —
//! or an allowlist entry gone stale because the code it blessed was
//! removed — fails CI.
//!
//! Comment text is stripped before matching, so prose *about*
//! `HashMap` (like this paragraph) never trips the lint.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A hazard class the linter scans for.
pub struct Rule {
    /// Stable rule name, referenced by allowlist entries.
    pub name: &'static str,
    /// Substrings whose presence on a (comment-stripped) line flags it.
    pub needles: &'static [&'static str],
    /// One-line rationale shown with findings.
    pub why: &'static str,
}

/// The workspace's hazard rules.
pub const RULES: &[Rule] = &[
    Rule {
        name: "hash-container",
        needles: &["HashMap", "HashSet"],
        why: "iteration order is randomized per process; audited sites must not let \
              order reach simulation decisions or output",
    },
    Rule {
        name: "std-time",
        needles: &["std::time", "SystemTime", "Instant::now"],
        why: "wall-clock reads make results depend on the host; simulation time is \
              the slot counter",
    },
    Rule {
        name: "unseeded-rng",
        needles: &["thread_rng", "from_entropy", "OsRng", "rand::random"],
        why: "entropy-seeded generators bypass the root-seed/stream discipline",
    },
];

/// One flagged line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Name of the rule that fired.
    pub rule: &'static str,
    /// Path of the file, as given to the scanner.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The raw line text (trimmed).
    pub text: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.text
        )
    }
}

/// One audited exemption, parsed from `dps-lint.allow`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule the exemption applies to.
    pub rule: String,
    /// Matched against the end of the finding's path (`/`-normalized).
    pub path_suffix: String,
    /// Matched as a substring of the finding's line text.
    pub fragment: String,
}

/// Strips `//` line comments. Naive about `//` inside string literals,
/// which is fine for a lint whose needles are identifiers.
fn strip_line_comment(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// Scans one file's content, returning findings in line order.
pub fn scan_file(path: &Path, content: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, raw) in content.lines().enumerate() {
        let code = strip_line_comment(raw);
        for rule in RULES {
            if rule.needles.iter().any(|needle| code.contains(needle)) {
                findings.push(Finding {
                    rule: rule.name,
                    path: path.to_path_buf(),
                    line: idx + 1,
                    text: raw.trim().to_string(),
                });
            }
        }
    }
    findings
}

/// Collects every `.rs` file under `root` (recursively), sorted, so the
/// scan itself is deterministic.
fn rust_files(root: &Path, into: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(root)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, into)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            into.push(path);
        }
    }
    Ok(())
}

/// Scans every `.rs` file under the given roots.
///
/// # Errors
///
/// Propagates filesystem errors (a missing root is an error: silently
/// scanning nothing would pass vacuously).
pub fn scan_roots(roots: &[PathBuf]) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for root in roots {
        rust_files(root, &mut files)?;
    }
    let mut findings = Vec::new();
    for file in files {
        let content = fs::read_to_string(&file)?;
        findings.extend(scan_file(&file, &content));
    }
    Ok(findings)
}

/// The source roots the workspace lints: the facade plus every `dps-*`
/// simulation crate. `crates/compat` (vendored stand-ins), `dps-model`
/// and `dps-lint` itself are exempt — none of them feed simulation
/// results.
pub fn default_roots(repo_root: &Path) -> Vec<PathBuf> {
    [
        "src",
        "crates/core/src",
        "crates/sinr/src",
        "crates/conflict/src",
        "crates/mac/src",
        "crates/routing/src",
        "crates/sim/src",
        "crates/scenario/src",
        "crates/bench/src",
    ]
    .iter()
    .map(|rel| repo_root.join(rel))
    .collect()
}

/// Parses `dps-lint.allow`: one `rule | path-suffix | line-fragment`
/// entry per line; `#` starts a comment; blank lines are skipped.
///
/// # Errors
///
/// Returns a message naming the offending line on malformed entries or
/// unknown rule names.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.splitn(3, '|').map(str::trim).collect();
        if parts.len() != 3 || parts.iter().any(|p| p.is_empty()) {
            return Err(format!(
                "allowlist line {}: expected `rule | path-suffix | line-fragment`, got `{raw}`",
                idx + 1
            ));
        }
        if !RULES.iter().any(|r| r.name == parts[0]) {
            return Err(format!(
                "allowlist line {}: unknown rule `{}`",
                idx + 1,
                parts[0]
            ));
        }
        entries.push(AllowEntry {
            rule: parts[0].to_string(),
            path_suffix: parts[1].to_string(),
            fragment: parts[2].to_string(),
        });
    }
    Ok(entries)
}

/// Splits findings into `(violations, used-entry flags)`: a finding is
/// exempt when some entry matches its rule, path suffix and line text.
/// The flags (index-aligned with `entries`) let callers report stale
/// entries that matched nothing.
pub fn apply_allowlist(findings: &[Finding], entries: &[AllowEntry]) -> (Vec<Finding>, Vec<bool>) {
    let mut used = vec![false; entries.len()];
    let mut violations = Vec::new();
    for finding in findings {
        let path = finding.path.to_string_lossy().replace('\\', "/");
        let mut allowed = false;
        for (i, entry) in entries.iter().enumerate() {
            if entry.rule == finding.rule
                && path.ends_with(&entry.path_suffix)
                && finding.text.contains(&entry.fragment)
            {
                used[i] = true;
                allowed = true;
            }
        }
        if !allowed {
            violations.push(finding.clone());
        }
    }
    (violations, used)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_each_rule_and_skips_comments() {
        let src = "\
use std::collections::HashMap; // lookup only\n\
// a comment mentioning HashSet does not count\n\
let t = std::time::Instant::now();\n\
let mut rng = rand::thread_rng();\n\
let ok = BTreeMap::new();\n";
        let findings = scan_file(Path::new("x.rs"), src);
        let rules: Vec<_> = findings.iter().map(|f| f.rule).collect();
        assert_eq!(rules, ["hash-container", "std-time", "unseeded-rng"]);
        assert_eq!(findings[0].line, 1);
        assert_eq!(findings[1].line, 3);
    }

    #[test]
    fn allowlist_matches_on_rule_path_and_fragment() {
        let findings = vec![
            Finding {
                rule: "hash-container",
                path: PathBuf::from("/repo/crates/core/src/route_table.rs"),
                line: 26,
                text: "use std::collections::HashMap;".into(),
            },
            Finding {
                rule: "hash-container",
                path: PathBuf::from("/repo/crates/sim/src/runner.rs"),
                line: 10,
                text: "let m = HashMap::new();".into(),
            },
        ];
        let entries = parse_allowlist(
            "# audited\nhash-container | crates/core/src/route_table.rs | use std::collections::HashMap\n",
        )
        .unwrap();
        let (violations, used) = apply_allowlist(&findings, &entries);
        assert_eq!(violations.len(), 1, "only the unaudited site survives");
        assert_eq!(violations[0].path, findings[1].path);
        assert_eq!(used, [true]);
    }

    #[test]
    fn stale_entries_are_reported_unused() {
        let entries =
            parse_allowlist("std-time | crates/gone/src/old.rs | Instant::now\n").unwrap();
        let (violations, used) = apply_allowlist(&[], &entries);
        assert!(violations.is_empty());
        assert_eq!(used, [false]);
    }

    #[test]
    fn malformed_and_unknown_rule_lines_are_rejected() {
        assert!(parse_allowlist("just-two | parts\n").is_err());
        assert!(parse_allowlist("no-such-rule | a.rs | fragment\n").is_err());
        assert!(parse_allowlist("# only comments\n\n").unwrap().is_empty());
    }
}
