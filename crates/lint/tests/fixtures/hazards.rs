//! Negative fixture for dps-lint: every rule must fire on this file.
//! Not compiled — test data only (cargo only builds direct children of
//! `tests/`).

use std::collections::HashMap;
use std::time::SystemTime;

fn hazards() {
    let mut order_hazard: HashMap<u32, u32> = HashMap::new();
    order_hazard.insert(1, 2);
    let clock_hazard = SystemTime::now();
    let timer_hazard = std::time::Instant::now();
    let mut seed_hazard = rand::thread_rng();
    let also_seed_hazard: u64 = rand::random();
    // A comment mentioning HashSet must NOT fire.
    let _ = (order_hazard, clock_hazard, timer_hazard, seed_hazard, also_seed_hazard);
}
