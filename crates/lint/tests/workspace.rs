//! The two promises dps-lint makes to CI: the current tree is clean
//! under the audited allowlist, and the linter actually fires on known
//! hazards (so "clean" is not vacuous).

use dps_lint::{apply_allowlist, default_roots, parse_allowlist, scan_file, scan_roots};
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels under the repo root")
        .to_path_buf()
}

#[test]
fn the_negative_fixture_trips_every_rule() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/hazards.rs");
    let content = std::fs::read_to_string(&fixture).expect("fixture exists");
    let findings = scan_file(&fixture, &content);
    for rule in ["hash-container", "std-time", "unseeded-rng"] {
        assert!(
            findings.iter().any(|f| f.rule == rule),
            "rule {rule} failed to fire on the fixture; findings: {findings:?}"
        );
    }
    // The comment-only mention of HashSet must not fire: every
    // hash-container finding names HashMap.
    assert!(findings
        .iter()
        .filter(|f| f.rule == "hash-container")
        .all(|f| f.text.contains("HashMap")));
}

#[test]
fn the_workspace_is_clean_under_the_audited_allowlist() {
    let root = repo_root();
    let allow = std::fs::read_to_string(root.join("dps-lint.allow")).expect("allowlist exists");
    let entries = parse_allowlist(&allow).expect("allowlist parses");
    let findings = scan_roots(&default_roots(&root)).expect("scan succeeds");
    assert!(
        !findings.is_empty(),
        "the audited sites should still be found (else the scanner went blind)"
    );
    let (violations, used) = apply_allowlist(&findings, &entries);
    assert!(
        violations.is_empty(),
        "unaudited determinism hazards:\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    let stale: Vec<_> = entries
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(e, _)| format!("{} | {} | {}", e.rule, e.path_suffix, e.fragment))
        .collect();
    assert!(stale.is_empty(), "stale allowlist entries: {stale:?}");
}
