//! Breadth-first exhaustive state-space exploration with canonical
//! fingerprints.
//!
//! The checker is deliberately stateright-shaped but hand-rolled: a
//! [`Model`] exposes initial states, an action enumerator (the explicit
//! nondeterminism), a transition function and a per-state invariant
//! check; [`check_model`] explores every reachable canonical state
//! breadth-first and returns either a [`CheckReport`] (the space was
//! exhausted, or truncated at the configured limits) or a
//! [`Counterexample`] — the shortest action sequence from an initial
//! state to the first state violating an invariant.
//!
//! De-duplication uses each state's *canonical fingerprint* (a byte
//! encoding of its logical content) stored in a `BTreeSet`, so two
//! physically different states — e.g. differing only in which recycled
//! store slot a packet occupies — explore their successors once. The
//! invariant check still runs on every state *before* it is deduped, so
//! physical-layout invariants are verified on each encountered layout.
//! A `BTreeSet` rather than a hash set keeps the checker itself free of
//! the iteration-order hazards `dps-lint` flags elsewhere.

use dps_core::invariants::InvariantViolation;
use std::collections::{BTreeSet, VecDeque};

/// A checkable transition system with explicit nondeterminism.
///
/// Actions carry *all* random choices of a step (injection subsets,
/// transmission successes, clean-up selections), so enumerating the
/// actions of a state enumerates every behaviour any adversary, RNG
/// seed or success probability in `(0, 1)` could produce.
pub trait Model {
    /// A reachable configuration of the system.
    type State: Clone;
    /// One resolved step of nondeterminism.
    type Action: Clone;

    /// The initial states (usually one).
    fn init_states(&self) -> Vec<Self::State>;

    /// Writes every action enabled in `state` into `into` (cleared
    /// first). An empty set marks `state` as terminal.
    fn actions(&self, state: &Self::State, into: &mut Vec<Self::Action>);

    /// The successor of `state` under `action`.
    fn next_state(&self, state: &Self::State, action: &Self::Action) -> Self::State;

    /// Checks every invariant in `state`.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    fn check(&self, state: &Self::State) -> Result<(), InvariantViolation>;

    /// Canonical byte encoding of `state`'s logical content: two states
    /// with equal fingerprints must have identical future behaviour.
    fn fingerprint(&self, state: &Self::State) -> Vec<u8>;

    /// Human-readable rendering of `action`, for counterexample traces.
    fn describe_action(&self, action: &Self::Action) -> String;

    /// Human-readable rendering of `state`, for counterexample traces.
    fn describe_state(&self, state: &Self::State) -> String;
}

/// Exploration limits.
#[derive(Clone, Copy, Debug)]
pub struct CheckConfig {
    /// Stop enqueueing once this many distinct states were discovered.
    pub max_states: usize,
    /// Do not expand states more than this many actions deep.
    pub max_depth: usize,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            max_states: 1_000_000,
            max_depth: 10_000,
        }
    }
}

/// Exploration statistics of a violation-free run.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// Distinct canonical states discovered (all passed every check).
    pub distinct_states: usize,
    /// Transitions taken (successor computations, including those that
    /// landed on an already-known state).
    pub transitions: usize,
    /// Deepest action sequence explored.
    pub max_depth_reached: usize,
    /// `true` when a limit in [`CheckConfig`] cut exploration short, so
    /// the run is a smoke test rather than an exhaustive proof.
    pub truncated: bool,
}

/// The shortest path from an initial state to an invariant violation.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// What broke.
    pub violation: InvariantViolation,
    /// Action descriptions from an initial state to the bad state.
    pub trace: Vec<String>,
    /// Rendering of the violating state.
    pub state: String,
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.violation)?;
        writeln!(f, "counterexample ({} steps):", self.trace.len())?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "  {i:>3}. {step}")?;
        }
        write!(f, "final state: {}", self.state)
    }
}

struct Node {
    parent: usize,
    action: Option<String>,
    depth: usize,
}

/// Explores every state of `model` reachable within `config`'s limits,
/// checking invariants on each state as it is first encountered.
///
/// Breadth-first order makes a returned counterexample minimal in
/// action count.
///
/// # Errors
///
/// Returns the first [`Counterexample`] found.
pub fn check_model<M: Model>(
    model: &M,
    config: &CheckConfig,
) -> Result<CheckReport, Box<Counterexample>> {
    let mut visited: BTreeSet<Vec<u8>> = BTreeSet::new();
    let mut nodes: Vec<Node> = Vec::new();
    let mut queue: VecDeque<(usize, M::State)> = VecDeque::new();
    let mut report = CheckReport {
        distinct_states: 0,
        transitions: 0,
        max_depth_reached: 0,
        truncated: false,
    };

    let trace_of = |nodes: &[Node], mut idx: usize| {
        let mut trace = Vec::new();
        loop {
            let node = &nodes[idx];
            if let Some(action) = &node.action {
                trace.push(action.clone());
                idx = node.parent;
            } else {
                break;
            }
        }
        trace.reverse();
        trace
    };

    for state in model.init_states() {
        if !visited.insert(model.fingerprint(&state)) {
            continue;
        }
        nodes.push(Node {
            parent: usize::MAX,
            action: None,
            depth: 0,
        });
        let idx = nodes.len() - 1;
        if let Err(violation) = model.check(&state) {
            return Err(Box::new(Counterexample {
                violation,
                trace: trace_of(&nodes, idx),
                state: model.describe_state(&state),
            }));
        }
        queue.push_back((idx, state));
    }
    report.distinct_states = nodes.len();

    let mut actions = Vec::new();
    while let Some((idx, state)) = queue.pop_front() {
        let depth = nodes[idx].depth;
        report.max_depth_reached = report.max_depth_reached.max(depth);
        model.actions(&state, &mut actions);
        if !actions.is_empty() && depth >= config.max_depth {
            report.truncated = true;
            continue;
        }
        for action in actions.drain(..) {
            report.transitions += 1;
            let next = model.next_state(&state, &action);
            if !visited.insert(model.fingerprint(&next)) {
                continue;
            }
            if nodes.len() >= config.max_states {
                report.truncated = true;
                continue;
            }
            nodes.push(Node {
                parent: idx,
                action: Some(model.describe_action(&action)),
                depth: depth + 1,
            });
            let next_idx = nodes.len() - 1;
            report.distinct_states = nodes.len();
            if let Err(violation) = model.check(&next) {
                return Err(Box::new(Counterexample {
                    violation,
                    trace: trace_of(&nodes, next_idx),
                    state: model.describe_state(&next),
                }));
            }
            queue.push_back((next_idx, next));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counter that may +1 or +2 per step, capped at `limit`; the
    /// invariant forbids reaching `poison`.
    struct Counter {
        limit: u32,
        poison: Option<u32>,
    }

    impl Model for Counter {
        type State = u32;
        type Action = u32;

        fn init_states(&self) -> Vec<u32> {
            vec![0]
        }

        fn actions(&self, state: &u32, into: &mut Vec<u32>) {
            into.clear();
            for delta in [1, 2] {
                if state + delta <= self.limit {
                    into.push(delta);
                }
            }
        }

        fn next_state(&self, state: &u32, action: &u32) -> u32 {
            state + action
        }

        fn check(&self, state: &u32) -> Result<(), InvariantViolation> {
            if Some(*state) == self.poison {
                return Err(InvariantViolation::new("poison", format!("hit {state}")));
            }
            Ok(())
        }

        fn fingerprint(&self, state: &u32) -> Vec<u8> {
            state.to_le_bytes().to_vec()
        }

        fn describe_action(&self, action: &u32) -> String {
            format!("+{action}")
        }

        fn describe_state(&self, state: &u32) -> String {
            format!("counter = {state}")
        }
    }

    #[test]
    fn exhausts_the_reachable_space() {
        let model = Counter {
            limit: 10,
            poison: None,
        };
        let report = check_model(&model, &CheckConfig::default()).unwrap();
        assert_eq!(report.distinct_states, 11, "0..=10 all reachable");
        assert!(!report.truncated);
        // BFS records each state at its shortest path: 9 and 10 both
        // first appear after five steps (four +2s and one +1).
        assert_eq!(report.max_depth_reached, 5);
    }

    #[test]
    fn finds_the_shortest_counterexample() {
        let model = Counter {
            limit: 10,
            poison: Some(7),
        };
        let ce = check_model(&model, &CheckConfig::default()).unwrap_err();
        assert_eq!(ce.violation.invariant, "poison");
        // BFS: 7 is reachable in ceil(7/2) = 4 steps, never fewer.
        assert_eq!(ce.trace.len(), 4, "trace {:?}", ce.trace);
        assert!(ce.to_string().contains("counter = 7"));
    }

    #[test]
    fn depth_limit_truncates_and_reports_it() {
        let model = Counter {
            limit: 100,
            poison: None,
        };
        let report = check_model(
            &model,
            &CheckConfig {
                max_states: 1_000_000,
                max_depth: 3,
            },
        )
        .unwrap();
        assert!(report.truncated);
        assert!(report.distinct_states < 101);
    }

    #[test]
    fn state_limit_truncates_and_reports_it() {
        let model = Counter {
            limit: 1000,
            poison: None,
        };
        let report = check_model(
            &model,
            &CheckConfig {
                max_states: 10,
                max_depth: 10_000,
            },
        )
        .unwrap();
        assert!(report.truncated);
        assert_eq!(report.distinct_states, 10);
    }
}
