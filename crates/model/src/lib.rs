//! Exhaustive model checking of the dynamic frame protocol on tiny
//! instances.
//!
//! The simulator validates the protocol statistically: golden
//! fingerprints pin one trajectory, and tests sample a few seeds. This
//! crate closes the remaining gap for the *bookkeeping identities* the
//! stability argument rests on: it explores **every** reachable state
//! of tiny instances — all injection interleavings, all transmission
//! success patterns, all clean-up coin outcomes — and checks the shared
//! invariant layer ([`dps_core::invariants`]) in each one. A hand-rolled
//! breadth-first checker ([`check_model`]) keeps the crate free of
//! external dependencies and returns minimal counterexample traces.
//!
//! # Checked properties, and where they come from in the paper
//!
//! | Invariant tag | Property | Source (Kesselheim, PODC 2012) |
//! |---|---|---|
//! | `packet-conservation` | every injected packet is in exactly one of waiting / travelling / failed / delivered | the queueing accounting behind the stability theorems (Theorems 3 and 8) |
//! | `no-duplicate-delivery` | a packet is delivered at most once | implicit in the definition of delivery, Section 2 |
//! | `potential-accounting` | `Φ` equals the total remaining hops of failed packets | the potential function of Section 4 |
//! | `potential-monotone` | within a frame, after failures are charged, `Φ` only decreases | each successful clean-up transmission advances one failed packet one hop — the drift argument of Section 4 |
//! | `failed-buffers` | a failed packet waits in the buffer of its next-hop link, with hops to spare | the clean-up phase's per-link buffer discipline, Section 4 |
//! | `state-tags` | the columnar store's lifecycle tags agree with the protocol's lists | implementation soundness |
//! | `store-columns`, `store-free-list`, `store-partition` | the SoA store's slots are exactly partitioned into live and free | implementation soundness of the columnar data plane |
//! | `route-csr`, `route-content-map`, `route-ptr-map`, `route-pin-bound` | the route interner stays canonical | implementation soundness of route interning |
//!
//! The model ([`FrameModel`]) embeds the real `PacketStore` and
//! `RouteTable` from `dps-core`, so the implementation-soundness rows
//! are checked against genuine data-plane states. Protocol control flow
//! is mirrored with nondeterminism made explicit; see the
//! [`frame_model`] module docs for the exact abstraction gap.
//!
//! # Mutation confidence
//!
//! A checker that never fires is indistinguishable from a checker that
//! checks nothing. [`Fault`] seeds representative bookkeeping bugs
//! (a leaked store slot, a forgotten `Φ` decrement, a mis-filed failed
//! packet, …) into the transition function, and this crate's tests
//! assert each fault is caught *and* attributed to the expected
//! invariant.
//!
//! # Command line
//!
//! `cargo run -p dps-model --bin model-check` exhausts every preset and
//! exits non-zero on the first violation, printing the minimal trace.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod checker;
pub mod frame_model;

pub use checker::{check_model, CheckConfig, CheckReport, Counterexample, Model};
pub use frame_model::{presets, Fault, FrameModel, Geometry};
