//! Exhausts the tiny-instance presets and fails on any invariant
//! violation — the CI entry point of `dps-model`.
//!
//! ```text
//! model-check [--list] [--max-states N] [preset ...]
//! ```
//!
//! With no preset arguments every preset runs. Exit code 1 on the first
//! violation (printing the minimal counterexample trace) or on an
//! unknown preset name; exit code 0 otherwise.

use dps_model::{check_model, presets, CheckConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut max_states = CheckConfig::default().max_states;
    let mut wanted: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => {
                for model in presets() {
                    println!("{}", model.name());
                }
                return ExitCode::SUCCESS;
            }
            "--max-states" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--max-states needs a number");
                    return ExitCode::FAILURE;
                };
                max_states = n;
            }
            "--help" | "-h" => {
                println!("usage: model-check [--list] [--max-states N] [preset ...]");
                return ExitCode::SUCCESS;
            }
            other => wanted.push(other.to_string()),
        }
    }

    let all = presets();
    let selected: Vec<_> = if wanted.is_empty() {
        all
    } else {
        let mut selected = Vec::new();
        for name in &wanted {
            match all.iter().find(|m| m.name() == name) {
                Some(model) => selected.push(model.clone()),
                None => {
                    eprintln!(
                        "unknown preset `{name}`; available: {}",
                        all.iter().map(|m| m.name()).collect::<Vec<_>>().join(", ")
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
        selected
    };

    let config = CheckConfig {
        max_states,
        ..CheckConfig::default()
    };
    for model in &selected {
        match check_model(model, &config) {
            Ok(report) => {
                println!(
                    "{:<20} ok: {} states, {} transitions, depth {}{}",
                    model.name(),
                    report.distinct_states,
                    report.transitions,
                    report.max_depth_reached,
                    if report.truncated {
                        " (truncated — smoke only)"
                    } else {
                        " (exhausted)"
                    }
                );
            }
            Err(ce) => {
                eprintln!("{:<20} FAILED: {ce}", model.name());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
