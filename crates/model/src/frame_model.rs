//! An exhaustively-checkable model of the dynamic frame protocol.
//!
//! [`FrameModel`] mirrors the slot-level semantics of
//! `dps_core::dynamic::DynamicProtocol` on tiny instances, with every
//! random choice lifted into the action:
//!
//! * **injection** — any subset of the scenario's not-yet-injected
//!   packets may arrive in any slot (all interleavings a `(w, λ)`
//!   adversary or stochastic injector could produce within the bound);
//! * **transmission success** — any subset of a slot's attempts may
//!   succeed (covers every feasibility oracle, including lossy and
//!   jammed ones);
//! * **clean-up selection** — any subset of the non-empty failed buffers
//!   may be selected (covers every coin sequence for any
//!   `cleanup_select_prob` in `(0, 1)`).
//!
//! The state embeds the *real* [`PacketStore`] and [`RouteTable`] from
//! `dps-core`, driven through their public API exactly as the protocol
//! drives them — so `dps_core::invariants::check_store_partition` and
//! `check_route_table` are exercised against genuine data-plane states,
//! not a re-implementation.
//!
//! The deliberate abstractions from `DynamicProtocol` (none affect the
//! checked identities):
//!
//! * the embedded static algorithm's slot-by-slot attempt pattern is
//!   over-approximated — every un-acked packet may attempt in every
//!   main-phase slot, and any subset may succeed;
//! * delivered packets leave the active list (and free their store
//!   slot) immediately rather than at the main→clean-up rebuild;
//! * per-frame summaries and reusable scratch buffers are not modelled.
//!
//! [`Fault`] re-introduces representative bookkeeping bugs into the
//! transition function; the crate's mutation tests prove the checker
//! detects each one with the expected invariant name.

use crate::checker::Model;
use dps_core::ids::{LinkId, PacketId};
use dps_core::invariants::{check_route_table, check_store_partition, InvariantViolation};
use dps_core::path::RoutePath;
use dps_core::route_table::{RouteId, RouteTable};
use dps_core::store::{PacketRef, PacketState, PacketStore};

/// Frame geometry of a model instance: a `frame_len`-slot frame opening
/// with `main_budget` main-phase slots followed by `cleanup_budget`
/// clean-up slots (the remainder idles).
#[derive(Clone, Copy, Debug)]
pub struct Geometry {
    /// Slots per frame (`T`).
    pub frame_len: usize,
    /// Main-phase slots (`T'`).
    pub main_budget: usize,
    /// Clean-up slots.
    pub cleanup_budget: usize,
}

impl Geometry {
    /// The tiniest meaningful geometry: 4-slot frames, 2 main slots,
    /// 1 clean-up slot — the same shape as `dps-core`'s frame tests.
    pub fn tiny() -> Self {
        Geometry {
            frame_len: 4,
            main_budget: 2,
            cleanup_budget: 1,
        }
    }

    fn validate(&self) {
        assert!(self.frame_len >= self.main_budget + self.cleanup_budget);
        assert!(self.main_budget >= 1 && self.cleanup_budget >= 1);
    }
}

/// A deliberately-introduced bookkeeping bug, for mutation smoke tests
/// proving the checker detects real defect classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// A successful clean-up transmission forgets to decrement `Φ`.
    SkipPotentialDecrement,
    /// A delivered packet's store slot is never freed.
    LeakDeliveredSlot,
    /// Failed packets are always buffered under link 0.
    WrongBufferLink,
    /// `failed_total` is not incremented when a packet fails.
    ForgetFailedTotal,
    /// A failing packet is pushed into two buffers.
    DoubleBufferFailed,
}

/// A tiny protocol instance to explore exhaustively.
#[derive(Clone, Debug)]
pub struct FrameModel {
    name: String,
    geometry: Geometry,
    num_links: usize,
    /// Each route is a non-empty link sequence.
    routes: Vec<Vec<LinkId>>,
    /// Scenario packets: the route index each will travel.
    packets: Vec<usize>,
    /// Stop expanding states once this many frames have closed.
    horizon_frames: u64,
    fault: Option<Fault>,
}

impl FrameModel {
    /// A model instance over `num_links` links.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry, an out-of-range link or route
    /// index, or more than 16 scenario packets (the injection mask is
    /// enumerated exhaustively, so keep instances tiny).
    pub fn new(
        name: impl Into<String>,
        geometry: Geometry,
        num_links: usize,
        routes: Vec<Vec<LinkId>>,
        packets: Vec<usize>,
        horizon_frames: u64,
    ) -> Self {
        geometry.validate();
        assert!(packets.len() <= 16, "keep model instances tiny");
        for route in &routes {
            assert!(!route.is_empty(), "routes must be non-empty");
            for link in route {
                assert!((link.index()) < num_links, "route uses unknown link");
            }
        }
        for &r in &packets {
            assert!(r < routes.len(), "packet references unknown route");
        }
        FrameModel {
            name: name.into(),
            geometry,
            num_links,
            routes,
            packets,
            horizon_frames,
            fault: None,
        }
    }

    /// The instance's name (used by the `model-check` binary).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of scenario packets.
    pub fn num_packets(&self) -> usize {
        self.packets.len()
    }

    /// Injects `fault` into the transition function.
    pub fn with_fault(mut self, fault: Fault) -> Self {
        self.fault = Some(fault);
        self
    }

    fn is_terminal(&self, state: &FrameState) -> bool {
        state.frame >= self.horizon_frames
    }
}

/// Where a scenario packet currently is, from the model's perspective.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Spot {
    NotInjected,
    Waiting,
    Active { acked: bool },
    Failed { selected: bool, acked: bool },
}

/// A reachable configuration of the modelled protocol.
#[derive(Clone, Debug)]
pub struct FrameState {
    /// The real columnar store, driven through its public API.
    store: PacketStore,
    /// The real route interner.
    table: RouteTable,
    /// Interned id of each model route (index-aligned with
    /// `FrameModel::routes`).
    route_ids: Vec<RouteId>,
    slot_in_frame: usize,
    frame: u64,
    /// Bitmask of scenario packets injected so far.
    injected: u32,
    waiting: Vec<PacketRef>,
    active: Vec<PacketRef>,
    /// Main-phase ack flags, index-aligned with `active`.
    acked: Vec<bool>,
    /// Per-link failed buffers of `(packet, frame it failed in)`.
    failed: Vec<Vec<(PacketRef, u64)>>,
    failed_total: usize,
    potential: u64,
    delivered: Vec<PacketId>,
    /// This frame's clean-up selection, with per-entry ack flags.
    selected: Vec<(LinkId, PacketRef)>,
    sel_acked: Vec<bool>,
    /// `Φ` right after this frame's failures were charged; until the
    /// frame closes, `Φ` may only move down from here (the potential
    /// argument of Section 4: clean-up successes are the only potential
    /// changes inside a phase, and each is a decrement).
    cleanup_floor: Option<u64>,
}

impl FrameState {
    fn spot_of(&self, pkt: PacketRef) -> Spot {
        if let Some(i) = self.active.iter().position(|&p| p == pkt) {
            return Spot::Active {
                acked: self.acked[i],
            };
        }
        if self.waiting.contains(&pkt) {
            return Spot::Waiting;
        }
        if self.failed.iter().flatten().any(|&(p, _)| p == pkt) {
            let sel = self.selected.iter().position(|&(_, p)| p == pkt);
            return Spot::Failed {
                selected: sel.is_some(),
                acked: sel.map(|i| self.sel_acked[i]).unwrap_or(false),
            };
        }
        Spot::NotInjected
    }
}

/// One slot's worth of resolved nondeterminism.
#[derive(Clone, Copy, Debug)]
pub struct SlotChoice {
    /// Scenario packets injected this slot (bitmask over packet index).
    pub inject: u32,
    /// Buffers selected at a clean-up begin (bitmask over the sorted
    /// list of non-empty buffers; 0 elsewhere).
    pub select: u32,
    /// Attempts succeeding this slot (bitmask over the slot's candidate
    /// attempt list; 0 in idle slots).
    pub success: u32,
}

/// Phase of the slot a state is about to execute.
enum Phase {
    Main,
    CleanupBegin,
    Cleanup,
    Idle,
}

impl FrameModel {
    fn phase_of(&self, slot_in_frame: usize) -> Phase {
        let main = self.geometry.main_budget;
        if slot_in_frame < main {
            Phase::Main
        } else if slot_in_frame == main {
            Phase::CleanupBegin
        } else if slot_in_frame < main + self.geometry.cleanup_budget {
            Phase::Cleanup
        } else {
            Phase::Idle
        }
    }

    /// The links whose buffers will be non-empty at this frame's
    /// clean-up begin (current buffers plus the imminent failures),
    /// sorted by link index — the selection mask's domain.
    fn cleanup_buffers(&self, state: &FrameState) -> Vec<usize> {
        let mut occupied = vec![false; self.num_links];
        for (idx, buffer) in state.failed.iter().enumerate() {
            if !buffer.is_empty() {
                occupied[idx] = true;
            }
        }
        for (i, &pkt) in state.active.iter().enumerate() {
            if !state.acked[i] {
                let link = state
                    .table
                    .link_at(state.store.route(pkt), state.store.hop(pkt));
                occupied[link.index()] = true;
            }
        }
        (0..self.num_links).filter(|&l| occupied[l]).collect()
    }

    /// The slot's candidate attempt list: positions into `active`
    /// (main) or `selected` (clean-up) that may transmit.
    fn candidates(&self, state: &FrameState) -> Vec<usize> {
        match self.phase_of(state.slot_in_frame) {
            Phase::Main => {
                // At a frame start the waiting packets join before the
                // slot body runs, all un-acked.
                let joining = if state.slot_in_frame == 0 {
                    state.waiting.len()
                } else {
                    0
                };
                (0..state.active.len())
                    .filter(|&i| !state.acked[i])
                    .chain(state.active.len()..state.active.len() + joining)
                    .collect()
            }
            Phase::Cleanup => (0..state.selected.len())
                .filter(|&i| !state.sel_acked[i])
                .collect(),
            // Clean-up begin enumerates per selection mask; idle has none.
            Phase::CleanupBegin | Phase::Idle => Vec::new(),
        }
    }
}

fn subsets(n: usize) -> impl Iterator<Item = u32> {
    assert!(n < 31, "mask domain too large to enumerate");
    0..(1u32 << n)
}

impl Model for FrameModel {
    type State = FrameState;
    type Action = SlotChoice;

    fn init_states(&self) -> Vec<FrameState> {
        let mut table = RouteTable::new();
        let route_ids = self
            .routes
            .iter()
            .map(|links| table.intern(&RoutePath::from_links_unchecked(links.clone()).shared()))
            .collect();
        vec![FrameState {
            store: PacketStore::new(),
            table,
            route_ids,
            slot_in_frame: 0,
            frame: 0,
            injected: 0,
            waiting: Vec::new(),
            active: Vec::new(),
            acked: Vec::new(),
            failed: vec![Vec::new(); self.num_links],
            failed_total: 0,
            potential: 0,
            delivered: Vec::new(),
            selected: Vec::new(),
            sel_acked: Vec::new(),
            cleanup_floor: None,
        }]
    }

    fn actions(&self, state: &FrameState, into: &mut Vec<SlotChoice>) {
        into.clear();
        if self.is_terminal(state) {
            return;
        }
        let injectable: Vec<usize> = (0..self.packets.len())
            .filter(|&i| state.injected & (1 << i) == 0)
            .collect();
        for inject_bits in subsets(injectable.len()) {
            let inject = injectable
                .iter()
                .enumerate()
                .filter(|&(b, _)| inject_bits & (1 << b) != 0)
                .map(|(_, &i)| 1u32 << i)
                .sum();
            match self.phase_of(state.slot_in_frame) {
                Phase::CleanupBegin => {
                    let buffers = self.cleanup_buffers(state);
                    for select in subsets(buffers.len()) {
                        for success in subsets(select.count_ones() as usize) {
                            into.push(SlotChoice {
                                inject,
                                select,
                                success,
                            });
                        }
                    }
                }
                _ => {
                    for success in subsets(self.candidates(state).len()) {
                        into.push(SlotChoice {
                            inject,
                            select: 0,
                            success,
                        });
                    }
                }
            }
        }
    }

    fn next_state(&self, state: &FrameState, action: &SlotChoice) -> FrameState {
        let mut s = state.clone();
        let slot = s.frame * self.geometry.frame_len as u64 + s.slot_in_frame as u64;

        // Frame begin: last frame's arrivals join the travelling set.
        if s.slot_in_frame == 0 {
            for pkt in s.waiting.drain(..) {
                s.store.set_state(pkt, PacketState::Active);
                s.active.push(pkt);
            }
            s.acked.clear();
            s.acked.resize(s.active.len(), false);
        }

        // Injection: arrivals wait for the next frame to begin.
        for i in 0..self.packets.len() {
            if action.inject & (1 << i) != 0 {
                let route = s.route_ids[self.packets[i]];
                let pkt = s.store.insert(PacketId(i as u64), route, slot);
                s.waiting.push(pkt);
                s.injected |= 1 << i;
            }
        }

        match self.phase_of(s.slot_in_frame) {
            Phase::Main => {
                let candidates = self.candidates(state);
                let mut delivered_idx = Vec::new();
                for (bit, &idx) in candidates.iter().enumerate() {
                    if action.success & (1 << bit) == 0 {
                        continue;
                    }
                    s.acked[idx] = true;
                    let pkt = s.active[idx];
                    let hop = s.store.advance(pkt);
                    if hop == s.table.len_of(s.store.route(pkt)) {
                        s.store.set_state(pkt, PacketState::Delivered);
                        s.delivered.push(s.store.id(pkt));
                        delivered_idx.push(idx);
                    }
                }
                // Remove delivered packets back-to-front so earlier
                // indices stay valid; free their store slots.
                for &idx in delivered_idx.iter().rev() {
                    let pkt = s.active.remove(idx);
                    s.acked.remove(idx);
                    if self.fault != Some(Fault::LeakDeliveredSlot) {
                        s.store.free(pkt);
                    }
                }
            }
            Phase::CleanupBegin => {
                // The main phase is over: un-acked packets fail into the
                // buffer of the link they were trying to cross.
                let mut survivors = Vec::new();
                for (idx, &pkt) in s.active.iter().enumerate() {
                    if s.acked[idx] {
                        survivors.push(pkt);
                        continue;
                    }
                    let route = s.store.route(pkt);
                    let hop = s.store.hop(pkt);
                    let remaining = (s.table.len_of(route) - hop) as u64;
                    s.potential += remaining;
                    if self.fault != Some(Fault::ForgetFailedTotal) {
                        s.failed_total += 1;
                    }
                    s.store.set_state(pkt, PacketState::Failed);
                    let link = if self.fault == Some(Fault::WrongBufferLink) {
                        LinkId(0)
                    } else {
                        s.table.link_at(route, hop)
                    };
                    s.failed[link.index()].push((pkt, s.frame));
                    if self.fault == Some(Fault::DoubleBufferFailed) {
                        let other = (link.index() + 1) % self.num_links;
                        s.failed[other].push((pkt, s.frame));
                        s.failed_total += 1;
                    }
                }
                s.active = survivors;
                s.acked.clear();
                s.acked.resize(s.active.len(), false);
                s.cleanup_floor = Some(s.potential);

                // Selection: each chosen buffer contributes its
                // longest-failed packet (ties by id, as in the protocol).
                // The mask's domain is the actual non-empty buffers,
                // which equals the prospective list `actions()`
                // enumerated over (existing buffers plus the links the
                // un-acked packets just failed into).
                let buffers: Vec<usize> = (0..self.num_links)
                    .filter(|&l| !s.failed[l].is_empty())
                    .collect();
                s.selected.clear();
                s.sel_acked.clear();
                for (bit, &link_idx) in buffers.iter().enumerate() {
                    if action.select & (1 << bit) == 0 {
                        continue;
                    }
                    let store = &s.store;
                    let &(pkt, _) = s.failed[link_idx]
                        .iter()
                        .min_by_key(|&&(p, at)| (at, store.id(p)))
                        .expect("selected buffer non-empty");
                    s.selected.push((LinkId(link_idx as u32), pkt));
                    s.sel_acked.push(false);
                }
                // The first clean-up slot shares this protocol slot.
                let all_selected: Vec<usize> = (0..s.selected.len()).collect();
                self.cleanup_successes(&mut s, action.success, all_selected);
            }
            Phase::Cleanup => {
                let candidates = self.candidates(state);
                self.cleanup_successes(&mut s, action.success, candidates);
            }
            Phase::Idle => {}
        }

        s.slot_in_frame += 1;
        if s.slot_in_frame == self.geometry.frame_len {
            s.slot_in_frame = 0;
            s.frame += 1;
            s.selected.clear();
            s.sel_acked.clear();
            s.cleanup_floor = None;
        }
        s
    }

    fn check(&self, state: &FrameState) -> Result<(), InvariantViolation> {
        check_route_table(&state.table)?;
        let live = state
            .waiting
            .iter()
            .chain(state.active.iter())
            .chain(state.failed.iter().flatten().map(|(p, _)| p))
            .copied();
        check_store_partition(&state.store, live)?;

        // Lifecycle tags agree with the lists holding each packet.
        for &pkt in &state.waiting {
            if state.store.state(pkt) != PacketState::Queued {
                return Err(InvariantViolation::new(
                    "state-tags",
                    format!("waiting packet tagged {:?}", state.store.state(pkt)),
                ));
            }
        }
        for &pkt in &state.active {
            let len = state.table.len_of(state.store.route(pkt));
            if state.store.state(pkt) != PacketState::Active || state.store.hop(pkt) >= len {
                return Err(InvariantViolation::new(
                    "state-tags",
                    format!(
                        "active packet {:?} tagged {:?} at hop {} of {len}",
                        state.store.id(pkt),
                        state.store.state(pkt),
                        state.store.hop(pkt)
                    ),
                ));
            }
        }

        // Failed-buffer discipline and the potential Φ.
        let mut failed_count = 0usize;
        let mut remaining_hops = 0u64;
        for (link_idx, buffer) in state.failed.iter().enumerate() {
            for &(pkt, _) in buffer {
                failed_count += 1;
                if state.store.state(pkt) != PacketState::Failed {
                    return Err(InvariantViolation::new(
                        "state-tags",
                        format!("buffered packet tagged {:?}", state.store.state(pkt)),
                    ));
                }
                let route = state.store.route(pkt);
                let hop = state.store.hop(pkt);
                let len = state.table.len_of(route);
                if hop >= len {
                    return Err(InvariantViolation::new(
                        "failed-buffers",
                        format!("failed packet at hop {hop} of a {len}-link route"),
                    ));
                }
                let next = state.table.link_at(route, hop);
                if next.index() != link_idx {
                    return Err(InvariantViolation::new(
                        "failed-buffers",
                        format!(
                            "packet {:?} buffered under link {link_idx}, next hop {next}",
                            state.store.id(pkt)
                        ),
                    ));
                }
                remaining_hops += (len - hop) as u64;
            }
        }
        if failed_count != state.failed_total {
            return Err(InvariantViolation::new(
                "failed-accounting",
                format!(
                    "buffers hold {failed_count} packets, failed_total = {}",
                    state.failed_total
                ),
            ));
        }
        if remaining_hops != state.potential {
            return Err(InvariantViolation::new(
                "potential-accounting",
                format!(
                    "Φ = {} but failed packets have {remaining_hops} remaining hops",
                    state.potential
                ),
            ));
        }
        // Within a frame's clean-up tail, Φ only decreases.
        if let Some(floor) = state.cleanup_floor {
            if state.potential > floor {
                return Err(InvariantViolation::new(
                    "potential-monotone",
                    format!(
                        "Φ rose to {} above the frame's floor {floor}",
                        state.potential
                    ),
                ));
            }
        }

        // Conservation: every injected packet is in exactly one place,
        // and nothing is delivered twice.
        for i in 0..self.packets.len() {
            let id = PacketId(i as u64);
            let in_system = state
                .waiting
                .iter()
                .chain(state.active.iter())
                .chain(state.failed.iter().flatten().map(|(p, _)| p))
                .filter(|&&p| state.store.id(p) == id)
                .count();
            let delivered = state.delivered.iter().filter(|&&d| d == id).count();
            let expected = usize::from(state.injected & (1 << i) != 0);
            if delivered > 1 {
                return Err(InvariantViolation::new(
                    "no-duplicate-delivery",
                    format!("packet {id:?} delivered {delivered} times"),
                ));
            }
            if in_system + delivered != expected {
                return Err(InvariantViolation::new(
                    "packet-conservation",
                    format!(
                        "packet {id:?}: injected {expected}, found {in_system} in system + \
                         {delivered} delivered"
                    ),
                ));
            }
        }

        if state.acked.len() != state.active.len() || state.sel_acked.len() != state.selected.len()
        {
            return Err(InvariantViolation::new(
                "main-ack-alignment",
                format!(
                    "{} ack flags / {} active, {} selection flags / {} selected",
                    state.acked.len(),
                    state.active.len(),
                    state.sel_acked.len(),
                    state.selected.len()
                ),
            ));
        }
        Ok(())
    }

    fn fingerprint(&self, state: &FrameState) -> Vec<u8> {
        let mut fp = Vec::with_capacity(8 + 4 * self.packets.len());
        fp.push(state.slot_in_frame as u8);
        fp.push(state.frame as u8);
        fp.extend(state.injected.to_le_bytes());
        match state.cleanup_floor {
            None => fp.push(0xff),
            Some(floor) => {
                fp.push(0);
                fp.push(floor as u8);
            }
        }
        // Per-packet logical spot, in scenario order: physical store
        // layout (which recycled slot a packet occupies) is deliberately
        // excluded, merging states that differ only in slot reuse.
        for i in 0..self.packets.len() {
            let id = PacketId(i as u64);
            if state.delivered.contains(&id) {
                fp.extend([6, 0, 0]);
                continue;
            }
            if state.injected & (1 << i) == 0 {
                fp.extend([0, 0, 0]);
                continue;
            }
            let pkt = state
                .waiting
                .iter()
                .chain(state.active.iter())
                .chain(state.failed.iter().flatten().map(|(p, _)| p))
                .copied()
                .find(|&p| state.store.id(p) == id);
            match pkt {
                None => fp.extend([7, 0, 0]), // lost (invariant check will fire)
                Some(p) => {
                    let code = match state.spot_of(p) {
                        Spot::Waiting => 1,
                        Spot::Active { acked: false } => 2,
                        Spot::Active { acked: true } => 3,
                        Spot::Failed {
                            selected: false, ..
                        } => 4,
                        Spot::Failed {
                            selected: true,
                            acked,
                        } => 5 + u8::from(acked) * 3,
                        Spot::NotInjected => unreachable!("packet was found in a live list"),
                    };
                    let failed_at = state
                        .failed
                        .iter()
                        .flatten()
                        .find(|&&(q, _)| q == p)
                        .map(|&(_, at)| at as u8)
                        .unwrap_or(0);
                    fp.extend([code, state.store.hop(p) as u8, failed_at]);
                }
            }
        }
        fp
    }

    fn describe_action(&self, action: &SlotChoice) -> String {
        format!(
            "inject {:#06b} | select {:#06b} | succeed {:#06b}",
            action.inject, action.select, action.success
        )
    }

    fn describe_state(&self, state: &FrameState) -> String {
        format!(
            "frame {} slot {} | injected {:#06b} | {} waiting, {} active, {} failed, \
             {} delivered | Φ = {}",
            state.frame,
            state.slot_in_frame,
            state.injected,
            state.waiting.len(),
            state.active.len(),
            state.failed_total,
            state.delivered.len(),
            state.potential
        )
    }
}

impl FrameModel {
    /// Applies a success mask over `candidates` (positions into
    /// `selected`) in a clean-up slot: each success advances the packet
    /// one hop, re-buffering or delivering it, and decrements `Φ`.
    fn cleanup_successes(&self, s: &mut FrameState, success: u32, candidates: Vec<usize>) {
        for (bit, &idx) in candidates.iter().enumerate() {
            if success & (1 << bit) == 0 {
                continue;
            }
            s.sel_acked[idx] = true;
            let (link, pkt) = s.selected[idx];
            let buffer = &mut s.failed[link.index()];
            let pos = buffer
                .iter()
                .position(|&(p, _)| p == pkt)
                .expect("selected packet still buffered");
            let (_, failed_at) = buffer.swap_remove(pos);
            let hop = s.store.advance(pkt);
            if self.fault != Some(Fault::SkipPotentialDecrement) {
                s.potential -= 1;
            }
            let route = s.store.route(pkt);
            if hop == s.table.len_of(route) {
                s.failed_total -= 1;
                s.delivered.push(s.store.id(pkt));
                if self.fault != Some(Fault::LeakDeliveredSlot) {
                    s.store.free(pkt);
                }
            } else {
                let next = s.table.link_at(route, hop);
                s.failed[next.index()].push((pkt, failed_at));
            }
        }
    }
}

/// The instances `model-check` explores by default — each tiny enough
/// to exhaust in well under a second, together covering single-link
/// contention, multi-hop pipelining and route merging.
pub fn presets() -> Vec<FrameModel> {
    vec![
        // Three packets racing over one link: maximal contention and
        // store-slot recycling on the smallest possible network.
        FrameModel::new(
            "single-link-burst",
            Geometry::tiny(),
            1,
            vec![vec![LinkId(0)]],
            vec![0, 0, 0],
            3,
        ),
        // Two packets pipelining down a 2-link line: multi-hop
        // progress, failures at both hops, buffer hand-off.
        FrameModel::new(
            "line2-pipeline",
            Geometry::tiny(),
            2,
            vec![vec![LinkId(0), LinkId(1)]],
            vec![0, 0],
            3,
        ),
        // Two routes merging on a shared final link: distinct routes in
        // the interner and buffer contention at the merge point.
        FrameModel::new(
            "fork-merge",
            Geometry::tiny(),
            3,
            vec![vec![LinkId(0), LinkId(1)], vec![LinkId(2), LinkId(1)]],
            vec![0, 1],
            3,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{check_model, CheckConfig};

    fn exhaust(model: &FrameModel) -> crate::checker::CheckReport {
        check_model(model, &CheckConfig::default())
            .unwrap_or_else(|ce| panic!("{} violated: {ce}", model.name()))
    }

    #[test]
    fn all_presets_pass_exhaustively() {
        for model in presets() {
            let report = exhaust(&model);
            assert!(
                !report.truncated,
                "{} must be exhausted, not sampled",
                model.name()
            );
            assert!(
                report.distinct_states > 100,
                "{} explored only {} states — too small to mean anything",
                model.name(),
                report.distinct_states
            );
        }
    }

    #[test]
    fn deliveries_are_reachable() {
        // The all-success path must deliver: walk one by hand.
        let model = &presets()[0];
        let mut state = model.init_states().remove(0);
        let mut actions = Vec::new();
        let mut delivered_seen = false;
        for _ in 0..12 {
            model.actions(&state, &mut actions);
            // Inject everything as early as possible, succeed everything.
            let best = actions
                .iter()
                .copied()
                .max_by_key(|a| (a.inject.count_ones(), a.success.count_ones()))
                .expect("pre-horizon states have actions");
            state = model.next_state(&state, &best);
            model.check(&state).unwrap();
            delivered_seen |= !state.delivered.is_empty();
        }
        assert!(delivered_seen, "all-success path must deliver packets");
    }

    /// Mutation smoke tests: each seeded fault must be caught, and with
    /// the invariant name a human would expect for that defect class.
    #[test]
    fn faults_are_detected_with_the_expected_invariant() {
        let cases = [
            (Fault::SkipPotentialDecrement, "potential-accounting"),
            (Fault::LeakDeliveredSlot, "store-partition"),
            (Fault::WrongBufferLink, "failed-buffers"),
            (Fault::ForgetFailedTotal, "failed-accounting"),
            (Fault::DoubleBufferFailed, "store-partition"),
        ];
        for (fault, expected) in cases {
            // line2-pipeline reaches every defect trigger: multi-hop
            // delivery, failures whose correct buffer is not link 0,
            // and clean-up successes.
            let model = presets().remove(1).with_fault(fault);
            let ce = check_model(&model, &CheckConfig::default())
                .err()
                .unwrap_or_else(|| panic!("{fault:?} went undetected"));
            assert_eq!(
                ce.violation.invariant, expected,
                "{fault:?} reported as {} ({})",
                ce.violation.invariant, ce.violation.details
            );
            assert!(!ce.trace.is_empty(), "{fault:?} needs a non-trivial trace");
        }
    }

    #[test]
    fn fingerprints_ignore_physical_slot_layout() {
        // Two orders of inject/deliver that end in the same logical
        // state must collide, even though store slots were recycled
        // differently.
        let model = FrameModel::new(
            "fp-test",
            Geometry::tiny(),
            1,
            vec![vec![LinkId(0)]],
            vec![0, 0],
            4,
        );
        let init = model.init_states().remove(0);
        // Path A: inject packet 0 first, then packet 1 next slot.
        let a0 = model.next_state(
            &init,
            &SlotChoice {
                inject: 0b01,
                select: 0,
                success: 0,
            },
        );
        let a1 = model.next_state(
            &a0,
            &SlotChoice {
                inject: 0b10,
                select: 0,
                success: 0,
            },
        );
        // Path B: packet 1 first, then packet 0.
        let b0 = model.next_state(
            &init,
            &SlotChoice {
                inject: 0b10,
                select: 0,
                success: 0,
            },
        );
        let b1 = model.next_state(
            &b0,
            &SlotChoice {
                inject: 0b01,
                select: 0,
                success: 0,
            },
        );
        assert_eq!(
            model.fingerprint(&a1),
            model.fingerprint(&b1),
            "logical content is identical"
        );
    }
}
