//! Minimal in-tree stand-in for the [`serde`](https://serde.rs) crate,
//! used because this build environment has no network access to crates.io.
//!
//! Unlike real serde's zero-copy visitor architecture, this shim routes
//! everything through a self-describing [`Value`] tree — `Serialize`
//! produces a `Value`, `Deserialize` consumes one. The `derive` feature
//! re-exports the in-tree `serde_derive` proc-macros generating those two
//! impls for structs. Text formats live in the [`json`] and [`toml`]
//! modules.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod json;
pub mod toml;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A self-describing serialized value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Absence of a value (JSON `null`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer (used when the value exceeds `i64::MAX`).
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Value>),
    /// A map with string keys, preserving insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64` (accepting any integer representation).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(x) => Some(*x),
            Value::U64(x) => i64::try_from(*x).ok(),
            _ => None,
        }
    }

    /// The value as a `u64` (accepting any non-negative integer).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::I64(x) => u64::try_from(*x).ok(),
            Value::U64(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as an `f64` (accepting any numeric representation).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(x) => Some(*x as f64),
            Value::U64(x) => Some(*x as f64),
            Value::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The value as map entries.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// A short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// A (de)serialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// A "missing field" error.
    pub fn missing_field(name: &str) -> Self {
        Error::custom(format!("missing field `{name}`"))
    }

    /// A type-mismatch error.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error::custom(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can be serialized into a [`Value`].
pub trait Serialize {
    /// Serializes `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be deserialized from a [`Value`].
pub trait Deserialize: Sized {
    /// Deserializes from `value`.
    fn from_value(value: &Value) -> Result<Self, Error>;

    /// The value to use when a struct field is absent (`None` makes
    /// absence an error; `Option<T>` overrides this to permit it).
    fn absent() -> Option<Self> {
        None
    }
}

/// Deserializes the field `name` of a map value, honouring
/// [`Deserialize::absent`] for missing keys. Used by the derive macro.
pub fn de_field<T: Deserialize>(value: &Value, name: &str) -> Result<T, Error> {
    match value.get(name) {
        Some(field) => {
            T::from_value(field).map_err(|e| Error::custom(format!("field `{name}`: {e}")))
        }
        None => T::absent().ok_or_else(|| Error::missing_field(name)),
    }
}

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self as u64 <= i64::MAX as u64 {
                    Value::I64(*self as i64)
                } else {
                    Value::U64(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value.as_u64().ok_or_else(|| Error::expected("unsigned integer", value))?;
                <$t>::try_from(raw).map_err(|_| Error::custom(format!("{raw} out of range")))
            }
        }
    )*};
}

impl_serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value.as_i64().ok_or_else(|| Error::expected("integer", value))?;
                <$t>::try_from(raw).map_err(|_| Error::custom(format!("{raw} out of range")))
            }
        }
    )*};
}

impl_serde_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::expected("number", value))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| Error::expected("number", value))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::expected("bool", value))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", value))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::expected("sequence", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn absent() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_map()
            .ok_or_else(|| Error::expected("map", value))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_map()
            .ok_or_else(|| Error::expected("map", value))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn numeric_coercions() {
        // An integer-written value deserializes as f64.
        assert_eq!(f64::from_value(&Value::I64(3)).unwrap(), 3.0);
        // A negative integer does not deserialize as unsigned.
        assert!(u32::from_value(&Value::I64(-1)).is_err());
    }

    #[test]
    fn vec_and_option() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::I64(5)).unwrap(), Some(5));
        assert_eq!(Option::<u32>::absent(), Some(None));
        assert_eq!(u32::absent(), None);
    }

    #[test]
    fn de_field_reports_missing_and_nested_errors() {
        let map = Value::Map(vec![("a".into(), Value::I64(1))]);
        assert_eq!(de_field::<u32>(&map, "a").unwrap(), 1);
        assert!(de_field::<u32>(&map, "b").is_err());
        assert_eq!(de_field::<Option<u32>>(&map, "b").unwrap(), None);
        let err = de_field::<u32>(&map, "a").unwrap();
        assert_eq!(err, 1);
    }
}
