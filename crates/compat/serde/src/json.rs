//! JSON rendering and parsing for [`Value`] trees.

use crate::{Deserialize, Error, Serialize, Value};
use std::fmt::Write as _;

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    out
}

/// Serializes `value` as indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    out
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or on a shape `T` rejects.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    T::from_value(&parse(text)?)
}

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or trailing garbage.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::U64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

pub(crate) fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no Inf/NaN; encode as null like serde_json's lossy mode.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        let _ = write!(out, "{x:.1}");
    } else {
        let _ = write!(out, "{x}");
    }
}

pub(crate) fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, keyword: &str) -> bool {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::custom(format!(
                "unexpected '{}' at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::custom("unexpected end of input")),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("non-ascii \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else if let Ok(x) = text.parse::<i64>() {
            Ok(Value::I64(x))
        } else if let Ok(x) = text.parse::<u64>() {
            Ok(Value::U64(x))
        } else {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_text() {
        let value = Value::Map(vec![
            ("name".into(), Value::Str("ring \"a\"".into())),
            ("lambda".into(), Value::F64(0.5)),
            ("m".into(), Value::I64(8)),
            (
                "flags".into(),
                Value::Seq(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let text = to_string(&value);
        assert_eq!(parse(&text).unwrap(), value);
        let pretty = to_string_pretty(&value);
        assert_eq!(parse(&pretty).unwrap(), value);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""a\nbA\t""#).unwrap();
        assert_eq!(v, Value::Str("a\nbA\t".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("07x").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn numbers_choose_integer_or_float() {
        assert_eq!(parse("42").unwrap(), Value::I64(42));
        assert_eq!(parse("-3").unwrap(), Value::I64(-3));
        assert_eq!(parse("1.5").unwrap(), Value::F64(1.5));
        assert_eq!(parse("1e3").unwrap(), Value::F64(1000.0));
        assert_eq!(parse("18446744073709551615").unwrap(), Value::U64(u64::MAX));
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        // So round-trips keep floats floats.
        let mut out = String::new();
        write_f64(&mut out, 2.0);
        assert_eq!(out, "2.0");
        assert_eq!(parse("2.0").unwrap(), Value::F64(2.0));
    }
}
