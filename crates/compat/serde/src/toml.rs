//! TOML rendering and parsing for [`Value`] trees.
//!
//! Covers the TOML subset declarative specs in this workspace use: tables
//! and nested tables (`[a]`, `[a.b]`), arrays of tables (`[[a]]`), bare
//! keys, strings, booleans, integers, floats, single-line arrays and
//! inline tables, plus `#` comments.

use crate::json::write_json_string;
use crate::{Deserialize, Error, Serialize, Value};
use std::fmt::Write as _;

/// Serializes `value` as TOML. The top-level value must be a map.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let value = value.to_value();
    let mut out = String::new();
    match &value {
        Value::Map(_) => write_table(&mut out, &value, &mut Vec::new()),
        other => {
            // Not representable as a TOML document; wrap for debugging.
            let _ = write!(out, "# non-table value\nvalue = ");
            write_scalar(&mut out, other);
            out.push('\n');
        }
    }
    out
}

/// Parses TOML text into a `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed TOML or on a shape `T` rejects.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    T::from_value(&parse(text)?)
}

fn is_scalar(value: &Value) -> bool {
    !matches!(value, Value::Map(_)) && !is_seq_of_maps(value)
}

fn is_seq_of_maps(value: &Value) -> bool {
    match value {
        Value::Seq(items) => !items.is_empty() && items.iter().all(|v| matches!(v, Value::Map(_))),
        _ => false,
    }
}

fn write_table(out: &mut String, table: &Value, path: &mut Vec<String>) {
    let entries = table.as_map().expect("tables are maps");
    // Scalar entries first (they belong to the current table header).
    for (key, value) in entries.iter().filter(|(_, v)| is_scalar(v)) {
        write_key(out, key);
        out.push_str(" = ");
        write_scalar(out, value);
        out.push('\n');
    }
    // Sub-tables and arrays of tables after.
    for (key, value) in entries.iter().filter(|(_, v)| !is_scalar(v)) {
        path.push(key.clone());
        if is_seq_of_maps(value) {
            for item in value.as_seq().expect("seq") {
                if !out.is_empty() {
                    out.push('\n');
                }
                let _ = writeln!(out, "[[{}]]", join_path(path));
                write_table(out, item, path);
            }
        } else {
            if !out.is_empty() {
                out.push('\n');
            }
            let _ = writeln!(out, "[{}]", join_path(path));
            write_table(out, value, path);
        }
        path.pop();
    }
}

fn join_path(path: &[String]) -> String {
    path.iter()
        .map(|segment| {
            if is_bare_key(segment) {
                segment.clone()
            } else {
                let mut quoted = String::new();
                write_json_string(&mut quoted, segment);
                quoted
            }
        })
        .collect::<Vec<_>>()
        .join(".")
}

fn is_bare_key(key: &str) -> bool {
    !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

fn write_key(out: &mut String, key: &str) {
    if is_bare_key(key) {
        out.push_str(key);
    } else {
        write_json_string(out, key);
    }
}

fn write_scalar(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("\"\""),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::U64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::F64(x) => crate::json::write_f64(out, *x),
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_scalar(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push_str("{ ");
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_key(out, key);
                out.push_str(" = ");
                write_scalar(out, item);
            }
            out.push_str(" }");
        }
    }
}

/// Parses TOML text into a [`Value`].
///
/// # Errors
///
/// Returns [`Error`] on malformed input.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut root: Vec<(String, Value)> = Vec::new();
    // Path of the table the current `key = value` lines land in.
    let mut current: Vec<String> = Vec::new();
    for (lineno, raw_line) in text.lines().enumerate() {
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| Error::custom(format!("TOML line {}: {msg}", lineno + 1));
        if let Some(header) = line.strip_prefix("[[") {
            let header = header
                .strip_suffix("]]")
                .ok_or_else(|| err("unterminated [[table]] header"))?;
            current = parse_key_path(header).map_err(|e| err(&e.to_string()))?;
            push_array_table(&mut root, &current).map_err(|e| err(&e.to_string()))?;
        } else if let Some(header) = line.strip_prefix('[') {
            let header = header
                .strip_suffix(']')
                .ok_or_else(|| err("unterminated [table] header"))?;
            current = parse_key_path(header).map_err(|e| err(&e.to_string()))?;
            ensure_table(&mut root, &current).map_err(|e| err(&e.to_string()))?;
        } else {
            let (key, value_text) = line
                .split_once('=')
                .ok_or_else(|| err("expected `key = value`"))?;
            let key = parse_single_key(key.trim()).map_err(|e| err(&e.to_string()))?;
            let value = parse_value(value_text.trim()).map_err(|e| err(&e.to_string()))?;
            insert(&mut root, &current, key, value).map_err(|e| err(&e.to_string()))?;
        }
    }
    Ok(Value::Map(root))
}

fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string => {
                escaped = !escaped;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn parse_key_path(text: &str) -> Result<Vec<String>, Error> {
    text.split('.')
        .map(|segment| parse_single_key(segment.trim()))
        .collect()
}

fn parse_single_key(text: &str) -> Result<String, Error> {
    if let Some(stripped) = text.strip_prefix('"') {
        let inner = stripped
            .strip_suffix('"')
            .ok_or_else(|| Error::custom("unterminated quoted key"))?;
        Ok(inner.to_string())
    } else if is_bare_key(text) {
        Ok(text.to_string())
    } else {
        Err(Error::custom(format!("invalid key `{text}`")))
    }
}

/// Navigates to the table at `path` (creating empty tables as needed) and
/// returns its entries.
fn navigate<'a>(
    root: &'a mut Vec<(String, Value)>,
    path: &[String],
) -> Result<&'a mut Vec<(String, Value)>, Error> {
    let mut entries = root;
    for segment in path {
        if !entries.iter().any(|(k, _)| k == segment) {
            entries.push((segment.clone(), Value::Map(Vec::new())));
        }
        let slot = entries
            .iter_mut()
            .find(|(k, _)| k == segment)
            .map(|(_, v)| v)
            .expect("just ensured");
        entries = match slot {
            Value::Map(inner) => inner,
            Value::Seq(items) => match items.last_mut() {
                Some(Value::Map(inner)) => inner,
                _ => return Err(Error::custom(format!("`{segment}` is not a table"))),
            },
            _ => return Err(Error::custom(format!("`{segment}` is not a table"))),
        };
    }
    Ok(entries)
}

fn ensure_table(root: &mut Vec<(String, Value)>, path: &[String]) -> Result<(), Error> {
    navigate(root, path).map(|_| ())
}

fn push_array_table(root: &mut Vec<(String, Value)>, path: &[String]) -> Result<(), Error> {
    let (last, parents) = path
        .split_last()
        .ok_or_else(|| Error::custom("empty header"))?;
    let entries = navigate(root, parents)?;
    if !entries.iter().any(|(k, _)| k == last) {
        entries.push((last.clone(), Value::Seq(Vec::new())));
    }
    match entries.iter_mut().find(|(k, _)| k == last).map(|(_, v)| v) {
        Some(Value::Seq(items)) => {
            items.push(Value::Map(Vec::new()));
            Ok(())
        }
        _ => Err(Error::custom(format!("`{last}` is not an array of tables"))),
    }
}

fn insert(
    root: &mut Vec<(String, Value)>,
    table_path: &[String],
    key: String,
    value: Value,
) -> Result<(), Error> {
    let entries = navigate(root, table_path)?;
    if entries.iter().any(|(k, _)| *k == key) {
        return Err(Error::custom(format!("duplicate key `{key}`")));
    }
    entries.push((key, value));
    Ok(())
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let (value, rest) = parse_value_prefix(text)?;
    if !rest.trim().is_empty() {
        return Err(Error::custom(format!("trailing characters `{rest}`")));
    }
    Ok(value)
}

/// Parses one value at the front of `text`, returning it and the rest.
fn parse_value_prefix(text: &str) -> Result<(Value, &str), Error> {
    let text = text.trim_start();
    if let Some(rest) = text.strip_prefix('"') {
        let mut out = String::new();
        let mut chars = rest.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => return Ok((Value::Str(out), &rest[i + 1..])),
                '\\' => match chars.next() {
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, other)) => {
                        return Err(Error::custom(format!("invalid escape \\{other}")))
                    }
                    None => return Err(Error::custom("unterminated escape")),
                },
                c => out.push(c),
            }
        }
        Err(Error::custom("unterminated string"))
    } else if let Some(mut rest) = text.strip_prefix('[') {
        let mut items = Vec::new();
        loop {
            rest = rest.trim_start();
            if let Some(after) = rest.strip_prefix(']') {
                return Ok((Value::Seq(items), after));
            }
            let (item, after) = parse_value_prefix(rest)?;
            items.push(item);
            rest = after.trim_start();
            if let Some(after) = rest.strip_prefix(',') {
                rest = after;
            } else if !rest.starts_with(']') {
                return Err(Error::custom("expected ',' or ']' in array"));
            }
        }
    } else if let Some(mut rest) = text.strip_prefix('{') {
        let mut entries = Vec::new();
        loop {
            rest = rest.trim_start();
            if let Some(after) = rest.strip_prefix('}') {
                return Ok((Value::Map(entries), after));
            }
            let eq = rest
                .find('=')
                .ok_or_else(|| Error::custom("expected `key = value` in inline table"))?;
            let key = parse_single_key(rest[..eq].trim())?;
            let (value, after) = parse_value_prefix(&rest[eq + 1..])?;
            entries.push((key, value));
            rest = after.trim_start();
            if let Some(after) = rest.strip_prefix(',') {
                rest = after;
            } else if !rest.starts_with('}') {
                return Err(Error::custom("expected ',' or '}' in inline table"));
            }
        }
    } else {
        // Bare scalar: ends at ',', ']' or '}' (array/table context).
        let end = text.find([',', ']', '}']).unwrap_or(text.len());
        let (token, rest) = text.split_at(end);
        let token = token.trim();
        let value = if token == "true" {
            Value::Bool(true)
        } else if token == "false" {
            Value::Bool(false)
        } else if token.contains(['.', 'e', 'E'])
            || token == "inf"
            || token == "-inf"
            || token == "nan"
        {
            Value::F64(
                token
                    .parse::<f64>()
                    .map_err(|_| Error::custom(format!("invalid float `{token}`")))?,
            )
        } else if let Ok(x) = token.parse::<i64>() {
            Value::I64(x)
        } else if let Ok(x) = token.parse::<u64>() {
            Value::U64(x)
        } else {
            return Err(Error::custom(format!("invalid value `{token}`")));
        };
        Ok((value, rest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_round_trips() {
        let value = Value::Map(vec![
            ("name".into(), Value::Str("ring".into())),
            (
                "substrate".into(),
                Value::Map(vec![
                    ("kind".into(), Value::Str("ring-routing".into())),
                    ("nodes".into(), Value::I64(8)),
                ]),
            ),
            (
                "run".into(),
                Value::Map(vec![
                    ("lambda".into(), Value::F64(0.5)),
                    (
                        "lambdas".into(),
                        Value::Seq(vec![Value::F64(0.25), Value::F64(0.75)]),
                    ),
                    ("trace".into(), Value::Bool(false)),
                ]),
            ),
        ]);
        let text = to_string(&value);
        assert_eq!(parse(&text).unwrap(), value);
    }

    #[test]
    fn parses_comments_nested_tables_and_inline_tables() {
        let text = r#"
# top comment
title = "demo" # trailing comment
[a.b]
x = 1
point = { x = 1.5, y = -2.0 }
[a]
y = 2
"#;
        let value = parse(text).unwrap();
        assert_eq!(value.get("title").unwrap().as_str().unwrap(), "demo");
        let a = value.get("a").unwrap();
        assert_eq!(a.get("y").unwrap().as_i64().unwrap(), 2);
        let b = a.get("b").unwrap();
        assert_eq!(b.get("x").unwrap().as_i64().unwrap(), 1);
        assert_eq!(
            b.get("point").unwrap().get("y").unwrap().as_f64().unwrap(),
            -2.0
        );
    }

    #[test]
    fn parses_arrays_of_tables() {
        let text = "
[[cell]]
x = 1
[[cell]]
x = 2
";
        let value = parse(text).unwrap();
        let cells = value.get("cell").unwrap().as_seq().unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[1].get("x").unwrap().as_i64().unwrap(), 2);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("key").is_err());
        assert!(parse("[unclosed").is_err());
        assert!(parse("x = ").is_err());
        assert!(parse("x = 1\nx = 2").is_err());
        assert!(parse("x = \"unterminated").is_err());
    }

    #[test]
    fn floats_and_integers_are_distinguished() {
        let v = parse("a = 1\nb = 1.0\nc = 1e3").unwrap();
        assert_eq!(v.get("a").unwrap(), &Value::I64(1));
        assert_eq!(v.get("b").unwrap(), &Value::F64(1.0));
        assert_eq!(v.get("c").unwrap(), &Value::F64(1000.0));
    }
}
