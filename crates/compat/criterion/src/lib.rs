//! Minimal in-tree stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness,
//! used because this build environment has no network access to crates.io.
//!
//! It keeps criterion's API shape (`criterion_group!`, benchmark groups,
//! `Bencher::iter`) and reports median per-iteration wall-clock times to
//! stdout. There is no statistical regression analysis or HTML report;
//! numbers are good enough for the relative comparisons the workspace's
//! benches make (e.g. boxed-vs-direct overhead).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported from `std::hint`.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Throughput annotation for a benchmark (reported, not analysed).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// The measurement driver handed to benchmark closures.
pub struct Bencher {
    /// Median per-iteration time of the last `iter` call.
    last_median: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count lasting ~1ms.
        let mut iters_per_batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                std_black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters_per_batch >= 1 << 24 {
                break;
            }
            iters_per_batch *= 4;
        }
        // Measure batches until the measurement budget is exhausted.
        let mut samples: Vec<Duration> = Vec::new();
        let budget_start = Instant::now();
        while budget_start.elapsed() < self.measurement_time || samples.len() < 5 {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                std_black_box(routine());
            }
            samples.push(start.elapsed() / iters_per_batch as u32);
            if samples.len() >= 200 {
                break;
            }
        }
        samples.sort();
        self.last_median = samples[samples.len() / 2];
    }

    /// Like `iter`, with a per-batch setup closure whose time is excluded
    /// only approximately (setup runs once per sample batch).
    pub fn iter_with_setup<S, O, I, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut samples: Vec<Duration> = Vec::new();
        let budget_start = Instant::now();
        while budget_start.elapsed() < self.measurement_time || samples.len() < 5 {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            samples.push(start.elapsed());
            if samples.len() >= 200 {
                break;
            }
        }
        samples.sort();
        self.last_median = samples[samples.len() / 2];
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample count (scales the measurement budget).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        // Map criterion's default of 100 samples onto our default budget.
        self.criterion.measurement_time =
            Duration::from_millis((3 * samples as u64).clamp(30, 2000));
        self
    }

    /// Sets the measurement time per benchmark.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.criterion.measurement_time = time;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            last_median: Duration::ZERO,
            measurement_time: self.criterion.measurement_time,
        };
        routine(&mut bencher, input);
        self.report(&id.name, bencher.last_median);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            last_median: Duration::ZERO,
            measurement_time: self.criterion.measurement_time,
        };
        routine(&mut bencher);
        self.report(&id, bencher.last_median);
        self
    }

    fn report(&self, id: &str, median: Duration) {
        let mut line = format!("{}/{id}: {}", self.name, format_duration(median));
        if let Some(throughput) = self.throughput {
            let (count, unit) = match throughput {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            if median > Duration::ZERO {
                let per_sec = count as f64 / median.as_secs_f64();
                line.push_str(&format!("  ({per_sec:.3e} {unit}/s)"));
            }
        }
        println!("{line}");
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Short default budget: CI runs every bench binary.
        let measurement_time = std::env::var("CRITERION_MEASUREMENT_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .map(Duration::from_millis)
            .unwrap_or_else(|| Duration::from_millis(300));
        Criterion { measurement_time }
    }
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            last_median: Duration::ZERO,
            measurement_time: self.measurement_time,
        };
        routine(&mut bencher);
        println!("{id}: {}", format_duration(bencher.last_median));
        self
    }
}

/// Declares a group of benchmark functions; mirrors
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point; mirrors
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(shim_benches, sample_bench);

    #[test]
    fn group_runs_and_reports() {
        std::env::set_var("CRITERION_MEASUREMENT_MS", "5");
        shim_benches();
    }

    #[test]
    fn bencher_measures_nonzero_time() {
        let mut bencher = Bencher {
            last_median: Duration::ZERO,
            measurement_time: Duration::from_millis(5),
        };
        bencher.iter(|| std::hint::black_box((0..1000u64).sum::<u64>()));
        assert!(bencher.last_median > Duration::ZERO);
    }
}
