//! Minimal in-tree stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, used because this build environment has no network access to
//! crates.io.
//!
//! It implements exactly the API subset the workspace uses: the
//! [`RngCore`] / [`SeedableRng`] traits, the extension trait [`Rng`] with
//! `gen`, `gen_range` and `gen_bool`, and [`rngs::mock::StepRng`]. The
//! semantics mirror the real crate closely enough for every deterministic
//! simulation in this workspace (exact output streams differ from the
//! upstream crate; nothing here depends on them).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::ops::Range;

/// A source of random bits.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the RNG from a `u64`, expanding it with SplitMix64 — the
    /// same construction the upstream crate documents.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        let bytes = seed.as_mut();
        let mut i = 0;
        while i < bytes.len() {
            let word = sm.next().to_le_bytes();
            let take = word.len().min(bytes.len() - i);
            bytes[i..i + take].copy_from_slice(&word[..take]);
            i += take;
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types usable as `gen_range` bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u64).wrapping_sub(low as u64);
                // Multiply-shift bounded sampling (bias < 2^-64·span).
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i64).wrapping_sub(low as i64) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let value = low + f64::sample(rng) * (high - low);
        // `low + s·(high − low)` can round up to exactly `high` even
        // though `s < 1` (e.g. `low = 1.0, high = 1.0 + ε`), violating
        // the half-open `[low, high)` contract; clamp back inside.
        if value < high {
            value
        } else {
            next_down(high)
        }
    }
}

/// The largest `f64` strictly below finite `x` (used to clamp float
/// `gen_range` back into its half-open interval).
fn next_down(x: f64) -> f64 {
    debug_assert!(x.is_finite());
    if x > 0.0 {
        f64::from_bits(x.to_bits() - 1)
    } else if x < 0.0 {
        f64::from_bits(x.to_bits() + 1)
    } else {
        // Below both +0.0 and -0.0 sits the largest negative subnormal.
        -f64::from_bits(1)
    }
}

/// Extension methods every [`RngCore`] gets, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG implementations.
pub mod rngs {
    /// Deterministic mock RNGs for tests.
    pub mod mock {
        use crate::RngCore;

        /// A counter "RNG": returns `initial`, `initial + increment`, …
        /// (as `u64`; `next_u32` truncates). Mirrors `rand::rngs::mock::StepRng`.
        #[derive(Clone, Debug)]
        pub struct StepRng {
            value: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates the counter at `initial`, stepping by `increment`.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    value: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }

            fn next_u64(&mut self) -> u64 {
                let out = self.value;
                self.value = self.value.wrapping_add(self.increment);
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(u64);
    impl RngCore for Fixed {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn f64_samples_are_in_unit_interval() {
        let mut rng = Fixed(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Fixed(3);
        for _ in 0..1000 {
            let x = rng.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&y));
            let z = rng.gen_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&z));
        }
    }

    /// An "RNG" that always returns the largest possible sample, driving
    /// `f64::sample` to its maximum `1 − 2⁻⁵³` — the adversarial input
    /// for the half-open-range contract.
    struct MaxRng;
    impl RngCore for MaxRng {
        fn next_u32(&mut self) -> u32 {
            u32::MAX
        }
        fn next_u64(&mut self) -> u64 {
            u64::MAX
        }
    }

    #[test]
    fn float_gen_range_never_returns_the_upper_bound() {
        let mut rng = MaxRng;
        // Adjacent floats: `low + s·(high − low)` rounds up to `high`.
        let low = 1.0f64;
        let high = f64::from_bits(low.to_bits() + 1);
        let v = rng.gen_range(low..high);
        assert!((low..high).contains(&v), "{v} outside [{low}, {high})");
        // Subnormal-width range: the product rounds up to the width.
        let v = rng.gen_range(0.0f64..f64::from_bits(1));
        assert!(v < f64::from_bits(1), "subnormal upper bound returned");
        // Negative upper bound takes the `bits + 1` clamp branch.
        let v = rng.gen_range(-2.0f64..-1.0);
        assert!((-2.0..-1.0).contains(&v), "{v} outside [-2, -1)");
        // Zero upper bound takes the negative-subnormal clamp branch.
        let low = -f64::from_bits(1);
        let v = rng.gen_range(low..0.0);
        assert!((low..0.0).contains(&v), "{v} outside [{low}, 0)");
        // Wide ranges keep their ordinary behaviour.
        let v = rng.gen_range(3.0f64..7.0);
        assert!((3.0..7.0).contains(&v), "{v} outside [3, 7)");
    }

    #[test]
    fn step_rng_counts() {
        let mut rng = rngs::mock::StepRng::new(0, 1);
        assert_eq!(rng.next_u64(), 0);
        assert_eq!(rng.next_u64(), 1);
        assert_eq!(rng.next_u64(), 2);
    }

    #[test]
    fn fill_bytes_fills_partial_chunks() {
        let mut rng = Fixed(11);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn dyn_rng_core_supports_gen() {
        let mut rng = Fixed(5);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let _: f64 = dyn_rng.gen();
        let _ = dyn_rng.gen_range(0usize..4);
    }
}
