//! Minimal in-tree stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate, used because
//! this build environment has no network access to crates.io.
//!
//! It keeps proptest's shape — strategies, `proptest!`, `prop_assert!` —
//! but samples deterministically (seeded ChaCha per test, no persistence)
//! and does not shrink failures: a failing case reports the sampled
//! values via the panic message instead.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use rand::{Rng as _, SeedableRng as _};
use std::fmt;
use std::ops::Range;

/// The RNG strategies sample from.
pub type TestRng = rand_chacha::ChaCha12Rng;

/// Configuration of a property run.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the run fails.
    Fail(String),
    /// The case was rejected by `prop_assume!`; it is skipped.
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Creates a rejection.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Drives the cases of one property.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Creates a runner.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs `case` for each configured case, panicking on the first
    /// failure (no shrinking).
    pub fn run<F>(&mut self, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        // Deterministic seed per property name so failures reproduce.
        let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
        });
        let mut rejected = 0u32;
        let max_rejects = self.config.cases.saturating_mul(16).max(1024);
        let mut case_index = 0u32;
        let mut attempt = 0u64;
        while case_index < self.config.cases {
            let mut rng = TestRng::seed_from_u64(seed);
            rng.set_stream(attempt);
            attempt += 1;
            match case(&mut rng) {
                Ok(()) => case_index += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!("property `{name}`: too many prop_assume! rejections");
                    }
                }
                Err(TestCaseError::Fail(message)) => {
                    panic!(
                        "property `{name}` failed at case {case_index} (stream {}):\n{message}",
                        attempt - 1
                    );
                }
            }
        }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// A strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.start as f64..self.end as f64) as f32
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;
    use std::ops::Range;

    /// Anything usable as the size argument of [`vec()`].
    pub trait IntoSizeRange {
        /// The inclusive-lower, exclusive-upper bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// A strategy for `Vec<T>` with lengths drawn from `size`.
    pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "empty size range");
        VecStrategy { element, lo, hi }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.lo + 1 == self.hi {
                self.lo
            } else {
                rng.gen_range(self.lo..self.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Defines property tests; mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __runner = $crate::TestRunner::new(__cfg);
                __runner.run(stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __rng);)+
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    __result
                });
            }
        )*
    };
}

/// Fails the current case if the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "{} == {} failed: {:?} vs {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, $($fmt)*);
    }};
}

/// Skips the current case if the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestRunner,
    };
    /// Alias so `prop::collection::vec` paths work.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -2i32..9, z in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2..9).contains(&y));
            prop_assert!((0.25..0.75).contains(&z), "z = {z}");
        }

        #[test]
        fn vec_lengths_follow_size_range(v in collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            for x in v {
                prop_assert!(x < 5);
            }
        }

        #[test]
        fn prop_map_and_assume_work(n in 0usize..20) {
            prop_assume!(n != 7);
            let doubled = (0usize..10).prop_map(|x| x * 2);
            let _ = &doubled;
            prop_assert_eq!(n == 7, false);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_context() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(4));
        runner.run("always_fails", |_rng| Err(TestCaseError::fail("nope")));
    }

    #[test]
    fn deterministic_across_runs() {
        let collect = || {
            let mut out = Vec::new();
            let mut runner = TestRunner::new(ProptestConfig::with_cases(8));
            runner.run("det", |rng| {
                out.push(crate::Strategy::sample(&(0u64..1000), rng));
                Ok(())
            });
            out
        };
        assert_eq!(collect(), collect());
    }
}
