//! Minimal in-tree stand-in for the
//! [`rand_chacha`](https://crates.io/crates/rand_chacha) crate, used
//! because this build environment has no network access to crates.io.
//!
//! Implements a genuine ChaCha stream cipher core (12 rounds for
//! [`ChaCha12Rng`]) with the 64-bit block counter and 64-bit stream id
//! layout the upstream crate exposes through `set_stream`. Output is
//! deterministic, portable and statistically strong; the exact stream
//! differs from the upstream crate (nothing in this workspace depends on
//! upstream-exact output).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A ChaCha RNG with `R` double-rounds.
#[derive(Clone, Debug)]
pub struct ChaChaRng<const DOUBLE_ROUNDS: usize> {
    key: [u32; 8],
    counter: u64,
    stream: u64,
    buffer: [u32; 16],
    index: usize,
}

impl<const DOUBLE_ROUNDS: usize> ChaChaRng<DOUBLE_ROUNDS> {
    /// Selects one of the 2⁶⁴ independent streams of this seed.
    ///
    /// Restarts the stream from its beginning, so repetition `k` of an
    /// experiment is identical no matter how many streams ran before it.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.counter = 0;
        self.index = 16;
    }

    /// The current stream id.
    pub fn get_stream(&self) -> u64 {
        self.stream
    }

    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            CONSTANTS[0],
            CONSTANTS[1],
            CONSTANTS[2],
            CONSTANTS[3],
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            self.stream as u32,
            (self.stream >> 32) as u32,
        ];
        let initial = state;
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial) {
            *word = word.wrapping_add(init);
        }
        self.buffer = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl<const DOUBLE_ROUNDS: usize> RngCore for ChaChaRng<DOUBLE_ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let out = self.buffer[self.index];
        self.index += 1;
        out
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl<const DOUBLE_ROUNDS: usize> SeedableRng for ChaChaRng<DOUBLE_ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaChaRng {
            key,
            counter: 0,
            stream: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

/// ChaCha with 8 rounds (4 double-rounds).
pub type ChaCha8Rng = ChaChaRng<4>;
/// ChaCha with 12 rounds (6 double-rounds) — the workspace default.
pub type ChaCha12Rng = ChaChaRng<6>;
/// ChaCha with 20 rounds (10 double-rounds).
pub type ChaCha20Rng = ChaChaRng<10>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_output() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn streams_are_independent_and_restartable() {
        let mut a = ChaCha12Rng::seed_from_u64(7);
        a.set_stream(3);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let mut b = ChaCha12Rng::seed_from_u64(7);
        b.set_stream(5);
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
        // Re-selecting the stream restarts it.
        b.set_stream(3);
        let zs: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, zs);
    }

    #[test]
    fn output_is_not_trivially_degenerate() {
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let mut ones = 0u32;
        for _ in 0..64 {
            ones += rng.next_u64().count_ones();
        }
        // 4096 bits, expect ~2048 ones; allow a very wide band.
        assert!((1600..2500).contains(&ones), "ones = {ones}");
    }
}
