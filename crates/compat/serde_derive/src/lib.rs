//! Derive macros for the in-tree `serde` stand-in.
//!
//! Supports non-generic structs: named-field structs serialize as maps,
//! one-field tuple structs as their inner value (newtype convention),
//! longer tuple structs as sequences, unit structs as empty maps. Enums
//! are not supported — spec enums in this workspace write their impls by
//! hand, where validation errors are clearer anyway.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Parsed {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_struct(input) {
        Ok(parsed) => gen_serialize(&parsed)
            .parse()
            .expect("generated code parses"),
        Err(message) => compile_error(&message),
    }
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_struct(input) {
        Ok(parsed) => gen_deserialize(&parsed)
            .parse()
            .expect("generated code parses"),
        Err(message) => compile_error(&message),
    }
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});")
        .parse()
        .expect("literal parses")
}

fn parse_struct(input: TokenStream) -> Result<Parsed, String> {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    match tokens.next() {
        Some(TokenTree::Ident(kw)) if kw.to_string() == "struct" => {}
        Some(TokenTree::Ident(kw)) if kw.to_string() == "enum" => {
            return Err("this in-tree serde derive supports structs only; \
                        implement Serialize/Deserialize by hand for enums"
                .to_string());
        }
        other => return Err(format!("expected `struct`, found {other:?}")),
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => return Err(format!("expected struct name, found {other:?}")),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err("this in-tree serde derive does not support generics".to_string());
    }
    let shape = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(named_fields(g.stream())?)
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
        None => Shape::Unit,
        other => return Err(format!("unexpected token {other:?}")),
    };
    Ok(Parsed { name, shape })
}

/// Extracts the field names of a named-struct body.
fn named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after `{name}`, found {other:?}")),
        }
        names.push(name);
        // Skip the type up to the next top-level comma (commas inside
        // angle brackets belong to the type).
        let mut angle_depth = 0i32;
        for token in tokens.by_ref() {
            match token {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    Ok(names)
}

/// Counts the fields of a tuple-struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0;
    let mut angle_depth = 0i32;
    let mut saw_token = false;
    for token in stream {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    if saw_token {
        count += 1;
    }
    count
}

fn gen_serialize(parsed: &Parsed) -> String {
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Named(fields) => {
            let mut pushes = String::new();
            for field in fields {
                pushes.push_str(&format!(
                    "__fields.push(({field:?}.to_string(), ::serde::Serialize::to_value(&self.{field})));\n"
                ));
            }
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Value::Map(__fields)"
            )
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Shape::Unit => "::serde::Value::Map(::std::vec::Vec::new())".to_string(),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(parsed: &Parsed) -> String {
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|field| format!("{field}: ::serde::de_field(__value, {field:?})?"))
                .collect();
            format!(
                "if __value.as_map().is_none() {{\n\
                     return ::std::result::Result::Err(::serde::Error::expected(\"map\", __value));\n\
                 }}\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                .collect();
            format!(
                "let __seq = __value.as_seq()\
                     .ok_or_else(|| ::serde::Error::expected(\"sequence\", __value))?;\n\
                 if __seq.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::Error::custom(\
                         format!(\"expected {n} elements, got {{}}\", __seq.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}
