//! **E1 — Theorem 1 (Section 3).** Algorithm 1 turns a static algorithm
//! with guarantee `f(n)·I` into one whose schedule length is linear in `I`
//! for dense instances.
//!
//! Workload: a multiple-access channel with `m = 8` links; the instance is
//! a base demand duplicated `k` times, so `I = n` grows while the network
//! stays fixed. The raw uniform-rate algorithm (Theorem 19,
//! `O(I·log n)`) shows a growing `slots/I` ratio; the transformed
//! algorithm and the two-stage scheduler hold it flat — exactly the
//! scaling repair the paper's transformation provides.

use crate::ExpConfig;
use dps_core::feasibility::ThresholdFeasibility;
use dps_core::ids::{LinkId, PacketId};
use dps_core::interference::CompleteInterference;
use dps_core::rng::split_stream;
use dps_core::staticsched::two_stage::TwoStageDecayScheduler;
use dps_core::staticsched::uniform_rate::UniformRateScheduler;
use dps_core::staticsched::{run_static, Request, StaticScheduler};
use dps_core::transform::DenseTransform;
use dps_sim::table::{fmt3, Table};

fn mac_requests(n: usize, m: usize) -> Vec<Request> {
    (0..n)
        .map(|i| Request {
            packet: PacketId(i as u64),
            link: LinkId((i % m) as u32),
        })
        .collect()
}

/// Measures the realized schedule length of `scheduler` on the instance,
/// averaged over `reps` independent runs (the completion time has a heavy
/// coupon-collector tail, so single runs are noisy).
fn realized_slots<S: StaticScheduler>(
    scheduler: &S,
    n: usize,
    m: usize,
    seed: u64,
    reps: u64,
) -> Option<f64> {
    let requests = mac_requests(n, m);
    let model = CompleteInterference::new(m);
    let feas = ThresholdFeasibility::new(model);
    let i = n as f64;
    let budget = 16 * scheduler.slots_needed(i, n) + 10_000;
    let mut total = 0usize;
    for rep in 0..reps {
        let mut rng = split_stream(seed, n as u64 * 100 + rep);
        let result = run_static(scheduler, &requests, i, &feas, budget, &mut rng);
        if !result.all_served() {
            return None;
        }
        total += result.slots_used;
    }
    Some(total as f64 / reps as f64)
}

/// Runs E1.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let m = 8;
    let ks: &[usize] = if cfg.full {
        &[1, 2, 4, 8, 16, 32]
    } else {
        &[1, 4, 16]
    };
    let base = 64;
    let raw = UniformRateScheduler::new();
    let transformed = DenseTransform::new(raw, m).with_chi(8.0);
    let two_stage = TwoStageDecayScheduler::new(m);

    let mut table = Table::new(
        "E1: schedule length vs instance density (MAC, m = 8); Theorem 1 predicts \
         raw slots/I grows with log n while transformed stays flat",
        &[
            "n = I",
            "raw slots",
            "raw/I",
            "transf slots",
            "transf/I",
            "2-stage slots",
            "2-stage/I",
        ],
    );
    let reps = if cfg.full { 9 } else { 5 };
    for &k in ks {
        let n = base * k;
        let i = n as f64;
        let raw_slots =
            realized_slots(&raw, n, m, cfg.seed, reps).expect("raw serves within budget");
        let tr_slots =
            realized_slots(&transformed, n, m, cfg.seed + 1, reps).expect("transformed serves");
        let ts_slots =
            realized_slots(&two_stage, n, m, cfg.seed + 2, reps).expect("two-stage serves");
        table.push_row(vec![
            n.to_string(),
            fmt3(raw_slots),
            fmt3(raw_slots / i),
            fmt3(tr_slots),
            fmt3(tr_slots / i),
            fmt3(ts_slots),
            fmt3(ts_slots / i),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_mode_reproduces_the_scaling_gap() {
        let cfg = ExpConfig::default();
        let tables = run(&cfg);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].num_rows(), 3);
    }

    #[test]
    fn raw_ratio_grows_while_transformed_flat() {
        // The raw completion time has a coupon-collector tail whose noise
        // exceeds the ln(n) growth in single runs; compare seed-averaged
        // means at a 32x size spread.
        let m = 8;
        let raw = UniformRateScheduler::new();
        let two_stage = TwoStageDecayScheduler::new(m);
        let seed = 7;
        let reps = 7;
        let small = 32;
        let large = 1024;
        let raw_small = realized_slots(&raw, small, m, seed, reps).unwrap() / small as f64;
        let raw_large = realized_slots(&raw, large, m, seed, reps).unwrap() / large as f64;
        let ts_small = realized_slots(&two_stage, small, m, seed, reps).unwrap() / small as f64;
        let ts_large = realized_slots(&two_stage, large, m, seed, reps).unwrap() / large as f64;
        assert!(
            raw_large > 1.15 * raw_small,
            "raw slots/I should grow: {raw_small} -> {raw_large}"
        );
        assert!(
            ts_large < 1.3 * ts_small.max(20.0),
            "two-stage slots/I should flatten: {ts_small} -> {ts_large}"
        );
    }
}
