//! **E2 — Theorem 3 (Section 4.1).** The dynamic frame protocol keeps
//! expected queue lengths bounded for every injection rate
//! `λ < 1/f(m)`, and diverges beyond the capacity of its static
//! algorithm.
//!
//! Two substrates exercise the same machinery:
//!
//! * packet routing (ring, `W = identity`, greedy per-link, `f = 1`);
//! * SINR with linear powers (random instance, two-stage scheduler) — the
//!   Corollary 12 setting.
//!
//! For each relative load `λ/λ_max` the table reports the stability
//! verdict, mean and final backlog, and mean delivery latency.

use crate::setup::{dynamic_run, injector_at_rate, run_and_classify, single_hop_routes, verdict_cell};
use crate::ExpConfig;
use dps_core::staticsched::greedy::GreedyPerLink;
use dps_core::staticsched::two_stage::TwoStageDecayScheduler;
use dps_routing::workloads::RoutingSetup;
use dps_sim::table::{fmt3, Table};
use dps_sinr::feasibility::SinrFeasibility;
use dps_sinr::instances::random_instance;
use dps_sinr::matrix::SinrInterference;
use dps_sinr::params::SinrParams;
use dps_sinr::power::LinearPower;

/// Relative loads probed, as fractions of the scheduler's `1/f(m)`.
///
/// Routing (tiny per-frame overhead) also probes 95% of capacity; the
/// SINR substrate stops at 80% because its frame length grows as
/// `Θ(overhead/ε²)` and the two-stage cascade's overhead makes
/// near-threshold configurations prohibitively long to simulate (the
/// theory's `T = Θ(1/ε³)` has the same character).
const ROUTING_LOADS: &[f64] = &[0.5, 0.8, 0.95, 1.3];
/// The SINR overload row uses a much larger multiple: the two-stage
/// scheduler's theoretical `f(m)` is conservative (its slot budget carries
/// worst-case slack the protocol happily spends on excess load), so
/// overload of the *bound* by several x is still within the protocol's
/// real capacity — itself a faithful reflection of how loose worst-case
/// wireless scheduling bounds are.
const SINR_LOADS: &[f64] = &[0.5, 0.8, 8.0];

/// Runs E2.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    vec![routing_table(cfg), sinr_table(cfg)]
}

fn routing_table(cfg: &ExpConfig) -> Table {
    let mut table = Table::new(
        "E2a: stability vs load — ring packet routing (m = 8, 2-hop routes, f = 1)",
        &["lambda/max", "lambda", "verdict", "mean backlog", "final backlog", "mean latency"],
    );
    let setup = RoutingSetup::ring(8, 2).expect("valid ring setup");
    let frames = if cfg.full { 200 } else { 50 };
    for (row, &load) in ROUTING_LOADS.iter().enumerate() {
        let lambda = load; // λ_max = 1 for greedy per-link
        let lambda_cfg = lambda.min(0.95);
        let mut run = dynamic_run(
            GreedyPerLink::new(),
            setup.network.significant_size(),
            setup.network.num_links(),
            lambda_cfg,
        )
        .expect("config for capped rate");
        let mut injector =
            injector_at_rate(setup.routes.clone(), &setup.model, lambda).expect("feasible rate");
        let slots = frames * run.config.frame_len as u64;
        let (report, verdict) = run_and_classify(
            &mut run.protocol,
            &mut injector,
            &setup.feasibility,
            slots,
            cfg.seed,
            row as u64,
        );
        table.push_row(vec![
            fmt3(load),
            fmt3(lambda),
            verdict_cell(&verdict),
            fmt3(report.mean_backlog()),
            report.final_backlog.to_string(),
            fmt3(report.latency_summary().mean),
        ]);
    }
    table
}

fn sinr_table(cfg: &ExpConfig) -> Table {
    let mut table = Table::new(
        "E2b: stability vs load — SINR with linear powers (random m = 16, two-stage scheduler)",
        &[
            "lambda/max",
            "lambda",
            "verdict",
            "mean backlog",
            "final backlog",
            "delivered/injected",
            "mean latency",
        ],
    );
    let m = 16;
    let mut geo_rng = dps_core::rng::split_stream(cfg.seed, 999);
    let params = SinrParams::default_noiseless();
    let net = random_instance(m, 80.0, 1.0, 3.0, params, &mut geo_rng);
    let scheduler = TwoStageDecayScheduler::new(m);
    let model = SinrInterference::fixed_power(&net, &LinearPower::new(params.alpha));
    let phy = SinrFeasibility::new(net.clone(), LinearPower::new(params.alpha));
    let lambda_max = 1.0 / dps_core::staticsched::StaticScheduler::f_of(&scheduler, m);
    let frames = if cfg.full { 60 } else { 25 };
    for (row, &load) in SINR_LOADS.iter().enumerate() {
        let lambda = load * lambda_max;
        let lambda_cfg = lambda.min(0.8 * lambda_max);
        let mut run = dynamic_run(scheduler, m, m, lambda_cfg).expect("config for capped rate");
        let mut injector =
            injector_at_rate(single_hop_routes(m), &model, lambda).expect("feasible rate");
        let slots = frames * run.config.frame_len as u64;
        let (report, verdict) = run_and_classify(
            &mut run.protocol,
            &mut injector,
            &phy,
            slots,
            cfg.seed,
            100 + row as u64,
        );
        table.push_row(vec![
            fmt3(load),
            fmt3(lambda),
            verdict_cell(&verdict),
            fmt3(report.mean_backlog()),
            report.final_backlog.to_string(),
            fmt3(report.delivery_ratio()),
            fmt3(report.latency_summary().mean),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_sim::stability::StabilityVerdict;

    /// The core qualitative claim on the cheap substrate: stable well below
    /// capacity, unstable well above.
    #[test]
    fn routing_threshold_behaviour() {
        let setup = RoutingSetup::ring(6, 2).expect("valid setup");
        let probe = |lambda: f64, lambda_cfg: f64, stream: u64| -> StabilityVerdict {
            let mut run = dynamic_run(
                GreedyPerLink::new(),
                setup.network.significant_size(),
                setup.network.num_links(),
                lambda_cfg,
            )
            .unwrap();
            let mut injector =
                injector_at_rate(setup.routes.clone(), &setup.model, lambda).unwrap();
            let slots = 50 * run.config.frame_len as u64;
            let (_, verdict) = run_and_classify(
                &mut run.protocol,
                &mut injector,
                &setup.feasibility,
                slots,
                7,
                stream,
            );
            verdict
        };
        assert!(probe(0.5, 0.9, 0).is_stable());
        assert!(!probe(1.4, 0.95, 1).is_stable());
    }
}
