//! **E2 — Theorem 3 (Section 4.1).** The dynamic frame protocol keeps
//! expected queue lengths bounded for every injection rate
//! `λ < 1/f(m)`, and diverges beyond the capacity of its static
//! algorithm.
//!
//! Two substrates exercise the same machinery, both driven through the
//! declarative scenario API (`ring-routing` and `sinr-linear` registry
//! presets swept over load):
//!
//! * packet routing (ring, `W = identity`, greedy per-link, `f = 1`);
//! * SINR with linear powers (random instance, two-stage scheduler) — the
//!   Corollary 12 setting.
//!
//! For each relative load `λ/λ_max` the table reports the stability
//! verdict, mean and final backlog, and mean delivery latency.

use crate::ExpConfig;
use dps_scenario::{registry, Sweep};
use dps_sim::table::{fmt3, Table};

/// Relative loads probed, as fractions of the scheduler's `1/f(m)`.
///
/// Routing (tiny per-frame overhead) also probes 95% of capacity; the
/// SINR substrate stops at 80% because its frame length grows as
/// `Θ(overhead/ε²)` and the two-stage cascade's overhead makes
/// near-threshold configurations prohibitively long to simulate (the
/// theory's `T = Θ(1/ε³)` has the same character).
const ROUTING_LOADS: &[f64] = &[0.5, 0.8, 0.95, 1.3];
/// The SINR overload row uses a much larger multiple: the two-stage
/// scheduler's theoretical `f(m)` is conservative (its slot budget carries
/// worst-case slack the protocol happily spends on excess load), so
/// overload of the *bound* by several x is still within the protocol's
/// real capacity — itself a faithful reflection of how loose worst-case
/// wireless scheduling bounds are.
const SINR_LOADS: &[f64] = &[0.5, 0.8, 8.0];

/// Runs E2.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    vec![routing_table(cfg), sinr_table(cfg)]
}

fn routing_table(cfg: &ExpConfig) -> Table {
    let mut table = Table::new(
        "E2a: stability vs load — ring packet routing (m = 8, 2-hop routes, f = 1)",
        &[
            "lambda/max",
            "lambda",
            "verdict",
            "mean backlog",
            "final backlog",
            "mean latency",
        ],
    );
    let mut spec = registry::spec_for("ring-routing").expect("registry preset");
    spec.run.seed = cfg.seed;
    spec.run.frames = if cfg.full { 200 } else { 50 };
    // Greedy per-link has λ_max = 1, so the relative loads are the rates.
    let report = Sweep::new(spec)
        .over_lambdas(ROUTING_LOADS)
        .run()
        .expect("routing sweep runs");
    for cell in &report.cells {
        let o = &cell.outcome;
        table.push_row(vec![
            fmt3(o.lambda / o.lambda_max),
            fmt3(o.lambda),
            o.verdict_cell(),
            fmt3(o.report.mean_backlog()),
            o.report.final_backlog.to_string(),
            fmt3(o.report.latency_summary().mean),
        ]);
    }
    table
}

fn sinr_table(cfg: &ExpConfig) -> Table {
    let mut table = Table::new(
        "E2b: stability vs load — SINR with linear powers (random m = 16, two-stage scheduler)",
        &[
            "lambda/max",
            "lambda",
            "verdict",
            "mean backlog",
            "final backlog",
            "delivered/injected",
            "mean latency",
        ],
    );
    let mut spec = registry::spec_for("sinr-linear").expect("registry preset");
    spec.run.seed = cfg.seed;
    spec.run.frames = if cfg.full { 60 } else { 25 };
    // The geometry follows the CLI seed (distinct from the run streams),
    // so different --seed values probe different random instances.
    if let dps_scenario::SubstrateConfig::SinrRandom { seed, .. } = &mut spec.substrate {
        *seed = cfg.seed.wrapping_add(999);
    }
    // The preset's λ is capacity-relative, so the loads sweep directly.
    let report = Sweep::new(spec)
        .over_lambdas(SINR_LOADS)
        .run()
        .expect("sinr sweep runs");
    for cell in &report.cells {
        let o = &cell.outcome;
        table.push_row(vec![
            fmt3(cell.point.lambda),
            fmt3(o.lambda),
            o.verdict_cell(),
            fmt3(o.report.mean_backlog()),
            o.report.final_backlog.to_string(),
            fmt3(o.report.delivery_ratio()),
            fmt3(o.report.latency_summary().mean),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_scenario::Scenario;

    /// The core qualitative claim on the cheap substrate: stable well below
    /// capacity, unstable well above.
    #[test]
    fn routing_threshold_behaviour() {
        let mut spec = registry::spec_for("ring-routing").unwrap();
        spec.substrate = dps_scenario::SubstrateConfig::RingRouting { nodes: 6, hops: 2 };
        spec.run.seed = 7;
        spec.run.frames = 50;
        let probe = |lambda: f64, stream: u64| {
            Scenario::from_spec(&spec.clone().with_lambda(lambda))
                .unwrap()
                .run_stream(stream)
                .unwrap()
                .verdict
        };
        assert!(probe(0.5, 0).is_stable());
        assert!(!probe(1.4, 1).is_stable());
    }
}
