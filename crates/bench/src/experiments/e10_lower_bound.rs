//! **E10 — Theorem 20 and Figure 1 (Section 8).** Without a global clock
//! no acknowledgment-based protocol can be `m/2·ln m`-competitive in the
//! SINR model with uniform powers.
//!
//! On the Figure 1 star instance (`m − 1` short links that always succeed
//! plus one long link that requires global silence):
//!
//! * the global-clock protocol (shorts on even slots, long link on odd
//!   slots) is stable for every per-link rate `λ < 1/2`;
//! * the local-clock ALOHA protocol starves the long link as soon as the
//!   short links carry load `λ ≳ ln m / m` — its queue grows linearly
//!   while every short queue stays bounded.
//!
//! The table reports, per network size and rate, both protocols' verdicts
//! and the long link's final queue length.

use crate::ExpConfig;
use dps_core::protocol::Protocol;
use dps_sim::runner::{run_simulation, SimulationConfig};
use dps_sim::stability::classify_stability;
use dps_sim::table::{fmt3, Table};
use dps_sinr::feasibility::SinrFeasibility;
use dps_sinr::instances::{star_instance, StarInstance};
use dps_sinr::power::UniformPower;
use dps_sinr::star::{GlobalClockStarProtocol, LocalClockAlohaProtocol};

use crate::setup::injector_at_rate;
use dps_core::interference::IdentityInterference;
use dps_core::path::RoutePath;

fn star_routes(star: &StarInstance) -> Vec<std::sync::Arc<RoutePath>> {
    star.short_links
        .iter()
        .chain(std::iter::once(&star.long_link))
        .map(|&l| RoutePath::single_hop(l).shared())
        .collect()
}

struct StarRun {
    verdict: String,
    long_queue: usize,
    delivered_ratio: f64,
}

fn run_protocol<P: Protocol>(
    star: &StarInstance,
    protocol: &mut P,
    long_queue: impl Fn(&P) -> usize,
    lambda: f64,
    slots: u64,
    seed: u64,
    stream: u64,
) -> StarRun {
    let oracle = SinrFeasibility::new(star.net.clone(), UniformPower::unit());
    // Rate λ *per link*: identity model ⇒ per-link expected load is λ.
    let model = IdentityInterference::new(star.net.num_links());
    let mut injector = injector_at_rate(star_routes(star), &model, lambda).expect("feasible rate");
    let report = run_simulation(
        protocol,
        &mut injector,
        &oracle,
        SimulationConfig::new(slots, seed).with_stream(stream),
    );
    let verdict = classify_stability(&report, 0.05);
    StarRun {
        verdict: crate::setup::verdict_cell(&verdict),
        long_queue: long_queue(protocol),
        delivered_ratio: report.delivery_ratio(),
    }
}

/// Runs E10.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let sizes: &[usize] = if cfg.full { &[8, 16, 32, 64] } else { &[8, 16] };
    let slots = if cfg.full { 60_000 } else { 20_000 };
    let mut table = Table::new(
        "E10: Figure 1 star — global clock (even/odd split) vs local-clock \
         ALOHA; Theorem 20 predicts the long link starves without a global \
         clock once per-link load reaches ~ln m / m",
        &[
            "m",
            "lambda/link",
            "global verdict",
            "global long-queue",
            "local verdict",
            "local long-queue",
            "local delivered",
        ],
    );
    for &m in sizes {
        let star = star_instance(m);
        let heavy = 0.4;
        let light = (2.0 * (m as f64).ln() / m as f64).min(0.45);
        for (i, &lambda) in [heavy, light].iter().enumerate() {
            let mut global = GlobalClockStarProtocol::new(&star);
            let g = run_protocol(
                &star,
                &mut global,
                GlobalClockStarProtocol::long_queue_len,
                lambda,
                slots,
                cfg.seed,
                (m * 10 + i) as u64,
            );
            let mut local = LocalClockAlohaProtocol::new(&star, 0.75);
            let l = run_protocol(
                &star,
                &mut local,
                LocalClockAlohaProtocol::long_queue_len,
                lambda,
                slots,
                cfg.seed,
                (m * 10 + i + 5) as u64,
            );
            table.push_row(vec![
                m.to_string(),
                fmt3(lambda),
                g.verdict,
                g.long_queue.to_string(),
                l.verdict,
                l.long_queue.to_string(),
                fmt3(l.delivered_ratio),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_clock_stable_local_clock_starves_at_heavy_load() {
        let star = star_instance(12);
        let lambda = 0.4;
        let slots = 15_000;
        let mut global = GlobalClockStarProtocol::new(&star);
        let g = run_protocol(
            &star,
            &mut global,
            GlobalClockStarProtocol::long_queue_len,
            lambda,
            slots,
            3,
            0,
        );
        let mut local = LocalClockAlohaProtocol::new(&star, 0.75);
        let l = run_protocol(
            &star,
            &mut local,
            LocalClockAlohaProtocol::long_queue_len,
            lambda,
            slots,
            3,
            1,
        );
        assert_eq!(g.verdict, "stable");
        assert!(g.long_queue < 100, "global long queue {}", g.long_queue);
        assert!(
            l.long_queue > 1000,
            "local-clock long queue should grow linearly, got {}",
            l.long_queue
        );
    }
}
