//! **E4 — Section 4.1 analysis.** The stability proof bounds the potential
//! `Φ` (total remaining hops of failed packets) by a geometric tail:
//! `Pr[Φ ≥ k] ≤ (1 − 1/m²J)^k`.
//!
//! Failures require an imperfect physical layer, so this experiment runs
//! packet routing under a [`dps_core::feasibility::LossyFeasibility`]
//! wrapper (each success dropped with probability 0.15 — the paper's
//! "unreliable network" extension from Section 9). The table reports the
//! empirical tail `Pr[Φ ≥ k]` sampled once per frame and the fitted
//! `ln Pr` slope, which the theory predicts to be negative and roughly
//! constant in `k` (a straight line on a log plot).

use crate::setup::{dynamic_run, injector_at_rate};
use crate::ExpConfig;
use dps_core::feasibility::LossyFeasibility;
use dps_core::potential::PotentialSeries;
use dps_core::staticsched::greedy::GreedyPerLink;
use dps_routing::workloads::RoutingSetup;
use dps_sim::runner::{run_simulation, SimulationConfig};
use dps_sim::table::{fmt3, Table};

/// Runs the protocol and returns the per-frame potential series.
fn sample_potential(cfg: &ExpConfig, loss: f64, frames: u64) -> (PotentialSeries, usize) {
    let setup = RoutingSetup::ring(4, 1).expect("valid ring");
    let mut run = dynamic_run(
        GreedyPerLink::new(),
        setup.network.significant_size(),
        setup.network.num_links(),
        0.7,
    )
    .expect("valid config");
    let phy = LossyFeasibility::new(setup.feasibility, loss);
    let mut injector =
        injector_at_rate(setup.routes.clone(), &setup.model, 0.6).expect("feasible rate");
    let t = run.config.frame_len as u64;
    let report = run_simulation(
        &mut run.protocol,
        &mut injector,
        &phy,
        SimulationConfig::new(frames * t, cfg.seed).with_sample_every(t),
    );
    (report.potential.clone(), run.config.frame_len)
}

/// Runs E4.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let frames = if cfg.full { 4000 } else { 800 };
    let (series, frame_len) = sample_potential(cfg, 0.15, frames);
    let slope = series.log_tail_slope();

    let mut table = Table::new(
        format!(
            "E4: empirical potential tail Pr[Phi >= k] over {} frames (T = {frame_len}, \
             15% transmission loss); Section 4.1 predicts a geometric tail — \
             fitted ln-slope {}",
            series.len(),
            slope.map_or("n/a".to_string(), |s| format!("{s:.3}")),
        ),
        &["k", "Pr[Phi >= k]"],
    );
    let max_k = series.max().clamp(1, 12);
    for k in 1..=max_k {
        table.push_row(vec![k.to_string(), fmt3(series.tail_probability(k))]);
    }
    let mut summary = Table::new(
        "E4 summary",
        &["frames", "mean Phi", "max Phi", "ln-tail slope"],
    );
    summary.push_row(vec![
        series.len().to_string(),
        fmt3(series.mean()),
        series.max().to_string(),
        slope.map_or("n/a".to_string(), |s| format!("{s:.3}")),
    ]);
    vec![table, summary]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossy_runs_produce_failures_and_geometric_tail() {
        let cfg = ExpConfig::default();
        let (series, _) = sample_potential(&cfg, 0.25, 600);
        assert!(series.max() > 0, "losses must produce failed packets");
        // Tail probabilities are non-increasing in k.
        let curve = series.tail_curve();
        for pair in curve.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
        if let Some(slope) = series.log_tail_slope() {
            assert!(slope < 0.05, "tail must decay, slope {slope}");
        }
    }

    #[test]
    fn lossless_runs_keep_zero_potential() {
        let cfg = ExpConfig::default();
        let (series, _) = sample_potential(&cfg, 1e-9, 100);
        assert_eq!(series.max(), 0);
    }
}
