//! **E7 — Lemma 15 (Section 7.1).** Algorithm 2 transmits `n` packets on
//! the multiple-access channel within `(1+δ)·e·n + O(φ²·log²n)` slots
//! w.h.p.
//!
//! The table reports realized schedule lengths for growing `n`, the
//! `slots/n` ratio (should approach `(1+δ)·e`), and the incremental slope
//! between consecutive sizes (which removes the additive polylog term and
//! should be the cleanest estimate of `(1+δ)·e`). A final row runs the
//! verbatim Lemma 15 constants inside their own budget.

use crate::ExpConfig;
use dps_core::feasibility::SingleChannelFeasibility;
use dps_core::ids::{LinkId, PacketId};
use dps_core::rng::split_stream;
use dps_core::staticsched::{run_static, Request, StaticScheduler};
use dps_mac::algorithm2::SymmetricMacScheduler;
use dps_sim::table::{fmt3, Table};

fn requests(n: usize) -> Vec<Request> {
    (0..n)
        .map(|i| Request {
            packet: PacketId(i as u64),
            link: LinkId((i % 16) as u32),
        })
        .collect()
}

fn measure(scheduler: &SymmetricMacScheduler, n: usize, seed: u64) -> usize {
    let reqs = requests(n);
    let feas = SingleChannelFeasibility::new();
    let budget = 8 * scheduler.slots_needed(n as f64, n);
    let mut rng = split_stream(seed, n as u64);
    let result = run_static(scheduler, &reqs, n as f64, &feas, budget, &mut rng);
    assert!(
        result.all_served(),
        "algorithm 2 must finish within 8x budget"
    );
    result.slots_used
}

/// Runs E7.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let delta = 0.5;
    let scheduler = SymmetricMacScheduler::new(delta, 1.0);
    let target = (1.0 + delta) * std::f64::consts::E;
    let sizes: &[usize] = if cfg.full {
        &[256, 512, 1024, 2048, 4096, 8192]
    } else {
        &[256, 1024, 4096]
    };
    let mut table = Table::new(
        format!(
            "E7: Algorithm 2 schedule length on the MAC (delta = {delta}); Lemma 15 \
             predicts slots ~ (1+delta)*e*n = {target:.3}*n plus polylog"
        ),
        &["n", "slots", "slots/n", "incremental slope"],
    );
    let mut prev: Option<(usize, usize)> = None;
    for &n in sizes {
        let slots = measure(&scheduler, n, cfg.seed);
        let slope = prev
            .map(|(pn, ps)| fmt3((slots as f64 - ps as f64) / (n as f64 - pn as f64)))
            .unwrap_or_else(|| "-".to_string());
        table.push_row(vec![
            n.to_string(),
            slots.to_string(),
            fmt3(slots as f64 / n as f64),
            slope,
        ]);
        prev = Some((n, slots));
    }

    let mut paper = Table::new(
        "E7b: verbatim Lemma 15 constants complete within their own budget",
        &["n", "budget (Lemma 15)", "slots used", "all served"],
    );
    let exact = SymmetricMacScheduler::new(delta, 1.0).with_paper_constants();
    let n = if cfg.full { 1024 } else { 256 };
    let budget = exact.slots_needed(n as f64, n);
    let reqs = requests(n);
    let feas = SingleChannelFeasibility::new();
    let mut rng = split_stream(cfg.seed, 31);
    let result = run_static(&exact, &reqs, n as f64, &feas, budget, &mut rng);
    paper.push_row(vec![
        n.to_string(),
        budget.to_string(),
        result.slots_used.to_string(),
        result.all_served().to_string(),
    ]);
    vec![table, paper]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_slope_is_near_the_lemma_constant() {
        let delta = 0.5;
        let scheduler = SymmetricMacScheduler::new(delta, 1.0);
        let s1 = measure(&scheduler, 1024, 5);
        let s2 = measure(&scheduler, 4096, 5);
        let slope = (s2 as f64 - s1 as f64) / (4096.0 - 1024.0);
        let target = (1.0 + delta) * std::f64::consts::E;
        assert!(
            (0.5 * target..2.0 * target).contains(&slope),
            "incremental slope {slope} should be near {target}"
        );
    }
}
