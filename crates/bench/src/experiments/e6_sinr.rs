//! **E6 — Corollaries 12, 13, 14 (Section 6).** Achievable injection
//! rates in the SINR model as the network grows:
//!
//! * **linear powers** (Cor 12): constant-competitive — the protocol's
//!   maximum rate `1/f(m)` does not degrade with `m`;
//! * **monotone (sub-)linear powers** (Cor 13): `O(log² m)`-competitive —
//!   the rate decays logarithmically (our transformed uniform-rate
//!   algorithm has `f(m) = Θ(log m)`);
//! * **power control** (Cor 14): centralized first-fit under the §6.2
//!   matrix.
//!
//! For each network size and scheme the table reports the theoretical
//! maximum rate `1/f(m)`, the stability verdict at 50% and 75% of it, and
//! the mean latency at 50% — the *shape* to check is the `1/f(m)` column:
//! flat for linear powers, shrinking like `1/log m` for the others.

use crate::setup::{
    dynamic_run, injector_at_rate, run_and_classify, single_hop_routes, verdict_cell,
};
use crate::ExpConfig;
use dps_core::feasibility::Feasibility;
use dps_core::interference::InterferenceModel;
use dps_core::staticsched::two_stage::TwoStageDecayScheduler;
use dps_core::staticsched::uniform_rate::UniformRateScheduler;
use dps_core::staticsched::StaticScheduler;
use dps_core::transform::DenseTransform;
use dps_sim::table::{fmt3, Table};
use dps_sinr::feasibility::SinrFeasibility;
use dps_sinr::instances::random_instance;
use dps_sinr::matrix::SinrInterference;
use dps_sinr::network::SinrNetwork;
use dps_sinr::params::SinrParams;
use dps_sinr::power::{LinearPower, SquareRootPower};
use dps_sinr::scheduler::PowerControlScheduler;

struct ProbeResult {
    lambda_max: f64,
    verdict_50: String,
    verdict_75: String,
    latency_50: f64,
}

/// Probes one scheduler/model/oracle combination at 50% and 75% of its
/// theoretical maximum rate.
#[allow(clippy::too_many_arguments)]
fn probe<S, M, F>(
    scheduler: S,
    model: &M,
    phy: &F,
    m: usize,
    frames: u64,
    probe_75: bool,
    seed: u64,
    stream: u64,
) -> ProbeResult
where
    S: StaticScheduler + Clone + 'static,
    M: InterferenceModel + ?Sized,
    F: Feasibility,
{
    let lambda_max = 1.0 / scheduler.f_of(m);
    let mut verdicts = Vec::new();
    let mut latency_50 = 0.0;
    // The 75% probe's frame length is ~4x the 50% one (T = Θ(1/ε²));
    // fast mode skips it.
    let loads: &[f64] = if probe_75 { &[0.5, 0.75] } else { &[0.5] };
    for (i, &load) in loads.iter().enumerate() {
        let lambda = load * lambda_max;
        let mut run = dynamic_run(scheduler.clone(), m, m, lambda)
            .expect("rate below threshold must configure");
        let mut injector =
            injector_at_rate(single_hop_routes(m), model, lambda).expect("feasible rate");
        let slots = frames * run.config.frame_len as u64;
        let (report, verdict) = run_and_classify(
            &mut run.protocol,
            &mut injector,
            phy,
            slots,
            seed,
            stream * 10 + i as u64,
        );
        if i == 0 {
            latency_50 = report.latency_summary().mean;
        }
        verdicts.push(verdict_cell(&verdict));
    }
    ProbeResult {
        lambda_max,
        verdict_75: if probe_75 {
            verdicts.pop().expect("75% probe ran")
        } else {
            "(full mode)".to_string()
        },
        verdict_50: verdicts.pop().expect("50% probe ran"),
        latency_50,
    }
}

fn instance(m: usize, seed: u64) -> SinrNetwork {
    let mut rng = dps_core::rng::split_stream(seed, 7000 + m as u64);
    // Density scales with m so the interference landscape stays comparable.
    let side = 20.0 * (m as f64).sqrt();
    random_instance(m, side, 1.0, 3.0, SinrParams::default_noiseless(), &mut rng)
}

/// Runs E6.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let sizes: &[usize] = if cfg.full {
        &[16, 32, 64, 128]
    } else {
        &[16, 32]
    };
    let frames = if cfg.full { 40 } else { 15 };
    let mut table = Table::new(
        "E6: SINR achievable rates vs network size m; Cor 12 predicts the \
         linear-power column flat in m, Cor 13/14 an O(1/log m)-ish decay",
        &[
            "m",
            "scheme",
            "1/f(m)",
            "verdict @50%",
            "verdict @75%",
            "latency @50%",
        ],
    );
    for &m in sizes {
        let net = instance(m, cfg.seed);
        let alpha = net.params().alpha;

        // Corollary 12: linear powers, two-stage scheduler.
        let linear = LinearPower::new(alpha);
        let model = SinrInterference::fixed_power(&net, &linear);
        let phy = SinrFeasibility::new(net.clone(), linear);
        let r = probe(
            TwoStageDecayScheduler::new(m),
            &model,
            &phy,
            m,
            frames,
            cfg.full,
            cfg.seed,
            m as u64,
        );
        table.push_row(vec![
            m.to_string(),
            "linear (Cor 12)".into(),
            fmt3(r.lambda_max),
            r.verdict_50,
            r.verdict_75,
            fmt3(r.latency_50),
        ]);

        // Corollary 13: monotone sub-linear powers (square-root),
        // transformed uniform-rate scheduler (f = Θ(log m)).
        let sqrt_power = SquareRootPower::new(alpha);
        let model = SinrInterference::monotone_power(&net, &sqrt_power);
        let phy = SinrFeasibility::new(net.clone(), sqrt_power);
        let r = probe(
            DenseTransform::new(UniformRateScheduler::new(), m).with_chi(8.0),
            &model,
            &phy,
            m,
            frames,
            cfg.full,
            cfg.seed,
            1000 + m as u64,
        );
        table.push_row(vec![
            m.to_string(),
            "monotone (Cor 13)".into(),
            fmt3(r.lambda_max),
            r.verdict_50,
            r.verdict_75,
            fmt3(r.latency_50),
        ]);

        // Corollary 14: power control — §6.2 matrix, centralized first-fit,
        // square-root powers as the concrete assignment (see DESIGN.md).
        let model = SinrInterference::power_control(&net);
        let phy = SinrFeasibility::new(net.clone(), SquareRootPower::new(alpha));
        let r = probe(
            PowerControlScheduler::new(&net),
            &model,
            &phy,
            m,
            frames,
            cfg.full,
            cfg.seed,
            2000 + m as u64,
        );
        table.push_row(vec![
            m.to_string(),
            "power-ctl (Cor 14)".into(),
            fmt3(r.lambda_max),
            r.verdict_50,
            r.verdict_75,
            fmt3(r.latency_50),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_rate_is_constant_monotone_rate_decays() {
        let two_stage_16 = TwoStageDecayScheduler::new(16);
        let two_stage_256 = TwoStageDecayScheduler::new(256);
        assert_eq!(
            1.0 / two_stage_16.f_of(16),
            1.0 / two_stage_256.f_of(256),
            "Cor 12: linear-power rate must not depend on m"
        );
        let tr_16 = DenseTransform::new(UniformRateScheduler::new(), 16).with_chi(8.0);
        let tr_256 = DenseTransform::new(UniformRateScheduler::new(), 256).with_chi(8.0);
        assert!(
            1.0 / tr_256.f_of(256) < 1.0 / tr_16.f_of(16),
            "Cor 13: monotone-power rate must decay with m"
        );
    }

    #[test]
    fn linear_scheme_is_stable_at_half_rate() {
        let m = 16;
        let net = instance(m, 3);
        let alpha = net.params().alpha;
        let linear = LinearPower::new(alpha);
        let model = SinrInterference::fixed_power(&net, &linear);
        let phy = SinrFeasibility::new(net.clone(), linear);
        let r = probe(
            TwoStageDecayScheduler::new(m),
            &model,
            &phy,
            m,
            12,
            false,
            3,
            1,
        );
        assert_eq!(r.verdict_50, "stable");
    }
}
