//! One module per experiment; see the crate docs for the index.

pub mod e10_lower_bound;
pub mod e11_routing;
pub mod e1_transform;
pub mod e2_stability;
pub mod e3_latency;
pub mod e4_potential;
pub mod e5_adversarial;
pub mod e6_sinr;
pub mod e7_mac_static;
pub mod e8_mac_dynamic;
pub mod e9_conflict;
