//! **E5 — Theorem 11 (Section 5).** With random initial delays the frame
//! protocol stays stable under every `(w, λ)`-bounded adversary with
//! `λ < 1/f(m)` (at slightly reduced rate `(1 − ε/2)/f(m)`), with latency
//! `O(D·w·T/ε)`.
//!
//! Workload: single-hop ring routing under the four adversary shapes of
//! [`dps_core::injection::adversarial`] — smooth, bursty, single-edge
//! flooding, and round-robin — at relative loads below and above the
//! threshold. The table reports the adversary's *effective* rate (measured
//! by a window validator on the actual trace), the stability verdict and
//! the mean latency (which includes the smoothing delays, as in the
//! theorem).

use crate::setup::{dynamic_run, single_hop_routes, verdict_cell, ValidatingInjector};
use crate::ExpConfig;
use dps_core::dynamic::AdversarialWrapper;
use dps_core::injection::adversarial::{
    BurstyAdversary, RoundRobinAdversary, SingleEdgeAdversary, SmoothAdversary,
};
use dps_core::injection::Injector;
use dps_core::interference::IdentityInterference;
use dps_core::staticsched::greedy::GreedyPerLink;
use dps_routing::workloads::RoutingSetup;
use dps_sim::runner::{run_simulation, SimulationConfig};
use dps_sim::stability::classify_stability;
use dps_sim::table::{fmt3, Table};

/// Runs E5.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let num_links = 8;
    let setup = RoutingSetup::ring(num_links, 1).expect("valid ring");
    let w = 64;
    let frames = if cfg.full { 150 } else { 50 };
    let loads: &[f64] = &[0.5, 0.9, 1.3];

    let mut table = Table::new(
        format!(
            "E5: adversarial injection on ring routing (m = {num_links}, w = {w}); \
             Theorem 11 predicts stability for every (w, lambda)-bounded adversary \
             with lambda < 1/f(m) = 1"
        ),
        &[
            "adversary",
            "target rate",
            "effective rate",
            "verdict",
            "mean backlog",
            "mean latency",
        ],
    );

    for &load in loads {
        for kind in ["smooth", "bursty", "single-edge", "round-robin"] {
            let model = IdentityInterference::new(num_links);
            let routes = single_hop_routes(num_links);
            let adversary: Box<dyn Injector> = match kind {
                "smooth" => Box::new(SmoothAdversary::new(model, routes, w, load)),
                "bursty" => Box::new(BurstyAdversary::new(model, routes, w, load)),
                "single-edge" => {
                    Box::new(SingleEdgeAdversary::new(model, routes[0].clone(), w, load))
                }
                _ => Box::new(RoundRobinAdversary::new(model, routes, w, load)),
            };
            let mut injector =
                ValidatingInjector::new(adversary, IdentityInterference::new(num_links), w);

            let lambda_cfg = load.min(0.95);
            let run = dynamic_run(
                GreedyPerLink::new(),
                setup.network.significant_size(),
                num_links,
                lambda_cfg,
            )
            .expect("config for capped rate");
            let t = run.config.frame_len;
            let delay_max = 8;
            let mut protocol = AdversarialWrapper::new(run.protocol, t, delay_max);
            let slots = frames * t as u64;
            let report = run_simulation(
                &mut protocol,
                &mut injector,
                &setup.feasibility,
                SimulationConfig::new(slots, cfg.seed),
            );
            let verdict = classify_stability(&report, 0.05);
            table.push_row(vec![
                kind.to_string(),
                fmt3(load),
                fmt3(injector.validator().effective_rate()),
                verdict_cell(&verdict),
                fmt3(report.mean_backlog()),
                fmt3(report.latency_summary().mean),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bursty_below_threshold_is_stable_and_bounded() {
        let num_links = 4;
        let setup = RoutingSetup::ring(num_links, 1).unwrap();
        let w = 32;
        let model = IdentityInterference::new(num_links);
        let adversary =
            BurstyAdversary::new(model, single_hop_routes(num_links), w, 0.6);
        let mut injector =
            ValidatingInjector::new(adversary, IdentityInterference::new(num_links), w);
        let run = dynamic_run(GreedyPerLink::new(), num_links, num_links, 0.9).unwrap();
        let t = run.config.frame_len;
        let mut protocol = AdversarialWrapper::new(run.protocol, t, 4);
        let report = run_simulation(
            &mut protocol,
            &mut injector,
            &setup.feasibility,
            SimulationConfig::new(60 * t as u64, 11),
        );
        let verdict = classify_stability(&report, 0.05);
        assert!(verdict.is_stable(), "{verdict:?}");
        // The adversary must actually be (w, 0.6)-bounded…
        assert!(injector.validator().is_bounded(0.6 + 1e-9));
        // …and must have injected a non-trivial amount.
        assert!(injector.validator().effective_rate() > 0.2);
    }
}
