//! **E5 — Theorem 11 (Section 5).** With random initial delays the frame
//! protocol stays stable under every `(w, λ)`-bounded adversary with
//! `λ < 1/f(m)` (at slightly reduced rate `(1 − ε/2)/f(m)`), with latency
//! `O(D·w·T/ε)`.
//!
//! Workload: single-hop ring routing under the four adversary shapes of
//! [`dps_core::injection::adversarial`] — smooth, bursty, single-edge
//! flooding, and round-robin — at relative loads below and above the
//! threshold, driven through the `adversarial-ring` scenario preset with
//! the injection kind swapped per row. The table reports the adversary's
//! *effective* rate (measured by the scenario runner's window validator
//! on the actual trace), the stability verdict and the mean latency
//! (which includes the smoothing delays, as in the theorem).

use crate::ExpConfig;
use dps_scenario::{registry, InjectionKind, Scenario};
use dps_sim::table::{fmt3, Table};

const KINDS: &[(InjectionKind, &str)] = &[
    (InjectionKind::Smooth, "smooth"),
    (InjectionKind::Bursty, "bursty"),
    (InjectionKind::SingleEdge, "single-edge"),
    (InjectionKind::RoundRobin, "round-robin"),
];

/// Runs E5.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let w = 64;
    let loads: &[f64] = &[0.5, 0.9, 1.3];
    let mut table = Table::new(
        format!(
            "E5: adversarial injection on ring routing (m = 8, w = {w}); \
             Theorem 11 predicts stability for every (w, lambda)-bounded adversary \
             with lambda < 1/f(m) = 1"
        ),
        &[
            "adversary",
            "target rate",
            "effective rate",
            "verdict",
            "mean backlog",
            "mean latency",
        ],
    );

    let mut base = registry::spec_for("adversarial-ring").expect("registry preset");
    base.run.seed = cfg.seed;
    base.run.frames = if cfg.full { 150 } else { 50 };
    base.injection.window = w;

    for &load in loads {
        for &(kind, name) in KINDS {
            let mut spec = base.clone().with_lambda(load);
            spec.injection.kind = kind;
            let outcome = Scenario::from_spec(&spec)
                .expect("valid spec")
                .run()
                .expect("run completes");
            table.push_row(vec![
                name.to_string(),
                fmt3(load),
                fmt3(outcome.effective_rate.expect("adversarial runs validate")),
                outcome.verdict_cell(),
                fmt3(outcome.report.mean_backlog()),
                fmt3(outcome.report.latency_summary().mean),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bursty_below_threshold_is_stable_and_bounded() {
        let mut spec = registry::spec_for("adversarial-ring").unwrap();
        spec.substrate = dps_scenario::SubstrateConfig::RingRouting { nodes: 4, hops: 1 };
        spec.injection.kind = InjectionKind::Bursty;
        spec.injection.window = 32;
        spec.injection.lambda = 0.6;
        spec.injection.delay_max = 4;
        spec.run.seed = 11;
        spec.run.frames = 60;
        spec.run.provision_cap = 0.9;
        let outcome = Scenario::from_spec(&spec).unwrap().run().unwrap();
        assert!(outcome.verdict.is_stable(), "{:?}", outcome.verdict);
        // The adversary must actually be (w, 0.6)-bounded…
        let effective = outcome.effective_rate.unwrap();
        assert!(effective <= 0.6 + 1e-9, "effective rate {effective}");
        // …and must have injected a non-trivial amount.
        assert!(effective > 0.2, "effective rate {effective}");
    }
}
