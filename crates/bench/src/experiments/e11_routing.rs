//! **E11 — packet routing (Sections 2 and 7).** With `W = identity` the
//! framework reduces to store-and-forward packet routing, and the trivial
//! per-link algorithm yields stable protocols for every injection rate
//! `λ < 1` — the classical adversarial-queuing baseline.
//!
//! Three topologies (ring, line, grid) are driven across the threshold;
//! the table reports verdicts and latency.

use crate::setup::{dynamic_run, injector_at_rate, run_and_classify, verdict_cell};
use crate::ExpConfig;
use dps_core::staticsched::greedy::GreedyPerLink;
use dps_routing::sis::SisProtocol;
use dps_routing::workloads::RoutingSetup;
use dps_sim::table::{fmt3, Table};

/// Runs E11.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let setups: Vec<(&str, RoutingSetup)> = vec![
        ("ring(8), 2-hop", RoutingSetup::ring(8, 2).expect("valid")),
        ("line(8), 3-hop", RoutingSetup::line(8, 3).expect("valid")),
        ("grid(3x3)", RoutingSetup::grid(3, 3)),
    ];
    let rates: &[f64] = &[0.5, 0.9, 1.2];
    let frames = if cfg.full { 150 } else { 50 };
    let mut table = Table::new(
        "E11: packet routing (W = identity, greedy per-link, f = 1): stable \
         for every lambda < 1, unstable beyond",
        &["topology", "lambda", "verdict", "mean backlog", "mean latency"],
    );
    for (row, (name, setup)) in setups.iter().enumerate() {
        for (col, &lambda) in rates.iter().enumerate() {
            let lambda_cfg = lambda.min(0.95);
            let mut run = dynamic_run(
                GreedyPerLink::new(),
                setup.network.significant_size(),
                setup.network.num_links(),
                lambda_cfg,
            )
            .expect("capped rate configures");
            let mut injector = injector_at_rate(setup.routes.clone(), &setup.model, lambda)
                .expect("feasible rate");
            let slots = frames * run.config.frame_len as u64;
            let (report, verdict) = run_and_classify(
                &mut run.protocol,
                &mut injector,
                &setup.feasibility,
                slots,
                cfg.seed,
                (row * 10 + col) as u64,
            );
            table.push_row(vec![
                name.to_string(),
                fmt3(lambda),
                verdict_cell(&verdict),
                fmt3(report.mean_backlog()),
                fmt3(report.latency_summary().mean),
            ]);
        }
    }

    // Baseline comparison: Shortest-In-System (Andrews et al., the paper's
    // related-work reference) against the frame protocol at the same rate.
    // Both are stable for λ < 1; SIS pays no frame overhead, so its latency
    // is O(d) instead of O(d·T) — the price of the frame protocol's
    // generality across interference models.
    let mut baseline = Table::new(
        "E11b: frame protocol vs Shortest-In-System baseline (ring(8), 2-hop, lambda = 0.8)",
        &["protocol", "verdict", "mean backlog", "mean latency (slots)"],
    );
    let setup = RoutingSetup::ring(8, 2).expect("valid ring");
    {
        let mut run = dynamic_run(GreedyPerLink::new(), 8, 8, 0.9).expect("valid config");
        let mut injector =
            injector_at_rate(setup.routes.clone(), &setup.model, 0.8).expect("feasible rate");
        let slots = frames * run.config.frame_len as u64;
        let (report, verdict) = run_and_classify(
            &mut run.protocol,
            &mut injector,
            &setup.feasibility,
            slots,
            cfg.seed,
            900,
        );
        baseline.push_row(vec![
            "frame (Section 4)".into(),
            verdict_cell(&verdict),
            fmt3(report.mean_backlog()),
            fmt3(report.latency_summary().mean),
        ]);
        let mut sis = SisProtocol::new(8);
        let mut injector =
            injector_at_rate(setup.routes.clone(), &setup.model, 0.8).expect("feasible rate");
        let (report, verdict) =
            run_and_classify(&mut sis, &mut injector, &setup.feasibility, slots, cfg.seed, 901);
        baseline.push_row(vec![
            "SIS (baseline)".into(),
            verdict_cell(&verdict),
            fmt3(report.mean_backlog()),
            fmt3(report.latency_summary().mean),
        ]);
    }
    vec![table, baseline]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sis_has_lower_latency_than_frame_protocol() {
        // Both stable at λ = 0.7, but SIS latency is O(d) while the frame
        // protocol pays O(d·T).
        let setup = RoutingSetup::ring(6, 2).unwrap();
        let mut run = dynamic_run(GreedyPerLink::new(), 6, 6, 0.9).unwrap();
        let t = run.config.frame_len;
        let slots = 50 * t as u64;
        let mut injector = injector_at_rate(setup.routes.clone(), &setup.model, 0.7).unwrap();
        let (frame_report, frame_verdict) = run_and_classify(
            &mut run.protocol,
            &mut injector,
            &setup.feasibility,
            slots,
            5,
            0,
        );
        let mut sis = SisProtocol::new(6);
        let mut injector = injector_at_rate(setup.routes.clone(), &setup.model, 0.7).unwrap();
        let (sis_report, sis_verdict) =
            run_and_classify(&mut sis, &mut injector, &setup.feasibility, slots, 5, 1);
        assert!(frame_verdict.is_stable() && sis_verdict.is_stable());
        let frame_latency = frame_report.latency_summary().mean;
        let sis_latency = sis_report.latency_summary().mean;
        assert!(
            sis_latency * 5.0 < frame_latency,
            "SIS ({sis_latency}) should be far below the frame protocol ({frame_latency})"
        );
    }

    #[test]
    fn grid_is_stable_below_one_unstable_above() {
        let setup = RoutingSetup::grid(3, 3);
        let probe = |lambda: f64, stream: u64| {
            let mut run = dynamic_run(
                GreedyPerLink::new(),
                setup.network.significant_size(),
                setup.network.num_links(),
                lambda.min(0.95),
            )
            .unwrap();
            let mut injector =
                injector_at_rate(setup.routes.clone(), &setup.model, lambda).unwrap();
            let slots = 50 * run.config.frame_len as u64;
            run_and_classify(
                &mut run.protocol,
                &mut injector,
                &setup.feasibility,
                slots,
                13,
                stream,
            )
            .1
        };
        assert!(probe(0.5, 0).is_stable());
        assert!(!probe(1.5, 1).is_stable());
    }
}
