//! **E11 — packet routing (Sections 2 and 7).** With `W = identity` the
//! framework reduces to store-and-forward packet routing, and the trivial
//! per-link algorithm yields stable protocols for every injection rate
//! `λ < 1` — the classical adversarial-queuing baseline.
//!
//! Three topologies (the `ring-routing`, `line-routing` and
//! `grid-routing` scenario presets) are driven across the threshold; the
//! table reports verdicts and latency.

use crate::ExpConfig;
use dps_scenario::{registry, Scenario, Sweep};
use dps_sim::table::{fmt3, Table};

/// Runs E11.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let presets: &[(&str, &str)] = &[
        ("ring-routing", "ring(8), 2-hop"),
        ("line-routing", "line(8), 3-hop"),
        ("grid-routing", "grid(3x3)"),
    ];
    let rates: &[f64] = &[0.5, 0.9, 1.2];
    let frames = if cfg.full { 150 } else { 50 };
    let mut table = Table::new(
        "E11: packet routing (W = identity, greedy per-link, f = 1): stable \
         for every lambda < 1, unstable beyond",
        &[
            "topology",
            "lambda",
            "verdict",
            "mean backlog",
            "mean latency",
        ],
    );
    for &(preset, name) in presets {
        let mut spec = registry::spec_for(preset).expect("registry preset");
        spec.run.seed = cfg.seed;
        spec.run.frames = frames;
        let report = Sweep::new(spec)
            .over_lambdas(rates)
            .run()
            .expect("routing sweep runs");
        for cell in &report.cells {
            let o = &cell.outcome;
            table.push_row(vec![
                name.to_string(),
                fmt3(o.lambda),
                o.verdict_cell(),
                fmt3(o.report.mean_backlog()),
                fmt3(o.report.latency_summary().mean),
            ]);
        }
    }

    // Baseline comparison: Shortest-In-System (Andrews et al., the paper's
    // related-work reference) against the frame protocol at the same rate.
    // Both are stable for λ < 1; SIS pays no frame overhead, so its latency
    // is O(d) instead of O(d·T) — the price of the frame protocol's
    // generality across interference models.
    let mut baseline = Table::new(
        "E11b: frame protocol vs Shortest-In-System baseline (ring(8), 2-hop, lambda = 0.8)",
        &[
            "protocol",
            "verdict",
            "mean backlog",
            "mean latency (slots)",
        ],
    );
    let mut frame_spec = registry::spec_for("ring-routing")
        .expect("registry preset")
        .with_lambda(0.8)
        .with_seed(cfg.seed);
    frame_spec.run.frames = frames;
    let frame = Scenario::from_spec(&frame_spec)
        .expect("valid spec")
        .run_stream(900)
        .expect("run completes");
    let mut sis_spec = registry::spec_for("routing-sis")
        .expect("registry preset")
        .with_lambda(0.8)
        .with_seed(cfg.seed);
    // SIS is frameless (T = 1); give it the frame protocol's exact horizon.
    sis_spec.run.frames = frame.slots;
    let sis = Scenario::from_spec(&sis_spec)
        .expect("valid spec")
        .run_stream(901)
        .expect("run completes");
    for (label, outcome) in [("frame (Section 4)", frame), ("SIS (baseline)", sis)] {
        baseline.push_row(vec![
            label.to_string(),
            outcome.verdict_cell(),
            fmt3(outcome.report.mean_backlog()),
            fmt3(outcome.report.latency_summary().mean),
        ]);
    }
    vec![table, baseline]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sis_has_lower_latency_than_frame_protocol() {
        // Both stable at λ = 0.7, but SIS latency is O(d) while the frame
        // protocol pays O(d·T).
        let mut frame_spec = registry::spec_for("ring-routing").unwrap().with_lambda(0.7);
        frame_spec.substrate = dps_scenario::SubstrateConfig::RingRouting { nodes: 6, hops: 2 };
        frame_spec.run.seed = 5;
        frame_spec.run.frames = 50;
        let frame = Scenario::from_spec(&frame_spec).unwrap().run().unwrap();

        let mut sis_spec = registry::spec_for("routing-sis").unwrap().with_lambda(0.7);
        sis_spec.substrate = dps_scenario::SubstrateConfig::RingRouting { nodes: 6, hops: 2 };
        sis_spec.run.seed = 5;
        sis_spec.run.frames = frame.slots; // frameless: one slot per frame
        let sis = Scenario::from_spec(&sis_spec)
            .unwrap()
            .run_stream(1)
            .unwrap();

        assert!(frame.verdict.is_stable() && sis.verdict.is_stable());
        let frame_latency = frame.report.latency_summary().mean;
        let sis_latency = sis.report.latency_summary().mean;
        assert!(
            sis_latency * 5.0 < frame_latency,
            "SIS ({sis_latency}) should be far below the frame protocol ({frame_latency})"
        );
    }

    #[test]
    fn grid_is_stable_below_one_unstable_above() {
        let mut spec = registry::spec_for("grid-routing").unwrap();
        spec.run.seed = 13;
        spec.run.frames = 50;
        let probe = |lambda: f64, stream: u64| {
            Scenario::from_spec(&spec.clone().with_lambda(lambda))
                .unwrap()
                .run_stream(stream)
                .unwrap()
                .verdict
        };
        assert!(probe(0.5, 0).is_stable());
        assert!(!probe(1.5, 1).is_stable());
    }
}
