//! **E9 — Theorem 19 (Section 7.2).** On conflict graphs, the algorithm
//! that transmits each pending packet with probability `1/4I` needs
//! `O(I·log n)` slots w.h.p., and conflict graphs with inductive
//! independence `ρ` admit `O(ρ·log m)`-competitive protocols.
//!
//! Workload: random unit links in the plane under the protocol model
//! (guard zone 0.5), whose conflict graphs have small constant `ρ` under
//! the shortest-first ordering. The static table scales the demand and
//! checks the normalized schedule length `slots/(I·ln n)` stays flat;
//! the greedy-coloring baseline shows the deterministic `≈ ρ·I`
//! comparison. A final dynamic probe confirms stability at half the
//! transformed algorithm's rate.

use crate::setup::{
    dynamic_run, injector_at_rate, run_and_classify, single_hop_routes, verdict_cell,
};
use crate::ExpConfig;
use dps_conflict::coloring::GreedyColoringScheduler;
use dps_conflict::feasibility::IndependentSetFeasibility;
use dps_conflict::inductive::{ordering_by_key, rho_for_ordering};
use dps_conflict::matrix::ConflictInterference;
use dps_conflict::models::{protocol_model, random_geo_links};
use dps_core::ids::{LinkId, PacketId};
use dps_core::rng::split_stream;
use dps_core::staticsched::uniform_rate::UniformRateScheduler;
use dps_core::staticsched::{requests_measure, run_static, Request, StaticScheduler};
use dps_core::transform::DenseTransform;
use dps_sim::table::{fmt3, Table};

fn duplicated_requests(m: usize, copies: usize) -> Vec<Request> {
    (0..m * copies)
        .map(|i| Request {
            packet: PacketId(i as u64),
            link: LinkId((i % m) as u32),
        })
        .collect()
}

/// Runs E9.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let m = if cfg.full { 96 } else { 48 };
    let mut geo_rng = split_stream(cfg.seed, 1234);
    let links = random_geo_links(m, (m as f64).sqrt() * 2.2, 1.0, &mut geo_rng);
    let graph = protocol_model(&links, 0.5);
    let pi = ordering_by_key(m, |l| links[l.index()].length());
    let rho = rho_for_ordering(&graph, &pi);
    let model = ConflictInterference::new(graph.clone(), &pi);
    let phy = IndependentSetFeasibility::new(graph.clone());

    let mut table = Table::new(
        format!(
            "E9: conflict-graph scheduling (protocol model, m = {m}, rho = {rho}); \
             Theorem 19 predicts uniform-rate slots/(I*ln n) flat"
        ),
        &[
            "copies",
            "n",
            "I",
            "unif slots",
            "unif/(I*ln n)",
            "coloring slots",
            "coloring/I",
        ],
    );
    let copy_counts: &[usize] = if cfg.full { &[1, 2, 4, 8] } else { &[1, 2, 4] };
    let uniform = UniformRateScheduler::new();
    let coloring = GreedyColoringScheduler::new(graph.clone(), &pi);
    for (row, &copies) in copy_counts.iter().enumerate() {
        let requests = duplicated_requests(m, copies);
        let n = requests.len();
        let i = requests_measure(&model, &requests);
        let mut rng = split_stream(cfg.seed, 2000 + row as u64);
        let budget = 16 * uniform.slots_needed(i, n) + 4000;
        let unif = run_static(&uniform, &requests, i, &phy, budget, &mut rng);
        assert!(unif.all_served(), "uniform-rate must finish");
        let color = run_static(&coloring, &requests, i, &phy, 16 * n + 64, &mut rng);
        assert!(color.all_served(), "coloring plan is deterministic");
        table.push_row(vec![
            copies.to_string(),
            n.to_string(),
            fmt3(i),
            unif.slots_used.to_string(),
            fmt3(unif.slots_used as f64 / (i * (n as f64).ln())),
            color.slots_used.to_string(),
            fmt3(color.slots_used as f64 / i),
        ]);
    }

    // Dynamic probe: the transformed uniform-rate protocol at half rate.
    let scheduler = DenseTransform::new(uniform, m).with_chi(8.0);
    let lambda = 0.5 / scheduler.f_of(m);
    let mut dyn_table = Table::new(
        "E9b: dynamic protocol on the conflict graph",
        &["lambda", "1/f(m)", "verdict", "mean latency"],
    );
    let mut run_ = dynamic_run(scheduler.clone(), m, m, lambda).expect("half rate configures");
    let mut injector =
        injector_at_rate(single_hop_routes(m), &model, lambda).expect("feasible rate");
    let frames = if cfg.full { 40 } else { 15 };
    let slots = frames * run_.config.frame_len as u64;
    let (report, verdict) =
        run_and_classify(&mut run_.protocol, &mut injector, &phy, slots, cfg.seed, 77);
    dyn_table.push_row(vec![
        fmt3(lambda),
        fmt3(1.0 / scheduler.f_of(m)),
        verdict_cell(&verdict),
        fmt3(report.latency_summary().mean),
    ]);
    vec![table, dyn_table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_rate_normalized_length_is_flat() {
        let m = 32;
        let mut geo_rng = split_stream(5, 1);
        let links = random_geo_links(m, 12.0, 1.0, &mut geo_rng);
        let graph = protocol_model(&links, 0.5);
        let pi = ordering_by_key(m, |l| links[l.index()].length());
        let model = ConflictInterference::new(graph.clone(), &pi);
        let phy = IndependentSetFeasibility::new(graph);
        let uniform = UniformRateScheduler::new();
        let mut normalized = Vec::new();
        for copies in [1usize, 4] {
            let requests = duplicated_requests(m, copies);
            let n = requests.len();
            let i = requests_measure(&model, &requests);
            let mut rng = split_stream(5, copies as u64);
            let budget = 32 * uniform.slots_needed(i, n) + 4000;
            let result = run_static(&uniform, &requests, i, &phy, budget, &mut rng);
            assert!(result.all_served());
            normalized.push(result.slots_used as f64 / (i * (n as f64).ln()));
        }
        let ratio = normalized[1] / normalized[0];
        assert!(
            (0.2..4.0).contains(&ratio),
            "normalized lengths should stay within a constant band: {normalized:?}"
        );
    }

    #[test]
    fn coloring_uses_few_colors_on_sparse_conflicts() {
        let m = 16;
        let mut geo_rng = split_stream(9, 2);
        // Spread far apart: conflict-free, so coloring equals congestion.
        let links = random_geo_links(m, 400.0, 1.0, &mut geo_rng);
        let graph = protocol_model(&links, 0.5);
        let pi = ordering_by_key(m, |l| links[l.index()].length());
        let coloring = GreedyColoringScheduler::new(graph.clone(), &pi);
        let requests = duplicated_requests(m, 3);
        let phy = IndependentSetFeasibility::new(graph);
        let mut rng = split_stream(9, 3);
        let result = run_static(&coloring, &requests, 3.0, &phy, 64, &mut rng);
        assert!(result.all_served());
        assert!(result.slots_used <= 6, "used {}", result.slots_used);
    }
}
