//! **E8 — Corollaries 16 and 18 (Section 7.1).** On the multiple-access
//! channel the transformed symmetric protocol is stable for rates up to
//! `≈ 1/e` (exactly `1/(1+δ)e` for our Algorithm 2 instance), while the
//! asymmetric Round-Robin-Withholding protocol is stable for every
//! `λ < 1` — the factor-`e` separation between anonymous stations and
//! stations with identifiers.
//!
//! The table sweeps injection rates across both thresholds and reports the
//! stability verdict of each protocol.

use crate::setup::{dynamic_run, injector_at_rate, run_and_classify, single_hop_routes, verdict_cell};
use crate::ExpConfig;
use dps_core::feasibility::SingleChannelFeasibility;
use dps_core::interference::CompleteInterference;
use dps_core::staticsched::StaticScheduler;
use dps_mac::algorithm2::SymmetricMacScheduler;
use dps_mac::round_robin::RoundRobinWithholding;
use dps_sim::table::{fmt3, Table};

fn probe<S: StaticScheduler + Clone + 'static>(
    scheduler: S,
    m: usize,
    lambda: f64,
    max_cfg_fraction: f64,
    frames: u64,
    seed: u64,
    stream: u64,
) -> (String, f64) {
    let lambda_max = 1.0 / scheduler.f_of(m);
    // Frame length grows as Θ(overhead/ε²); schedulers with a large
    // additive term (Algorithm 2's tail) cap the provisioning rate lower
    // so near-threshold rows stay cheap to simulate, while the low-overhead
    // Round-Robin-Withholding can be provisioned at 95% of capacity.
    let lambda_cfg = lambda.min(max_cfg_fraction * lambda_max);
    let mut run = dynamic_run(scheduler, m, m, lambda_cfg).expect("capped rate configures");
    let model = CompleteInterference::new(m);
    let mut injector =
        injector_at_rate(single_hop_routes(m), &model, lambda).expect("feasible rate");
    let phy = SingleChannelFeasibility::new();
    let slots = frames * run.config.frame_len as u64;
    let (report, verdict) =
        run_and_classify(&mut run.protocol, &mut injector, &phy, slots, seed, stream);
    (verdict_cell(&verdict), report.latency_summary().mean)
}

/// Runs E8.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let m = 8;
    let delta = 0.5;
    let symmetric = SymmetricMacScheduler::new(delta, 1.0);
    let asymmetric = RoundRobinWithholding::new(m);
    let sym_max = 1.0 / symmetric.f_of(m);
    let frames = if cfg.full { 120 } else { 40 };

    let mut table = Table::new(
        format!(
            "E8: MAC stability thresholds (m = {m} stations); symmetric threshold \
             1/(1+delta)e = {sym_max:.3} (Cor 16, -> 1/e as delta -> 0), \
             asymmetric threshold 1 (Cor 18)"
        ),
        &["lambda", "lambda/(1/e)", "symmetric verdict", "asymmetric verdict"],
    );
    let inv_e = 1.0 / std::f64::consts::E;
    let rates: &[f64] = &[
        0.5 * sym_max,
        0.7 * sym_max,
        1.3 * sym_max,
        inv_e,
        0.6,
        0.9,
        1.1,
    ];
    // Algorithm 2's additive tail makes near-threshold frames long
    // (T = Θ(overhead/ε²)); provisioning at 70% of its capacity keeps the
    // sweep fast while the stable region is still demonstrated.
    let sym_cap = if cfg.full { 0.85 } else { 0.7 };
    for (i, &lambda) in rates.iter().enumerate() {
        let (sym_verdict, _) =
            probe(symmetric, m, lambda, sym_cap, frames, cfg.seed, i as u64);
        let (asym_verdict, _) =
            probe(asymmetric, m, lambda, 0.95, frames, cfg.seed, 100 + i as u64);
        table.push_row(vec![
            fmt3(lambda),
            fmt3(lambda / inv_e),
            sym_verdict,
            asym_verdict,
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_threshold_separates_from_asymmetric() {
        let m = 6;
        // Far below 1/e: both stable.
        let (sym, _) = probe(SymmetricMacScheduler::new(0.5, 1.0), m, 0.1, 0.8, 40, 3, 0);
        let (asym, _) = probe(RoundRobinWithholding::new(m), m, 0.1, 0.95, 40, 3, 1);
        assert_eq!(sym, "stable");
        assert_eq!(asym, "stable");
        // Between the thresholds (0.6 > 1/(1+δ)e ≈ 0.245, < 1): only the
        // asymmetric protocol survives.
        let (sym, _) = probe(SymmetricMacScheduler::new(0.5, 1.0), m, 0.6, 0.7, 40, 3, 2);
        let (asym, _) = probe(RoundRobinWithholding::new(m), m, 0.6, 0.95, 40, 3, 3);
        assert!(sym.contains("UNSTABLE"), "symmetric at 0.6: {sym}");
        assert_eq!(asym, "stable", "asymmetric at 0.6");
    }
}
