//! **E8 — Corollaries 16 and 18 (Section 7.1).** On the multiple-access
//! channel the transformed symmetric protocol is stable for rates up to
//! `≈ 1/e` (exactly `1/(1+δ)e` for our Algorithm 2 instance), while the
//! asymmetric Round-Robin-Withholding protocol is stable for every
//! `λ < 1` — the factor-`e` separation between anonymous stations and
//! stations with identifiers.
//!
//! Both protocols are the `mac-symmetric` / `mac-roundrobin` scenario
//! presets; the table sweeps absolute injection rates across both
//! thresholds and reports the stability verdict of each.

use crate::ExpConfig;
use dps_scenario::{registry, ProtocolConfig, Scenario, ScenarioSpec, SubstrateConfig};
use dps_sim::table::{fmt3, Table};

fn mac_spec(
    protocol: ProtocolConfig,
    m: usize,
    lambda: f64,
    provision_cap: f64,
    frames: u64,
    seed: u64,
) -> ScenarioSpec {
    let mut spec = registry::spec_for("mac-symmetric").expect("registry preset");
    spec.substrate = SubstrateConfig::Mac { stations: m };
    spec.protocol = protocol;
    // Absolute rates here: the sweep crosses both protocols' thresholds.
    spec.injection.relative = false;
    spec.injection.lambda = lambda;
    spec.run.frames = frames;
    spec.run.seed = seed;
    spec.run.provision_cap = provision_cap;
    spec
}

fn probe(
    protocol: ProtocolConfig,
    m: usize,
    lambda: f64,
    max_cfg_fraction: f64,
    frames: u64,
    seed: u64,
    stream: u64,
) -> (String, f64) {
    // Frame length grows as Θ(overhead/ε²); schedulers with a large
    // additive term (Algorithm 2's tail) cap the provisioning rate lower
    // so near-threshold rows stay cheap to simulate, while the low-overhead
    // Round-Robin-Withholding can be provisioned at 95% of capacity.
    let spec = mac_spec(protocol, m, lambda, max_cfg_fraction, frames, seed);
    let outcome = Scenario::from_spec(&spec)
        .expect("valid spec")
        .run_stream(stream)
        .expect("run completes");
    (
        outcome.verdict_cell(),
        outcome.report.latency_summary().mean,
    )
}

/// Runs E8.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let m = 8;
    let delta = 0.5;
    let symmetric = ProtocolConfig::FrameMacSymmetric { delta };
    let asymmetric = ProtocolConfig::FrameMacRoundRobin;
    // The threshold comes from the scheduler itself, not a re-derived
    // formula, so the table stays truthful if f(m) is ever adjusted.
    let sym_max = {
        use dps_core::staticsched::StaticScheduler;
        1.0 / dps_mac::algorithm2::SymmetricMacScheduler::new(delta, 1.0).f_of(m)
    };
    let frames = if cfg.full { 120 } else { 40 };

    let mut table = Table::new(
        format!(
            "E8: MAC stability thresholds (m = {m} stations); symmetric threshold \
             1/(1+delta)e = {sym_max:.3} (Cor 16, -> 1/e as delta -> 0), \
             asymmetric threshold 1 (Cor 18)"
        ),
        &[
            "lambda",
            "lambda/(1/e)",
            "symmetric verdict",
            "asymmetric verdict",
        ],
    );
    let inv_e = 1.0 / std::f64::consts::E;
    let rates: &[f64] = &[
        0.5 * sym_max,
        0.7 * sym_max,
        1.3 * sym_max,
        inv_e,
        0.6,
        0.9,
        1.1,
    ];
    // Algorithm 2's additive tail makes near-threshold frames long
    // (T = Θ(overhead/ε²)); provisioning at 70% of its capacity keeps the
    // sweep fast while the stable region is still demonstrated.
    let sym_cap = if cfg.full { 0.85 } else { 0.7 };
    for (i, &lambda) in rates.iter().enumerate() {
        let (sym_verdict, _) = probe(
            symmetric.clone(),
            m,
            lambda,
            sym_cap,
            frames,
            cfg.seed,
            i as u64,
        );
        let (asym_verdict, _) = probe(
            asymmetric.clone(),
            m,
            lambda,
            0.95,
            frames,
            cfg.seed,
            100 + i as u64,
        );
        table.push_row(vec![
            fmt3(lambda),
            fmt3(lambda / inv_e),
            sym_verdict,
            asym_verdict,
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_threshold_separates_from_asymmetric() {
        let m = 6;
        let sym = || ProtocolConfig::FrameMacSymmetric { delta: 0.5 };
        // Far below 1/e: both stable.
        let (s, _) = probe(sym(), m, 0.1, 0.8, 40, 3, 0);
        let (a, _) = probe(ProtocolConfig::FrameMacRoundRobin, m, 0.1, 0.95, 40, 3, 1);
        assert_eq!(s, "stable");
        assert_eq!(a, "stable");
        // Between the thresholds (0.6 > 1/(1+δ)e ≈ 0.245, < 1): only the
        // asymmetric protocol survives.
        let (s, _) = probe(sym(), m, 0.6, 0.7, 40, 3, 2);
        let (a, _) = probe(ProtocolConfig::FrameMacRoundRobin, m, 0.6, 0.95, 40, 3, 3);
        assert!(s.contains("UNSTABLE"), "symmetric at 0.6: {s}");
        assert_eq!(a, "stable", "asymmetric at 0.6");
    }
}
