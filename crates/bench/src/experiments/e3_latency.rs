//! **E3 — Theorem 8 (Section 4.2).** The expected latency of a packet
//! with route length `d` is `O(d·T)`: one frame per hop plus the waiting
//! frame.
//!
//! Workload: a directed line of 8 links; each route length
//! `d ∈ {1, 2, 4, 8}` gets its own generator starting at link 0. The table
//! reports the mean latency per `d` in slots and normalized by `d·T` —
//! the theorem predicts the normalized column is a constant (≈ 1–3,
//! accounting for the injection-to-frame-start wait).

use crate::setup::{dynamic_run, run_and_classify};
use crate::ExpConfig;
use dps_core::ids::LinkId;
use dps_core::injection::stochastic::{GeneratorSpec, StochasticInjector};
use dps_core::path::RoutePath;
use dps_core::staticsched::greedy::GreedyPerLink;
use dps_routing::workloads::RoutingSetup;
use dps_sim::table::{fmt1, fmt3, Table};

/// Runs E3.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let depths: &[usize] = &[1, 2, 4, 8];
    let num_links = 8;
    let setup = RoutingSetup::line(num_links, 1).expect("valid line");
    let per_route_rate = 0.08;

    // One generator per depth, all routes starting at link 0 so every
    // packet of depth d crosses exactly d links.
    let generators: Vec<GeneratorSpec> = depths
        .iter()
        .map(|&d| {
            let route = RoutePath::new(&setup.network, (0..d as u32).map(LinkId).collect())
                .expect("prefix of the line")
                .shared();
            GeneratorSpec::bernoulli(route, per_route_rate).expect("valid probability")
        })
        .collect();
    let mut injector = StochasticInjector::new(generators);

    let mut run = dynamic_run(
        GreedyPerLink::new(),
        setup.network.significant_size(),
        setup.network.num_links(),
        0.9,
    )
    .expect("valid config");
    let t = run.config.frame_len as f64;
    let frames = if cfg.full { 400 } else { 120 };
    let slots = frames * run.config.frame_len as u64;
    let (report, verdict) = run_and_classify(
        &mut run.protocol,
        &mut injector,
        &setup.feasibility,
        slots,
        cfg.seed,
        0,
    );
    assert!(verdict.is_stable(), "latency experiment must run stable");

    let mut table = Table::new(
        format!(
            "E3: latency vs path length d (line, m = 8, T = {} slots); Theorem 8 \
             predicts mean latency = O(d*T), i.e. a flat last column",
            run.config.frame_len
        ),
        &[
            "d",
            "delivered",
            "mean latency",
            "max latency",
            "latency/(d*T)",
        ],
    );
    for &d in depths {
        let summary = report.latency_summary_for_path_len(d);
        table.push_row(vec![
            d.to_string(),
            summary.count.to_string(),
            fmt1(summary.mean),
            fmt1(summary.max),
            fmt3(summary.mean / (d as f64 * t)),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grows_linearly_with_depth() {
        let cfg = ExpConfig::default();
        let tables = run(&cfg);
        assert_eq!(tables[0].num_rows(), 4);
        // Re-run the core computation to assert the linearity numerically.
        let setup = RoutingSetup::line(8, 1).unwrap();
        let mut run_ = dynamic_run(GreedyPerLink::new(), 8, 8, 0.9).unwrap();
        let t = run_.config.frame_len as f64;
        let routes = [1usize, 4]
            .iter()
            .map(|&d| {
                GeneratorSpec::bernoulli(
                    RoutePath::new(&setup.network, (0..d as u32).map(LinkId).collect())
                        .unwrap()
                        .shared(),
                    0.1,
                )
                .unwrap()
            })
            .collect();
        let mut injector = StochasticInjector::new(routes);
        let slots = 120 * run_.config.frame_len as u64;
        let (report, _) = run_and_classify(
            &mut run_.protocol,
            &mut injector,
            &setup.feasibility,
            slots,
            3,
            0,
        );
        let l1 = report.latency_summary_for_path_len(1).mean;
        let l4 = report.latency_summary_for_path_len(4).mean;
        assert!(l1 > 0.0 && l4 > 0.0);
        // A packet advances one hop per frame, so l_d ≈ (d − 1 + wait)·T
        // with wait ≈ 0.5–1.5 frames: the *difference* l4 − l1 is the
        // clean estimate of 3 frames.
        let extra_frames = (l4 - l1) / t;
        assert!(
            (2.0..4.5).contains(&extra_frames),
            "3 extra hops should cost ≈ 3 frames, got {extra_frames} (l1 = {l1}, l4 = {l4})"
        );
        // And each is a small multiple of d·T.
        assert!(l4 < 4.0 * 4.0 * t);
    }
}
