//! CLI regenerating the paper's quantitative claims.
//!
//! ```text
//! experiments [IDS…] [--full] [--seed N] [--csv DIR] [--json DIR] [--list]
//! ```
//!
//! With no ids, runs every experiment (E1–E11). `--full` switches to
//! paper-scale parameters; `--csv DIR` additionally writes each table as
//! a CSV file, `--json DIR` as machine-readable JSON.

use dps_bench::{all_experiments, ExpConfig};
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let mut cfg = ExpConfig::default();
    let mut ids: Vec<String> = Vec::new();
    let mut csv_dir: Option<PathBuf> = None;
    let mut json_dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => cfg.full = true,
            "--seed" => {
                let value = args.next().unwrap_or_else(|| usage("--seed needs a value"));
                cfg.seed = value
                    .parse()
                    .unwrap_or_else(|_| usage("--seed needs an integer"));
            }
            "--csv" => {
                let value = args
                    .next()
                    .unwrap_or_else(|| usage("--csv needs a directory"));
                csv_dir = Some(PathBuf::from(value));
            }
            "--json" => {
                let value = args
                    .next()
                    .unwrap_or_else(|| usage("--json needs a directory"));
                json_dir = Some(PathBuf::from(value));
            }
            "--list" => {
                for exp in all_experiments() {
                    println!("{:4}  {}", exp.id, exp.claim);
                }
                return;
            }
            "--help" | "-h" => usage(""),
            id if id.starts_with('-') => usage(&format!("unknown flag {id}")),
            id => ids.push(id.to_ascii_lowercase()),
        }
    }

    let experiments = all_experiments();
    let selected: Vec<_> = if ids.is_empty() {
        experiments.iter().collect()
    } else {
        let known: Vec<&str> = experiments.iter().map(|e| e.id).collect();
        for id in &ids {
            if !known.contains(&id.as_str()) {
                usage(&format!(
                    "unknown experiment {id}; known: {}",
                    known.join(", ")
                ));
            }
        }
        experiments
            .iter()
            .filter(|e| ids.contains(&e.id.to_string()))
            .collect()
    };

    for dir in [&csv_dir, &json_dir].into_iter().flatten() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }

    println!(
        "# Kesselheim (PODC 2012) experiment suite — {} mode, seed {}\n",
        if cfg.full { "full" } else { "fast" },
        cfg.seed
    );
    for exp in selected {
        println!("=== {} — {}", exp.id.to_uppercase(), exp.claim);
        let start = Instant::now();
        let tables = (exp.run)(&cfg);
        for (i, table) in tables.iter().enumerate() {
            println!("{}", table.render());
            if let Some(dir) = &csv_dir {
                let path = dir.join(format!("{}_{}.csv", exp.id, i));
                std::fs::write(&path, table.to_csv()).expect("write csv");
            }
            if let Some(dir) = &json_dir {
                let path = dir.join(format!("{}_{}.json", exp.id, i));
                std::fs::write(&path, table.to_json()).expect("write json");
            }
        }
        println!("({} finished in {:.1?})\n", exp.id, start.elapsed());
    }
}

fn usage(message: &str) -> ! {
    if !message.is_empty() {
        eprintln!("error: {message}");
    }
    eprintln!("usage: experiments [IDS…] [--full] [--seed N] [--csv DIR] [--json DIR] [--list]");
    std::process::exit(if message.is_empty() { 0 } else { 2 });
}
