//! Shared experiment plumbing: assembling injectors, frame configurations
//! and dynamic protocols, and running them to a report.

use dps_core::dynamic::{DynamicProtocol, FrameConfig};
use dps_core::error::ModelError;
use dps_core::feasibility::Feasibility;
use dps_core::ids::LinkId;
use dps_core::injection::stochastic::{uniform_generators, StochasticInjector};
use dps_core::injection::Injector;
use dps_core::interference::InterferenceModel;
use dps_core::path::RoutePath;
use dps_core::protocol::Protocol;
use dps_core::staticsched::StaticScheduler;
use dps_sim::runner::{run_simulation, SimulationConfig, SimulationReport};
use dps_sim::stability::{classify_stability, StabilityVerdict};
use std::sync::Arc;

/// One single-hop route per link.
pub fn single_hop_routes(num_links: usize) -> Vec<Arc<RoutePath>> {
    (0..num_links as u32)
        .map(|l| RoutePath::single_hop(LinkId(l)).shared())
        .collect()
}

/// Builds a stochastic injector over `routes` whose rate under `model` is
/// exactly `lambda`.
///
/// # Errors
///
/// Propagates [`ModelError`] if the target rate is infeasible for the
/// per-generator probability constraint.
pub fn injector_at_rate<M: InterferenceModel + ?Sized>(
    routes: Vec<Arc<RoutePath>>,
    model: &M,
    lambda: f64,
) -> Result<StochasticInjector, ModelError> {
    uniform_generators(routes, 0.01)?.scaled_to_rate(model, lambda)
}

/// Everything a dynamic-protocol run needs, pre-assembled.
pub struct DynamicRun<S: StaticScheduler + Clone> {
    /// The protocol under test.
    pub protocol: DynamicProtocol<S>,
    /// The frame configuration it was built with.
    pub config: FrameConfig,
}

/// Builds a tuned frame configuration and protocol for `scheduler`.
///
/// `lambda_config` is the rate the protocol is *provisioned* for; the
/// injector may exceed it to probe overload behaviour.
///
/// # Errors
///
/// Propagates [`ModelError`] if `lambda_config ≥ 1/f(m)`.
pub fn dynamic_run<S: StaticScheduler + Clone>(
    scheduler: S,
    m: usize,
    num_links: usize,
    lambda_config: f64,
) -> Result<DynamicRun<S>, ModelError> {
    let config = FrameConfig::tuned(&scheduler, m, lambda_config)?;
    let protocol = DynamicProtocol::new(scheduler, config.clone(), num_links);
    Ok(DynamicRun { protocol, config })
}

/// Runs any protocol with any injector and classifies stability.
pub fn run_and_classify<P, I>(
    protocol: &mut P,
    injector: &mut I,
    phy: &dyn Feasibility,
    slots: u64,
    seed: u64,
    stream: u64,
) -> (SimulationReport, StabilityVerdict)
where
    P: Protocol + ?Sized,
    I: Injector + ?Sized,
{
    let report = run_simulation(
        protocol,
        injector,
        phy,
        SimulationConfig::new(slots, seed).with_stream(stream),
    );
    let verdict = classify_stability(&report, 0.05);
    (report, verdict)
}

/// Wraps an injector and records its trace into a
/// [`dps_core::injection::adversarial::WindowValidator`], so experiments
/// can report the *effective* `(w, λ)` rate an adversary achieved.
pub struct ValidatingInjector<I, M: InterferenceModel> {
    inner: I,
    validator: dps_core::injection::adversarial::WindowValidator<M>,
}

impl<I: Injector, M: InterferenceModel> ValidatingInjector<I, M> {
    /// Wraps `inner`, validating under `model` with window length `w`.
    pub fn new(inner: I, model: M, w: usize) -> Self {
        ValidatingInjector {
            inner,
            validator: dps_core::injection::adversarial::WindowValidator::new(model, w),
        }
    }

    /// The recorded validator.
    pub fn validator(&self) -> &dps_core::injection::adversarial::WindowValidator<M> {
        &self.validator
    }
}

impl<I: Injector, M: InterferenceModel> Injector for ValidatingInjector<I, M> {
    fn inject(
        &mut self,
        slot: u64,
        rng: &mut dyn rand::RngCore,
    ) -> Vec<Arc<RoutePath>> {
        let injected = self.inner.inject(slot, rng);
        self.validator
            .record_slot(injected.iter().map(|p| p.as_ref()));
        injected
    }
}

/// Renders a verdict as a table cell.
pub fn verdict_cell(verdict: &StabilityVerdict) -> String {
    match verdict {
        StabilityVerdict::Stable { .. } => "stable".to_string(),
        StabilityVerdict::Unstable { slope } => format!("UNSTABLE ({slope:+.3}/slot)"),
        StabilityVerdict::Inconclusive => "inconclusive".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_core::feasibility::PerLinkFeasibility;
    use dps_core::interference::IdentityInterference;
    use dps_core::staticsched::greedy::GreedyPerLink;

    #[test]
    fn injector_hits_requested_rate() {
        let model = IdentityInterference::new(4);
        let inj = injector_at_rate(single_hop_routes(4), &model, 0.7).unwrap();
        assert!((inj.rate(&model) - 0.7).abs() < 1e-9);
    }

    #[test]
    fn dynamic_run_builds_and_classifies() {
        let model = IdentityInterference::new(2);
        let mut run = dynamic_run(GreedyPerLink::new(), 2, 2, 0.9).unwrap();
        let mut inj = injector_at_rate(single_hop_routes(2), &model, 0.5).unwrap();
        let phy = PerLinkFeasibility::new(2);
        let slots = 40 * run.config.frame_len as u64;
        let (report, verdict) =
            run_and_classify(&mut run.protocol, &mut inj, &phy, slots, 1, 0);
        assert!(report.injected > 0);
        assert!(verdict.is_stable(), "{verdict:?}");
    }

    #[test]
    fn verdict_cells_are_distinct() {
        assert_eq!(
            verdict_cell(&StabilityVerdict::Stable { slope: 0.0 }),
            "stable"
        );
        assert!(verdict_cell(&StabilityVerdict::Unstable { slope: 0.5 }).contains("UNSTABLE"));
    }
}
