//! Thin shims over [`dps_scenario`] for the experiments that still wire
//! components by hand (E1, E3, E4, E6, E7, E9, E10 drive protocol
//! internals no declarative spec exposes).
//!
//! New workloads should not use this module: describe a
//! [`dps_scenario::ScenarioSpec`] (or implement the factory traits) and
//! run it — see E2/E5/E8/E11 for the pattern.

use dps_core::dynamic::{DynamicProtocol, FrameConfig};
use dps_core::error::ModelError;
use dps_core::feasibility::Feasibility;
use dps_core::injection::stochastic::StochasticInjector;
use dps_core::injection::Injector;
use dps_core::interference::InterferenceModel;
use dps_core::path::RoutePath;
use dps_core::protocol::Protocol;
use dps_core::staticsched::StaticScheduler;
use dps_sim::runner::{run_simulation, SimulationConfig, SimulationReport};
use dps_sim::stability::{classify_stability, StabilityVerdict};
use std::sync::Arc;

pub use dps_scenario::injector::ValidatingInjector;
pub use dps_scenario::scenario::verdict_cell;
pub use dps_scenario::substrate::single_hop_routes;

/// Builds a stochastic injector over `routes` whose rate under `model` is
/// exactly `lambda`. Delegates to
/// [`dps_scenario::injector::stochastic_at_rate`].
///
/// # Errors
///
/// Propagates [`ModelError`] if the target rate is infeasible for the
/// per-generator probability constraint.
pub fn injector_at_rate<M: InterferenceModel + ?Sized>(
    routes: Vec<Arc<RoutePath>>,
    model: &M,
    lambda: f64,
) -> Result<StochasticInjector, ModelError> {
    dps_scenario::injector::stochastic_at_rate(model, routes, lambda).map_err(|e| match e {
        dps_scenario::ScenarioError::Model(e) => e,
        other => ModelError::InvalidConfig(other.to_string()),
    })
}

/// Everything a dynamic-protocol run needs, pre-assembled.
pub struct DynamicRun<S: StaticScheduler + Clone> {
    /// The protocol under test.
    pub protocol: DynamicProtocol<S>,
    /// The frame configuration it was built with.
    pub config: FrameConfig,
}

/// Builds a tuned frame configuration and protocol for `scheduler`.
///
/// `lambda_config` is the rate the protocol is *provisioned* for; the
/// injector may exceed it to probe overload behaviour.
///
/// # Errors
///
/// Propagates [`ModelError`] if `lambda_config ≥ 1/f(m)`.
pub fn dynamic_run<S: StaticScheduler + Clone>(
    scheduler: S,
    m: usize,
    num_links: usize,
    lambda_config: f64,
) -> Result<DynamicRun<S>, ModelError> {
    let config = FrameConfig::tuned(&scheduler, m, lambda_config)?;
    let protocol = DynamicProtocol::new(scheduler, config.clone(), num_links);
    Ok(DynamicRun { protocol, config })
}

/// Runs any protocol with any injector and classifies stability.
pub fn run_and_classify<P, I>(
    protocol: &mut P,
    injector: &mut I,
    phy: &dyn Feasibility,
    slots: u64,
    seed: u64,
    stream: u64,
) -> (SimulationReport, StabilityVerdict)
where
    P: Protocol + ?Sized,
    I: Injector + ?Sized,
{
    let report = run_simulation(
        protocol,
        injector,
        phy,
        SimulationConfig::new(slots, seed).with_stream(stream),
    );
    let verdict = classify_stability(&report, 0.05);
    (report, verdict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_core::feasibility::PerLinkFeasibility;
    use dps_core::interference::IdentityInterference;
    use dps_core::staticsched::greedy::GreedyPerLink;

    #[test]
    fn injector_hits_requested_rate() {
        let model = IdentityInterference::new(4);
        let inj = injector_at_rate(single_hop_routes(4), &model, 0.7).unwrap();
        assert!((inj.rate(&model) - 0.7).abs() < 1e-9);
    }

    #[test]
    fn dynamic_run_builds_and_classifies() {
        let model = IdentityInterference::new(2);
        let mut run = dynamic_run(GreedyPerLink::new(), 2, 2, 0.9).unwrap();
        let mut inj = injector_at_rate(single_hop_routes(2), &model, 0.5).unwrap();
        let phy = PerLinkFeasibility::new(2);
        let slots = 40 * run.config.frame_len as u64;
        let (report, verdict) = run_and_classify(&mut run.protocol, &mut inj, &phy, slots, 1, 0);
        assert!(report.injected > 0);
        assert!(verdict.is_stable(), "{verdict:?}");
    }

    #[test]
    fn verdict_cells_are_distinct() {
        assert_eq!(
            verdict_cell(&StabilityVerdict::Stable { slope: 0.0 }),
            "stable"
        );
        assert!(verdict_cell(&StabilityVerdict::Unstable { slope: 0.5 }).contains("UNSTABLE"));
    }
}
