//! Experiment harness for the Kesselheim (PODC 2012) reproduction.
//!
//! The paper is a theory paper: its "evaluation" is a set of theorems,
//! corollaries and one figure. Each experiment module here regenerates the
//! quantitative content of one of them as a simulation table; the mapping
//! is documented in DESIGN.md §4 and the results in EXPERIMENTS.md.
//!
//! | Id  | Paper claim | Module |
//! |-----|-------------|--------|
//! | E1  | Theorem 1 — Algorithm 1 makes schedule length linear in `I` | [`experiments::e1_transform`] |
//! | E2  | Theorem 3 — bounded queues for `λ < 1/f(m)` | [`experiments::e2_stability`] |
//! | E3  | Theorem 8 — latency `O(d·T)` | [`experiments::e3_latency`] |
//! | E4  | §4.1 — geometric potential tail | [`experiments::e4_potential`] |
//! | E5  | Theorem 11 — adversarial stability | [`experiments::e5_adversarial`] |
//! | E6  | Corollaries 12/13/14 — SINR competitive ratios | [`experiments::e6_sinr`] |
//! | E7  | Lemma 15 — Algorithm 2 schedule length | [`experiments::e7_mac_static`] |
//! | E8  | Corollaries 16/18 — MAC stability thresholds | [`experiments::e8_mac_dynamic`] |
//! | E9  | Theorem 19 — conflict-graph scheduling | [`experiments::e9_conflict`] |
//! | E10 | Theorem 20 + Figure 1 — global vs local clocks | [`experiments::e10_lower_bound`] |
//! | E11 | §2/§7 — packet routing stable for `λ < 1` | [`experiments::e11_routing`] |
//!
//! Run everything with `cargo run -p dps-bench --bin experiments --release`
//! (add experiment ids to select, `--full` for paper-scale parameters).

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod setup;

use dps_sim::table::Table;

/// Global experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct ExpConfig {
    /// Full mode uses paper-scale parameters (slower, tighter bands);
    /// fast mode keeps every experiment under a few seconds.
    pub full: bool,
    /// Root seed for all random streams.
    pub seed: u64,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            full: false,
            seed: 20120616, // PODC 2012 main-conference date
        }
    }
}

/// An experiment: id, one-line description, and a runner producing tables.
pub struct Experiment {
    /// Short id (`e1` … `e11`).
    pub id: &'static str,
    /// The paper claim the experiment regenerates.
    pub claim: &'static str,
    /// Runs the experiment.
    pub run: fn(&ExpConfig) -> Vec<Table>,
}

/// The registry of all experiments in order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "e1",
            claim: "Theorem 1: Algorithm 1 makes schedule length linear in I",
            run: experiments::e1_transform::run,
        },
        Experiment {
            id: "e2",
            claim: "Theorem 3: bounded queues for lambda < 1/f(m)",
            run: experiments::e2_stability::run,
        },
        Experiment {
            id: "e3",
            claim: "Theorem 8: expected latency O(d*T)",
            run: experiments::e3_latency::run,
        },
        Experiment {
            id: "e4",
            claim: "Section 4.1: geometric tail of the potential",
            run: experiments::e4_potential::run,
        },
        Experiment {
            id: "e5",
            claim: "Theorem 11: stability under (w,lambda)-bounded adversaries",
            run: experiments::e5_adversarial::run,
        },
        Experiment {
            id: "e6",
            claim: "Corollaries 12/13/14: SINR competitive ratios vs network size",
            run: experiments::e6_sinr::run,
        },
        Experiment {
            id: "e7",
            claim: "Lemma 15: Algorithm 2 sends n packets in ~(1+delta)e*n slots",
            run: experiments::e7_mac_static::run,
        },
        Experiment {
            id: "e8",
            claim: "Corollaries 16/18: MAC stable iff lambda < 1/e (symmetric) resp. < 1 (ids)",
            run: experiments::e8_mac_dynamic::run,
        },
        Experiment {
            id: "e9",
            claim: "Theorem 19: O(I log n) scheduling on conflict graphs",
            run: experiments::e9_conflict::run,
        },
        Experiment {
            id: "e10",
            claim: "Theorem 20 / Figure 1: global clock beats local clocks on the star",
            run: experiments::e10_lower_bound::run,
        },
        Experiment {
            id: "e11",
            claim: "Packet routing (W = I): stable for every lambda < 1",
            run: experiments::e11_routing::run,
        },
    ]
}
