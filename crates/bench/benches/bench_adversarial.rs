//! E5 benchmark: adversary generation and window validation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dps_bench::setup::single_hop_routes;
use dps_core::injection::adversarial::{BurstyAdversary, SmoothAdversary, WindowValidator};
use dps_core::injection::Injector;
use dps_core::interference::IdentityInterference;
use dps_core::rng::split_stream;

fn bench_adversaries(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_adversaries");
    group.sample_size(20);
    let slots = 5_000u64;
    group.throughput(Throughput::Elements(slots));
    for &m in &[8usize, 64] {
        group.bench_with_input(BenchmarkId::new("smooth", m), &m, |b, _| {
            b.iter(|| {
                let mut adv = SmoothAdversary::new(
                    IdentityInterference::new(m),
                    single_hop_routes(m),
                    64,
                    0.8,
                );
                let mut rng = split_stream(1, 0);
                let mut total = 0usize;
                for slot in 0..slots {
                    total += adv.inject(slot, &mut rng).len();
                }
                total
            })
        });
        group.bench_with_input(BenchmarkId::new("bursty_validated", m), &m, |b, _| {
            b.iter(|| {
                let mut adv = BurstyAdversary::new(
                    IdentityInterference::new(m),
                    single_hop_routes(m),
                    64,
                    0.8,
                );
                let mut validator = WindowValidator::new(IdentityInterference::new(m), 64);
                let mut rng = split_stream(2, 0);
                for slot in 0..slots {
                    let injected = adv.inject(slot, &mut rng);
                    validator.record_slot(injected.iter().map(|p| p.as_ref()));
                }
                validator.max_window_measure()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_adversaries);
criterion_main!(benches);
