//! Injection-engine benchmark: the O(m)-per-slot naive sampler vs the
//! batch engine (geometric skip-ahead calendar / dense binomial batch).
//!
//! PR 3 measured that two-stage sweep cells over the m = 1024 SINR
//! substrate are floor-limited by the stochastic injector: ~15 µs per
//! *idle* slot spent walking all `m` Bernoulli generators. The batch
//! engine samples each generator's next injecting slot directly
//! (`⌊ln u / ln(1−p)⌋`) and keys it in a min-heap calendar — idle slots
//! cost a heap peek — or, for the dense symmetric workload, emits the
//! slot's Binomial(m, p) batch by geometric index skipping.
//!
//! Three measurements, written to `BENCH_inject.json` at the workspace
//! root (override with `BENCH_INJECT_OUT`):
//!
//! * **idle-sparse** — m generators at a total of 0.1 expected packets
//!   per slot (the idle-slot floor): slots/s, naive vs batch calendar.
//! * **dense** — the symmetric workload at p = 0.25 (m/4 packets per
//!   slot): slots/s, naive vs batch binomial path.
//! * **two-stage-cell** — end-to-end `sinr-dense` two-stage sweep cells
//!   (the PR 3 bench_sweep grid: 4 λ × 4 repetitions, 1 frame per cell,
//!   shared substrate), wall-clock with the batch engine (the default
//!   since this PR) vs the naive sampler (`NaiveStochasticSpec`, the
//!   PR 3 baseline behaviour).
//!
//! CI runs this in fast mode (smaller m, one measurement run) as a perf
//! harness smoke test; the checked-in file is the PR's baseline,
//! captured in full mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dps_core::injection::batch::BatchStochasticInjector;
use dps_core::injection::stochastic::uniform_generators;
use dps_core::injection::Injector;
use dps_core::path::RoutePath;
use dps_core::prelude::LinkId;
use dps_core::rng::split_stream;
use dps_scenario::{registry, NaiveStochasticSpec, Scenario};
use std::sync::Arc;
use std::time::{Duration, Instant};

const LAMBDAS: [f64; 4] = [0.05, 0.1, 0.15, 0.2];
const REPS: u64 = 4;

fn routes(m: usize) -> Vec<Arc<RoutePath>> {
    (0..m as u32)
        .map(|l| RoutePath::single_hop(LinkId(l)).shared())
        .collect()
}

/// Drives `injector` for `slots` slots and returns the wall-clock plus
/// the number of packets emitted (keeps the loop honest under `-O`).
fn drive(injector: &mut dyn Injector, slots: u64, seed: u64) -> (Duration, u64) {
    let mut rng = split_stream(seed, 0);
    let mut buf = Vec::new();
    let mut emitted = 0u64;
    let start = Instant::now();
    for slot in 0..slots {
        injector.inject_into(slot, &mut rng, &mut buf);
        emitted += buf.len() as u64;
    }
    (start.elapsed(), emitted)
}

/// Median slots/s over `runs` drives.
fn measure_slots_per_sec(
    make: &dyn Fn() -> Box<dyn Injector>,
    slots: u64,
    runs: usize,
) -> (f64, u64) {
    let mut samples = Vec::with_capacity(runs);
    let mut emitted = 0;
    for run in 0..runs {
        let mut injector = make();
        let (elapsed, count) = drive(&mut *injector, slots, 1000 + run as u64);
        samples.push(elapsed);
        emitted = count;
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    (slots as f64 / median.as_secs_f64(), emitted)
}

/// One `(name, per-generator p)` micro case over `m` generators.
fn micro_cases(m: usize) -> Vec<(&'static str, f64)> {
    vec![
        // 0.1 expected packets/slot across all m generators: ~90% of
        // slots idle — the floor PR 3 measured.
        ("idle-sparse", 0.1 / m as f64),
        // The dense symmetric workload: m/4 packets per slot.
        ("dense", 0.25),
    ]
}

/// Runs the 4λ × 4 repetition two-stage grid on one shared substrate,
/// with the spec's default injector (the batch engine) or the naive
/// sampler; returns the median wall-clock over `runs`.
fn measure_two_stage(m: usize, naive: bool, runs: usize) -> Duration {
    let mut base = registry::spec_for("sinr-dense")
        .expect("preset exists")
        .with_size(m);
    base.run.frames = 1;
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let substrate = Scenario::from_spec(&base)
            .expect("valid spec")
            .build_substrate()
            .expect("substrate builds");
        let start = Instant::now();
        let mut cells = 0usize;
        for &lambda in &LAMBDAS {
            let mut scenario =
                Scenario::from_spec(&base.clone().with_lambda(lambda)).expect("valid spec");
            if naive {
                scenario.injector = Box::new(NaiveStochasticSpec);
            }
            for rep in 0..REPS {
                let outcome = scenario.run_stream_on(&substrate, rep).expect("cell runs");
                assert!(outcome.report.slots > 0);
                cells += 1;
            }
        }
        assert_eq!(cells, LAMBDAS.len() * REPS as usize);
        samples.push(start.elapsed());
    }
    samples.sort();
    samples[samples.len() / 2]
}

fn bench_injection_engine(c: &mut Criterion) {
    // Fast mode (CI) shrinks the instance and the measurement budget so
    // the smoke step stays quick.
    let fast_mode = std::env::var("CRITERION_MEASUREMENT_MS").is_ok();
    let (m, slots, runs) = if fast_mode {
        (256usize, 20_000u64, 1usize)
    } else {
        (1024, 200_000, 3)
    };

    let mut group = c.benchmark_group("injection_engine");
    group.sample_size(10);
    for (name, p) in micro_cases(m) {
        group.bench_with_input(BenchmarkId::new(format!("naive/{name}"), m), &p, |b, &p| {
            let mut injector = uniform_generators(routes(m), p).unwrap();
            let mut rng = split_stream(3, 0);
            let mut buf = Vec::new();
            let mut slot = 0u64;
            b.iter(|| {
                injector.inject_into(slot, &mut rng, &mut buf);
                slot += 1;
                buf.len()
            })
        });
        group.bench_with_input(BenchmarkId::new(format!("batch/{name}"), m), &p, |b, &p| {
            let mut injector =
                BatchStochasticInjector::from(uniform_generators(routes(m), p).unwrap());
            let mut rng = split_stream(3, 0);
            let mut buf = Vec::new();
            let mut slot = 0u64;
            b.iter(|| {
                injector.inject_into(slot, &mut rng, &mut buf);
                slot += 1;
                buf.len()
            })
        });
    }
    group.finish();

    // Paired measurement for the JSON baseline.
    let mut cells = Vec::new();
    for (name, p) in micro_cases(m) {
        let naive_make: Box<dyn Fn() -> Box<dyn Injector>> = {
            let routes = routes(m);
            Box::new(move |/* rebuilt per run */| -> Box<dyn Injector> {
                Box::new(uniform_generators(routes.clone(), p).unwrap())
            })
        };
        let batch_make: Box<dyn Fn() -> Box<dyn Injector>> = {
            let routes = routes(m);
            Box::new(move || -> Box<dyn Injector> {
                Box::new(BatchStochasticInjector::from(
                    uniform_generators(routes.clone(), p).unwrap(),
                ))
            })
        };
        let (naive_rate, naive_emitted) = measure_slots_per_sec(&*naive_make, slots, runs);
        let (batch_rate, batch_emitted) = measure_slots_per_sec(&*batch_make, slots, runs);
        let speedup = batch_rate / naive_rate;
        println!(
            "injection_engine/{name}/m={m}: {speedup:.1}x \
             (naive {naive_rate:.3e} slots/s [{naive_emitted} pkts], \
             batch {batch_rate:.3e} slots/s [{batch_emitted} pkts])"
        );
        cells.push(format!(
            "    {{\n      \"case\": \"{name}\",\n      \"m\": {m},\n      \
             \"expected_per_slot\": {:.4},\n      \"slots\": {slots},\n      \
             \"naive_slots_per_sec\": {naive_rate:.1},\n      \
             \"batch_slots_per_sec\": {batch_rate:.1},\n      \
             \"speedup\": {speedup:.2}\n    }}",
            p * m as f64,
        ));
    }

    let naive_cell = measure_two_stage(m, true, runs);
    let batch_cell = measure_two_stage(m, false, runs);
    let cell_speedup = naive_cell.as_secs_f64() / batch_cell.as_secs_f64();
    println!(
        "injection_engine/two-stage-cell/m={m}: {cell_speedup:.2}x \
         (naive {:.3}s, batch {:.3}s, {} cells)",
        naive_cell.as_secs_f64(),
        batch_cell.as_secs_f64(),
        LAMBDAS.len() * REPS as usize,
    );
    cells.push(format!(
        "    {{\n      \"case\": \"two-stage-cell\",\n      \"m\": {m},\n      \
         \"cells\": {},\n      \"naive_secs\": {:.4},\n      \
         \"batch_secs\": {:.4},\n      \"speedup\": {cell_speedup:.2}\n    }}",
        LAMBDAS.len() * REPS as usize,
        naive_cell.as_secs_f64(),
        batch_cell.as_secs_f64(),
    ));

    let json = format!(
        "{{\n  \"bench\": \"bench_inject\",\n  \"metric\": \"stochastic injector slot \
         throughput, naive per-generator sampler vs batch engine (skip-ahead calendar / \
         dense binomial batch); `idle-sparse` = 0.1 expected packets/slot over m \
         generators, `dense` = p=0.25 symmetric workload, `two-stage-cell` = end-to-end \
         sinr-dense two-stage sweep cells (4 lambdas x 4 repetitions, 1 frame per cell, \
         shared substrate)\",\n  \"cells\": [\n{}\n  ]\n}}\n",
        cells.join(",\n")
    );
    let path = std::env::var("BENCH_INJECT_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_inject.json").to_string()
    });
    match std::fs::write(&path, &json) {
        Ok(()) => println!("injection_engine: baseline written to {path}"),
        Err(e) => eprintln!("injection_engine: could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_injection_engine);
criterion_main!(benches);
