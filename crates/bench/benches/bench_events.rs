//! Event-engine benchmark: the per-slot reference loop vs the
//! event-driven slot-skipping fast path.
//!
//! The event engine queries the injector's calendar and the protocol's
//! frame phase for the next slot anything can happen at, and jumps the
//! clock straight there, accounting for the skipped range in bulk. On a
//! quiet substrate that turns per-slot cost into per-*event* cost, so
//! the win grows with the idle fraction.
//!
//! Three measurements, written to `BENCH_events.json` at the workspace
//! root (override with `BENCH_EVENTS_OUT`):
//!
//! * **idle-region** — a near-silent ring (a packet every ~100k slots):
//!   slots/s with the event engine vs per-slot stepping, at m ∈
//!   {64, 1024}. This is the headline: the engine covers virtually the
//!   whole horizon with jumps.
//! * **sparse** — aggregate 0.01 packets/slot (a packet every ~100
//!   slots), same A/B, same sizes: the regime the `sparse-ring` preset
//!   models, where jumps are short but still dominate.
//! * **sparse-sweep-cell** — end-to-end `sparse-ring` scenario cells
//!   (3 λ × 3 repetitions on one shared substrate), wall-clock with the
//!   event engine (the default) vs `run.events = false`.
//!
//! CI runs this in fast mode (smaller m, shorter horizon, one
//! measurement run) as a perf-harness smoke test; the checked-in file
//! is the PR's baseline, captured in full mode. Numbers come from the
//! shared 1-CPU container, so treat them as ±30%.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dps_core::dynamic::{DynamicProtocol, FrameConfig};
use dps_core::feasibility::PerLinkFeasibility;
use dps_core::injection::batch::BatchStochasticInjector;
use dps_core::injection::stochastic::uniform_generators;
use dps_core::path::RoutePath;
use dps_core::prelude::{GreedyPerLink, LinkId};
use dps_scenario::{registry, Scenario};
use dps_sim::runner::{run_simulation, SimulationConfig, SimulationReport};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SWEEP_LAMBDAS: [f64; 3] = [0.0001, 0.0002, 0.0004];
const SWEEP_REPS: u64 = 3;

fn routes(m: usize) -> Vec<Arc<RoutePath>> {
    (0..m as u32)
        .map(|l| RoutePath::single_hop(LinkId(l)).shared())
        .collect()
}

/// One ring run at per-link rate `lambda`, timed.
fn drive(m: usize, lambda: f64, cfg: SimulationConfig) -> (Duration, SimulationReport) {
    let frame = FrameConfig::tuned(&GreedyPerLink::new(), m, 0.9).unwrap();
    let mut protocol = DynamicProtocol::new(GreedyPerLink::new(), frame, m);
    let mut injector = BatchStochasticInjector::new(uniform_generators(routes(m), lambda).unwrap());
    let phy = PerLinkFeasibility::new(m);
    let start = Instant::now();
    let report = run_simulation(&mut protocol, &mut injector, &phy, cfg);
    (start.elapsed(), report)
}

/// Median slots/s over `runs` drives, plus the last run's report.
fn measure(
    m: usize,
    lambda: f64,
    slots: u64,
    events: bool,
    runs: usize,
) -> (f64, SimulationReport) {
    let mut samples = Vec::with_capacity(runs);
    let mut last = None;
    for run in 0..runs {
        let cfg = SimulationConfig::new(slots, 40 + run as u64).with_events(events);
        let (elapsed, report) = drive(m, lambda, cfg);
        samples.push(elapsed);
        last = Some(report);
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    (slots as f64 / median.as_secs_f64(), last.unwrap())
}

/// Runs the 3λ × 3 repetition sparse-ring grid on one shared substrate
/// with the given engine; returns the median wall-clock over `runs`.
fn measure_sweep_cells(frames: u64, events: bool, runs: usize) -> Duration {
    let mut base = registry::spec_for("sparse-ring").expect("preset exists");
    base.run.frames = frames;
    base.run.events = events;
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let substrate = Scenario::from_spec(&base)
            .expect("valid spec")
            .build_substrate()
            .expect("substrate builds");
        let start = Instant::now();
        let mut cells = 0usize;
        for &lambda in &SWEEP_LAMBDAS {
            let scenario =
                Scenario::from_spec(&base.clone().with_lambda(lambda)).expect("valid spec");
            for rep in 0..SWEEP_REPS {
                let outcome = scenario.run_stream_on(&substrate, rep).expect("cell runs");
                assert!(outcome.report.slots > 0);
                cells += 1;
            }
        }
        assert_eq!(cells, SWEEP_LAMBDAS.len() * SWEEP_REPS as usize);
        samples.push(start.elapsed());
    }
    samples.sort();
    samples[samples.len() / 2]
}

fn bench_event_engine(c: &mut Criterion) {
    // Fast mode (CI) shrinks the instance and the measurement budget so
    // the smoke step stays quick.
    let fast_mode = std::env::var("CRITERION_MEASUREMENT_MS").is_ok();
    let (sizes, slots, runs, frames) = if fast_mode {
        (vec![64usize, 256], 20_000u64, 1usize, 100u64)
    } else {
        (vec![64, 1024], 300_000, 3, 2_000)
    };

    // Criterion smoke: one short sim per engine at the smallest size.
    let mut group = c.benchmark_group("event_engine");
    group.sample_size(10);
    let m0 = sizes[0];
    for (name, events) in [("event-path", true), ("slot-path", false)] {
        group.bench_with_input(BenchmarkId::new(name, m0), &events, |b, &events| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let cfg = SimulationConfig::new(2_000, seed).with_events(events);
                drive(m0, 1e-6, cfg).1.slots
            })
        });
    }
    group.finish();

    // Paired measurements for the JSON baseline. `lambda` is per link,
    // so the aggregate rate is lambda * m.
    let mut cells = Vec::new();
    for &m in &sizes {
        let cases = [
            // ~3 packets over the whole horizon: jumps cover everything.
            ("idle-region", 1.0 / (100.0 * slots as f64)),
            // One packet every ~100 slots, the sparse-ring regime.
            ("sparse", 0.01 / m as f64),
        ];
        for (name, lambda) in cases {
            let (slot_rate, slow) = measure(m, lambda, slots, false, runs);
            let (event_rate, fast) = measure(m, lambda, slots, true, runs);
            assert_eq!(fast.injected, slow.injected, "engines diverged");
            assert_eq!(fast.delivered, slow.delivered, "engines diverged");
            let speedup = event_rate / slot_rate;
            let skipped_frac = fast.idle_slots_skipped as f64 / slots as f64;
            println!(
                "event_engine/{name}/m={m}: {speedup:.1}x \
                 (slot {slot_rate:.3e} slots/s, event {event_rate:.3e} slots/s, \
                 {:.1}% of slots jumped, {} pkts)",
                100.0 * skipped_frac,
                fast.injected,
            );
            cells.push(format!(
                "    {{\n      \"case\": \"{name}\",\n      \"m\": {m},\n      \
                 \"slots\": {slots},\n      \"injected\": {},\n      \
                 \"skipped_fraction\": {skipped_frac:.4},\n      \
                 \"slot_path_slots_per_sec\": {slot_rate:.1},\n      \
                 \"event_path_slots_per_sec\": {event_rate:.1},\n      \
                 \"speedup\": {speedup:.2}\n    }}",
                fast.injected,
            ));
        }
    }

    let slow_cells = measure_sweep_cells(frames, false, runs);
    let fast_cells = measure_sweep_cells(frames, true, runs);
    let cell_speedup = slow_cells.as_secs_f64() / fast_cells.as_secs_f64();
    println!(
        "event_engine/sparse-sweep-cell: {cell_speedup:.2}x \
         (slot {:.3}s, event {:.3}s, {} cells)",
        slow_cells.as_secs_f64(),
        fast_cells.as_secs_f64(),
        SWEEP_LAMBDAS.len() * SWEEP_REPS as usize,
    );
    cells.push(format!(
        "    {{\n      \"case\": \"sparse-sweep-cell\",\n      \"cells\": {},\n      \
         \"slot_path_secs\": {:.4},\n      \"event_path_secs\": {:.4},\n      \
         \"speedup\": {cell_speedup:.2}\n    }}",
        SWEEP_LAMBDAS.len() * SWEEP_REPS as usize,
        slow_cells.as_secs_f64(),
        fast_cells.as_secs_f64(),
    ));

    let json = format!(
        "{{\n  \"bench\": \"bench_events\",\n  \"metric\": \"simulation slot throughput, \
         per-slot reference loop vs event-driven slot-skipping engine; `idle-region` = \
         near-silent ring (~3 packets per horizon), `sparse` = 0.01 packets/slot \
         aggregate, `sparse-sweep-cell` = end-to-end sparse-ring scenario cells \
         (3 lambdas x 3 repetitions, shared substrate); 1-CPU container, treat as \
         +/-30%\",\n  \"cells\": [\n{}\n  ]\n}}\n",
        cells.join(",\n")
    );
    let path = std::env::var("BENCH_EVENTS_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_events.json").to_string()
    });
    match std::fs::write(&path, &json) {
        Ok(()) => println!("event_engine: baseline written to {path}"),
        Err(e) => eprintln!("event_engine: could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_event_engine);
criterion_main!(benches);
