//! E9 benchmark: conflict-graph kernels — construction, inductive
//! independence, coloring, and the uniform-rate scheduler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dps_conflict::coloring::GreedyColoringScheduler;
use dps_conflict::feasibility::IndependentSetFeasibility;
use dps_conflict::inductive::{degeneracy_ordering, ordering_by_key, rho_for_ordering};
use dps_conflict::models::{protocol_model, random_geo_links};
use dps_core::ids::{LinkId, PacketId};
use dps_core::rng::split_stream;
use dps_core::staticsched::{run_static, Request};

fn bench_conflict(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_conflict");
    group.sample_size(10);
    for &m in &[48usize, 96] {
        let mut rng = split_stream(6, m as u64);
        let links = random_geo_links(m, (m as f64).sqrt() * 2.2, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("protocol_model_build", m), &m, |b, _| {
            b.iter(|| protocol_model(&links, 0.5))
        });
        let graph = protocol_model(&links, 0.5);
        group.bench_with_input(BenchmarkId::new("degeneracy_ordering", m), &m, |b, _| {
            b.iter(|| degeneracy_ordering(&graph))
        });
        let pi = ordering_by_key(m, |l| links[l.index()].length());
        group.bench_with_input(BenchmarkId::new("rho_for_ordering", m), &m, |b, _| {
            b.iter(|| rho_for_ordering(&graph, &pi))
        });
        let requests: Vec<Request> = (0..2 * m)
            .map(|i| Request {
                packet: PacketId(i as u64),
                link: LinkId((i % m) as u32),
            })
            .collect();
        let coloring = GreedyColoringScheduler::new(graph.clone(), &pi);
        let phy = IndependentSetFeasibility::new(graph.clone());
        group.bench_with_input(BenchmarkId::new("greedy_coloring_run", m), &m, |b, _| {
            b.iter(|| {
                let mut rng = split_stream(7, m as u64);
                run_static(&coloring, &requests, 2.0 * m as f64, &phy, 16 * m, &mut rng)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_conflict);
criterion_main!(benches);
