//! E10 benchmark: the star-instance protocols (global vs local clocks)
//! driven against the exact SINR oracle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dps_bench::setup::injector_at_rate;
use dps_core::interference::IdentityInterference;
use dps_core::path::RoutePath;
use dps_sim::runner::{run_simulation, SimulationConfig};
use dps_sinr::feasibility::SinrFeasibility;
use dps_sinr::instances::star_instance;
use dps_sinr::power::UniformPower;
use dps_sinr::star::{GlobalClockStarProtocol, LocalClockAlohaProtocol};

fn bench_star(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_star_protocols");
    group.sample_size(10);
    let slots = 5_000u64;
    group.throughput(Throughput::Elements(slots));
    for &m in &[8usize, 32] {
        let star = star_instance(m);
        let oracle = SinrFeasibility::new(star.net.clone(), UniformPower::unit());
        let routes: Vec<_> = star
            .short_links
            .iter()
            .chain(std::iter::once(&star.long_link))
            .map(|&l| RoutePath::single_hop(l).shared())
            .collect();
        let model = IdentityInterference::new(star.net.num_links());
        group.bench_with_input(BenchmarkId::new("global_clock", m), &m, |b, _| {
            b.iter(|| {
                let mut protocol = GlobalClockStarProtocol::new(&star);
                let mut injector = injector_at_rate(routes.clone(), &model, 0.4).expect("rate");
                run_simulation(
                    &mut protocol,
                    &mut injector,
                    &oracle,
                    SimulationConfig::new(slots, 1),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("local_clock", m), &m, |b, _| {
            b.iter(|| {
                let mut protocol = LocalClockAlohaProtocol::new(&star, 0.75);
                let mut injector = injector_at_rate(routes.clone(), &model, 0.4).expect("rate");
                run_simulation(
                    &mut protocol,
                    &mut injector,
                    &oracle,
                    SimulationConfig::new(slots, 2),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_star);
criterion_main!(benches);
