//! E6 benchmark: SINR kernels — affectance matrix construction, exact
//! feasibility checking, and one dynamic frame on the SINR substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dps_core::feasibility::{Attempt, Feasibility};
use dps_core::ids::{LinkId, PacketId};
use dps_core::rng::split_stream;
use dps_sinr::feasibility::SinrFeasibility;
use dps_sinr::instances::random_instance;
use dps_sinr::matrix::SinrInterference;
use dps_sinr::params::SinrParams;
use dps_sinr::power::LinearPower;

fn bench_sinr_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_sinr_kernels");
    group.sample_size(20);
    for &m in &[32usize, 128] {
        let mut rng = split_stream(9, m as u64);
        let net = random_instance(
            m,
            20.0 * (m as f64).sqrt(),
            1.0,
            3.0,
            SinrParams::default_noiseless(),
            &mut rng,
        );
        let power = LinearPower::new(net.params().alpha);
        group.bench_with_input(BenchmarkId::new("matrix_build", m), &m, |b, _| {
            b.iter(|| SinrInterference::fixed_power(&net, &power))
        });
        let oracle = SinrFeasibility::new(net.clone(), power);
        let attempts: Vec<Attempt> = (0..m as u32)
            .step_by(4)
            .map(|l| Attempt {
                link: LinkId(l),
                packet: PacketId(l as u64),
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("feasibility_slot", m), &m, |b, _| {
            b.iter(|| {
                let mut rng = split_stream(10, m as u64);
                oracle.successes(&attempts, &mut rng)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sinr_kernels);
criterion_main!(benches);
