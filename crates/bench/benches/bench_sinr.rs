//! E6 benchmark: SINR kernels — affectance matrix construction, exact
//! feasibility checking — plus the cached-vs-naive slot-throughput
//! baseline of the fast-path engine.
//!
//! The second half drives the exact oracle for one slot of `m/4`
//! simultaneous attempts at `m ∈ {64, 256, 1024}`, once through the
//! cached fast path (`SinrFeasibility::successes`: precomputed
//! signals/margins + gain table, `O(k²)`) and once through the naive
//! reference (`SinrFeasibility::successes_naive`: recomputed geometry,
//! `O(k·m)` with `sqrt`/`powf`), and writes the measured slot throughput
//! and speedup to `BENCH_sinr.json` at the workspace root (override the
//! path with `BENCH_SINR_OUT`). CI runs this in fast mode as a perf
//! harness smoke test; the checked-in file is the PR's baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dps_core::feasibility::{Attempt, Feasibility};
use dps_core::ids::{LinkId, PacketId};
use dps_core::rng::split_stream;
use dps_sinr::feasibility::SinrFeasibility;
use dps_sinr::instances::random_instance;
use dps_sinr::matrix::SinrInterference;
use dps_sinr::network::SinrNetwork;
use dps_sinr::params::SinrParams;
use dps_sinr::power::LinearPower;
use std::time::{Duration, Instant};

const THROUGHPUT_SIZES: [usize; 3] = [64, 256, 1024];

fn instance(m: usize) -> SinrNetwork {
    let mut rng = split_stream(9, m as u64);
    random_instance(
        m,
        20.0 * (m as f64).sqrt(),
        1.0,
        3.0,
        SinrParams::default_noiseless(),
        &mut rng,
    )
}

fn slot_attempts(m: usize) -> Vec<Attempt> {
    (0..m as u32)
        .step_by(4)
        .map(|l| Attempt {
            link: LinkId(l),
            packet: PacketId(l as u64),
        })
        .collect()
}

fn bench_sinr_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_sinr_kernels");
    group.sample_size(20);
    for &m in &[32usize, 128] {
        let net = instance(m);
        let power = LinearPower::new(net.params().alpha);
        group.bench_with_input(BenchmarkId::new("matrix_build", m), &m, |b, _| {
            b.iter(|| SinrInterference::fixed_power(&net, &power))
        });
        let oracle = SinrFeasibility::new(net.clone(), power);
        let attempts = slot_attempts(m);
        group.bench_with_input(BenchmarkId::new("feasibility_slot", m), &m, |b, _| {
            b.iter(|| {
                let mut rng = split_stream(10, m as u64);
                oracle.successes(&attempts, &mut rng)
            })
        });
    }
    group.finish();
}

/// Median per-slot wall time over batches filling `budget`.
fn measure_slot<F: FnMut()>(mut slot: F, budget: Duration) -> Duration {
    // Calibrate a batch of ≥ ~200 µs.
    let mut batch = 1u32;
    loop {
        let start = Instant::now();
        for _ in 0..batch {
            slot();
        }
        if start.elapsed() >= Duration::from_micros(200) || batch >= 1 << 20 {
            break;
        }
        batch *= 4;
    }
    let mut samples = Vec::new();
    let start = Instant::now();
    while start.elapsed() < budget || samples.len() < 3 {
        let t = Instant::now();
        for _ in 0..batch {
            slot();
        }
        samples.push(t.elapsed() / batch);
        if samples.len() >= 100 {
            break;
        }
    }
    samples.sort();
    samples[samples.len() / 2]
}

fn bench_slot_throughput(c: &mut Criterion) {
    // Reuse the criterion shim's budget knob so CI's fast mode
    // (CRITERION_MEASUREMENT_MS) also bounds the JSON measurement.
    let budget = std::env::var("CRITERION_MEASUREMENT_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or_else(|| Duration::from_millis(300));

    let mut group = c.benchmark_group("e6_sinr_slot_throughput");
    group.sample_size(20);
    let mut cells = Vec::new();
    for &m in &THROUGHPUT_SIZES {
        let net = instance(m);
        let power = LinearPower::new(net.params().alpha);
        let oracle = SinrFeasibility::new(net, power);
        let attempts = slot_attempts(m);
        let mut out = Vec::new();

        group.bench_with_input(BenchmarkId::new("cached", m), &m, |b, _| {
            b.iter(|| {
                let mut rng = split_stream(10, m as u64);
                oracle.successes_into(&attempts, &mut out, &mut rng)
            })
        });
        group.bench_with_input(BenchmarkId::new("naive", m), &m, |b, _| {
            b.iter(|| {
                let mut rng = split_stream(10, m as u64);
                oracle.successes_naive(&attempts, &mut rng)
            })
        });

        // Paired measurement for the JSON baseline.
        let mut rng = split_stream(10, m as u64);
        let cached = measure_slot(
            || {
                oracle.successes_into(&attempts, &mut out, &mut rng);
            },
            budget,
        );
        let naive = measure_slot(
            || {
                std::hint::black_box(oracle.successes_naive(&attempts, &mut rng));
            },
            budget,
        );
        let per_sec = |d: Duration| 1.0 / d.as_secs_f64();
        let speedup = naive.as_secs_f64() / cached.as_secs_f64();
        println!(
            "e6_sinr_slot_throughput/speedup/{m}: {speedup:.1}x \
             (cached {:.3e} slots/s, naive {:.3e} slots/s)",
            per_sec(cached),
            per_sec(naive)
        );
        cells.push(format!(
            "    {{\n      \"m\": {m},\n      \"attempts_per_slot\": {},\n      \
             \"cached_slots_per_sec\": {:.1},\n      \"naive_slots_per_sec\": {:.1},\n      \
             \"speedup\": {:.2}\n    }}",
            attempts.len(),
            per_sec(cached),
            per_sec(naive),
            speedup
        ));
    }
    group.finish();

    let json = format!(
        "{{\n  \"bench\": \"bench_sinr\",\n  \"metric\": \"exact-oracle slot throughput, \
         k = m/4 attempts per slot\",\n  \"cells\": [\n{}\n  ]\n}}\n",
        cells.join(",\n")
    );
    let path = std::env::var("BENCH_SINR_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sinr.json").to_string()
    });
    match std::fs::write(&path, &json) {
        Ok(()) => println!("e6_sinr_slot_throughput: baseline written to {path}"),
        Err(e) => eprintln!("e6_sinr_slot_throughput: could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_sinr_kernels, bench_slot_throughput);
criterion_main!(benches);
