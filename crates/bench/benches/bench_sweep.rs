//! Sweep-engine benchmark: the substrate-sharing execution layer.
//!
//! A sweep's dominant workload is many cells over the same topology —
//! only λ and the repetition stream vary — so the engine builds each
//! distinct substrate once and shares it (`Arc`) across all cells and
//! worker threads. This bench drives 4 λ × 4 repetition grids on the
//! `sinr-dense` substrate scaled to m = 1024 twice per thread count —
//! substrate sharing on vs. off (per-cell rebuild, the pre-sharing
//! behaviour) — and writes the measured wall-clock and speedup to
//! `BENCH_sweep.json` at the workspace root (override the path with
//! `BENCH_SWEEP_OUT`). CI runs this in fast mode (smaller instance, one
//! measurement run) as a perf harness smoke test; the checked-in file
//! is the PR's baseline, captured in full mode.
//!
//! Two grids split the story:
//!
//! * **`engine`** pairs the m = 1024 SINR topology with the short-frame
//!   greedy protocol, so cells are cheap and the per-cell `O(m²)`
//!   substrate construction (SINR matrix + shared gain table) is the
//!   bulk of every rebuilt cell — the cost the sharing layer removes.
//! * **`two-stage`** runs the preset's real two-stage decay protocol,
//!   whose per-cell frame simulation puts a floor under both modes —
//!   the end-to-end benefit on the full protocol stack.
//!
//! Injection rates sit well below capacity (the bench probes engine
//! overhead, not protocol stability). Decision streams are bit-for-bit
//! identical with sharing on or off (pinned by the golden-fingerprint
//! integration test).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dps_scenario::{registry, ProtocolConfig, ScenarioSpec, Sweep};
use std::time::{Duration, Instant};

const LAMBDAS: [f64; 4] = [0.05, 0.1, 0.15, 0.2];
const REPS: u64 = 4;

/// The benched grids as `(name, spec)`: the `sinr-dense` substrate
/// scaled to `m`, under the engine-isolating greedy protocol and the
/// preset's own two-stage decay protocol.
fn grids(m: usize) -> Vec<(&'static str, ScenarioSpec)> {
    let mut base = registry::spec_for("sinr-dense")
        .expect("preset exists")
        .with_size(m);
    // One frame per cell: the engine's per-cell overhead — substrate
    // construction, dispatch — is the object under test, not the
    // steady-state slot loop (bench_sinr measures that).
    base.run.frames = 1;
    let two_stage = base.clone();
    let mut engine = base;
    engine.protocol = ProtocolConfig::FrameGreedy;
    vec![("engine", engine), ("two-stage", two_stage)]
}

fn run_sweep(spec: &ScenarioSpec, shared: bool, threads: usize) -> usize {
    let report = Sweep::new(spec.clone())
        .over_lambdas(&LAMBDAS)
        .repetitions(REPS)
        .threads(threads)
        .share_substrates(shared)
        .run()
        .expect("sweep runs");
    report.cells.len()
}

/// Median wall-clock of `runs` sweep executions.
fn measure_sweep(spec: &ScenarioSpec, shared: bool, threads: usize, runs: usize) -> Duration {
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let start = Instant::now();
        let cells = run_sweep(spec, shared, threads);
        samples.push(start.elapsed());
        assert_eq!(cells, LAMBDAS.len() * REPS as usize);
    }
    samples.sort();
    samples[samples.len() / 2]
}

fn bench_sweep_engine(c: &mut Criterion) {
    // Fast mode (CI) shrinks the instance and the number of paired
    // measurement runs so the smoke step stays quick.
    let fast_mode = std::env::var("CRITERION_MEASUREMENT_MS").is_ok();
    let (m, runs) = if fast_mode { (256, 1) } else { (1024, 3) };
    let grids = grids(m);

    let mut group = c.benchmark_group("sweep_engine");
    group.sample_size(10);
    let engine_spec = &grids[0].1;
    for shared in [true, false] {
        let label = if shared { "shared" } else { "rebuilt" };
        group.bench_with_input(BenchmarkId::new(label, m), &shared, |b, &shared| {
            b.iter(|| run_sweep(engine_spec, shared, 1))
        });
    }
    group.finish();

    // Paired measurement for the JSON baseline: 1, 2 and all-cores
    // thread counts, shared vs rebuilt each, per grid.
    let n = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut thread_counts = vec![1usize, 2, n];
    thread_counts.sort_unstable();
    thread_counts.dedup();
    let mut cells = Vec::new();
    for (name, spec) in &grids {
        for &threads in &thread_counts {
            let shared = measure_sweep(spec, true, threads, runs);
            let rebuilt = measure_sweep(spec, false, threads, runs);
            let speedup = rebuilt.as_secs_f64() / shared.as_secs_f64();
            println!(
                "sweep_engine/substrate_sharing/{name}/threads={threads}: {speedup:.2}x \
                 (shared {:.3}s, rebuilt {:.3}s, {} cells)",
                shared.as_secs_f64(),
                rebuilt.as_secs_f64(),
                LAMBDAS.len() * REPS as usize,
            );
            cells.push(format!(
                "    {{\n      \"grid\": \"{name}\",\n      \"m\": {m},\n      \
                 \"threads\": {threads},\n      \"cells\": {},\n      \
                 \"shared_secs\": {:.4},\n      \"rebuilt_secs\": {:.4},\n      \
                 \"speedup\": {:.2}\n    }}",
                LAMBDAS.len() * REPS as usize,
                shared.as_secs_f64(),
                rebuilt.as_secs_f64(),
                speedup
            ));
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"bench_sweep\",\n  \"metric\": \"sinr-dense-substrate sweep \
         wall-clock (4 lambdas x 4 repetitions, 1 frame per cell), substrate sharing on \
         vs off; `engine` = short-frame greedy cells isolating per-cell construction, \
         `two-stage` = the preset's full protocol stack\",\n  \"cells\": [\n{}\n  ]\n}}\n",
        cells.join(",\n")
    );
    let path = std::env::var("BENCH_SWEEP_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json").to_string()
    });
    match std::fs::write(&path, &json) {
        Ok(()) => println!("sweep_engine: baseline written to {path}"),
        Err(e) => eprintln!("sweep_engine: could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_sweep_engine);
criterion_main!(benches);
