//! E11 benchmark: dynamic protocol throughput on the classic routing
//! topologies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dps_bench::setup::{dynamic_run, injector_at_rate};
use dps_core::staticsched::greedy::GreedyPerLink;
use dps_routing::workloads::RoutingSetup;
use dps_sim::runner::{run_simulation, SimulationConfig};

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_routing");
    group.sample_size(10);
    let setups: Vec<(&str, RoutingSetup)> = vec![
        ("ring8", RoutingSetup::ring(8, 2).expect("valid")),
        ("grid3x3", RoutingSetup::grid(3, 3)),
    ];
    for (name, setup) in setups {
        let run0 = dynamic_run(
            GreedyPerLink::new(),
            setup.network.significant_size(),
            setup.network.num_links(),
            0.9,
        )
        .expect("valid config");
        let slots = 20 * run0.config.frame_len as u64;
        group.throughput(Throughput::Elements(slots));
        group.bench_with_input(BenchmarkId::new("dynamic", name), &name, |b, _| {
            b.iter(|| {
                let mut run = dynamic_run(
                    GreedyPerLink::new(),
                    setup.network.significant_size(),
                    setup.network.num_links(),
                    0.9,
                )
                .expect("valid config");
                let mut injector =
                    injector_at_rate(setup.routes.clone(), &setup.model, 0.8).expect("rate");
                run_simulation(
                    &mut run.protocol,
                    &mut injector,
                    &setup.feasibility,
                    SimulationConfig::new(slots, 1),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
