//! Tiled-substrate benchmark: the exact SINR oracle (on-the-fly gain
//! fallback above the dense-table cap) vs the spatially-tiled oracle
//! (near-field panels + far-field tile aggregation) on the same slot.
//!
//! Drives one slot of `m/4` simultaneous attempts at
//! `m ∈ {1024, 4096, 16384}` through both kernels and writes the
//! measured slot throughput and speedup to `BENCH_tiles.json` at the
//! workspace root (override the path with `BENCH_TILES_OUT`). Two tiled
//! cells are reported per size: `ε = 0` (bit-for-bit the exact verdicts
//! — panels are pure speed) and `ε = 10⁻³` (far-field aggregation under
//! the error contract of `dps_sinr::tiles`). CI runs this in fast mode
//! as a perf smoke test; the checked-in file is the PR's baseline.
//!
//! A separate scale section benches `m = 65536` flat (one tile level)
//! against the hierarchical walk (four coarsening levels) and the
//! region-sharded threaded kernel on the same leaf grid, with the same
//! in-harness `ε = 0` bit-for-bit assertion at every configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dps_core::feasibility::{Attempt, Feasibility};
use dps_core::ids::{LinkId, PacketId};
use dps_core::rng::split_stream;
use dps_sinr::feasibility::SinrFeasibility;
use dps_sinr::instances::random_instance;
use dps_sinr::network::SinrNetwork;
use dps_sinr::params::SinrParams;
use dps_sinr::power::LinearPower;
use dps_sinr::tiles::{PanelCacheMode, TileOptions, TiledSinrFeasibility};
use std::time::{Duration, Instant};

const SIZES: [usize; 3] = [1024, 4096, 16384];

fn instance(m: usize) -> SinrNetwork {
    let mut rng = split_stream(9, m as u64);
    random_instance(
        m,
        20.0 * (m as f64).sqrt(),
        1.0,
        3.0,
        SinrParams::default_noiseless(),
        &mut rng,
    )
}

/// Tile resolution scaling with the deployment: √m/4 tiles per side
/// (≈ 16 links per tile — coarse enough that far-field aggregation
/// replaces many per-pair gains per tile), capped at the grid's
/// maximum.
fn grid_for(m: usize) -> usize {
    ((m as f64).sqrt() as usize / 4).clamp(1, dps_sinr::tiles::MAX_TILES_PER_SIDE)
}

/// Panel budget for the bench cells: large enough to panel most of the
/// near field at these sizes (the preset default trades this for
/// memory; the bench reports the substrate at full tilt).
const PANEL_BUDGET: usize = 256 << 20;

fn slot_attempts(m: usize) -> Vec<Attempt> {
    (0..m as u32)
        .step_by(4)
        .map(|l| Attempt {
            link: LinkId(l),
            packet: PacketId(l as u64),
        })
        .collect()
}

/// Median per-slot wall time over batches filling `budget`.
fn measure_slot<F: FnMut()>(mut slot: F, budget: Duration) -> Duration {
    // Calibrate a batch of ≥ ~200 µs.
    let mut batch = 1u32;
    loop {
        let start = Instant::now();
        for _ in 0..batch {
            slot();
        }
        if start.elapsed() >= Duration::from_micros(200) || batch >= 1 << 20 {
            break;
        }
        batch *= 4;
    }
    let mut samples = Vec::new();
    let start = Instant::now();
    while start.elapsed() < budget || samples.len() < 3 {
        let t = Instant::now();
        for _ in 0..batch {
            slot();
        }
        samples.push(t.elapsed() / batch);
        if samples.len() >= 100 {
            break;
        }
    }
    samples.sort();
    samples[samples.len() / 2]
}

fn bench_tiled_slot(c: &mut Criterion) {
    // Reuse the criterion shim's budget knob so CI's fast mode
    // (CRITERION_MEASUREMENT_MS) also bounds the JSON measurement.
    let budget = std::env::var("CRITERION_MEASUREMENT_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or_else(|| Duration::from_millis(300));

    let mut group = c.benchmark_group("tiles_slot_throughput");
    group.sample_size(10);
    let mut cells = Vec::new();
    for &m in &SIZES {
        let net = instance(m);
        let alpha = net.params().alpha;
        let grid = grid_for(m);
        // Above DEFAULT_DENSE_GAIN_LIMIT (1024) the exact oracle runs on
        // the on-the-fly powf fallback — the path the tiles replace.
        let exact = SinrFeasibility::new(net.clone(), LinearPower::new(alpha));
        let tiled_exact = TiledSinrFeasibility::with_budget(
            net.clone(),
            LinearPower::new(alpha),
            grid,
            0.0,
            PANEL_BUDGET,
        );
        let tiled_approx = TiledSinrFeasibility::with_budget(
            net.clone(),
            LinearPower::new(alpha),
            grid,
            1e-3,
            PANEL_BUDGET,
        );
        let attempts = slot_attempts(m);
        let mut out = Vec::new();

        // Sanity inside the harness: ε = 0 is bit-for-bit exact.
        {
            let rng = split_stream(10, m as u64);
            assert_eq!(
                exact.successes(&attempts, &mut rng.clone()),
                tiled_exact.successes(&attempts, &mut rng.clone()),
                "m = {m}: ε = 0 must match the exact oracle"
            );
        }

        // Criterion smoke entries (only the cheapest pair per size would
        // fit a default run; fast mode bounds these via the shim).
        group.bench_with_input(BenchmarkId::new("exact", m), &m, |b, _| {
            b.iter(|| {
                let mut rng = split_stream(10, m as u64);
                exact.successes_into(&attempts, &mut out, &mut rng)
            })
        });
        group.bench_with_input(BenchmarkId::new("tiled_eps0", m), &m, |b, _| {
            b.iter(|| {
                let mut rng = split_stream(10, m as u64);
                tiled_exact.successes_into(&attempts, &mut out, &mut rng)
            })
        });

        // Paired measurement for the JSON baseline.
        let mut rng = split_stream(10, m as u64);
        let exact_t = measure_slot(
            || {
                exact.successes_into(&attempts, &mut out, &mut rng);
            },
            budget,
        );
        let tiled0_t = measure_slot(
            || {
                tiled_exact.successes_into(&attempts, &mut out, &mut rng);
            },
            budget,
        );
        let tiled3_t = measure_slot(
            || {
                tiled_approx.successes_into(&attempts, &mut out, &mut rng);
            },
            budget,
        );
        let per_sec = |d: Duration| 1.0 / d.as_secs_f64();
        let speedup0 = exact_t.as_secs_f64() / tiled0_t.as_secs_f64();
        let speedup3 = exact_t.as_secs_f64() / tiled3_t.as_secs_f64();
        println!(
            "tiles_slot_throughput/{m} (grid {grid}): exact {:.3e} slots/s, \
             tiled ε=0 {:.3e} slots/s ({speedup0:.1}x), \
             tiled ε=1e-3 {:.3e} slots/s ({speedup3:.1}x), \
             far pairs {}, panels {}",
            per_sec(exact_t),
            per_sec(tiled0_t),
            per_sec(tiled3_t),
            tiled_approx.tiles().far_pairs(),
            tiled_approx.tiles().panel_count(),
        );
        cells.push(format!(
            "    {{\n      \"m\": {m},\n      \"grid\": {grid},\n      \
             \"attempts_per_slot\": {},\n      \
             \"exact_slots_per_sec\": {:.1},\n      \
             \"tiled_eps0_slots_per_sec\": {:.1},\n      \
             \"tiled_eps0_speedup\": {:.2},\n      \
             \"tiled_eps1e3_slots_per_sec\": {:.1},\n      \
             \"tiled_eps1e3_speedup\": {:.2},\n      \
             \"far_pairs\": {},\n      \"panels\": {},\n      \
             \"panel_bytes\": {}\n    }}",
            attempts.len(),
            per_sec(exact_t),
            per_sec(tiled0_t),
            speedup0,
            per_sec(tiled3_t),
            speedup3,
            tiled_approx.tiles().far_pairs(),
            tiled_approx.tiles().panel_count(),
            tiled_approx.tiles().panel_bytes(),
        ));
    }
    group.finish();

    // Hierarchical scale cell: m = 65536 on the flat grid's far-table
    // cap (g = 64), at *megacity density* (side 80·√m — the
    // `sinr-megacity` preset's spacing, four times sparser per area
    // than the small cells). At that spacing the near field shrinks to
    // a few tiles per receiver and the far-field walk dominates: flat
    // (one level) pays one far term per qualified leaf tile pair
    // (thousands per receiver), while the four-level hierarchy walks
    // the same leaf grid from an 8-per-side coarsest level and only
    // descends where the centre-substitution bound forces it,
    // replacing those leaf terms with a few coarse aggregates. The
    // threaded row shards receivers by region and must stay
    // bit-for-bit.
    const HIER_M: usize = 65536;
    const HIER_LEVELS: usize = 4;
    let hier_json = {
        let net = {
            let mut rng = split_stream(9, (HIER_M + 1) as u64);
            random_instance(
                HIER_M,
                80.0 * (HIER_M as f64).sqrt(),
                1.0,
                3.0,
                SinrParams::default_noiseless(),
                &mut rng,
            )
        };
        let alpha = net.params().alpha;
        let grid = grid_for(HIER_M);
        let attempts = slot_attempts(HIER_M);
        let make = |eps: f64, levels: usize, threads: usize| {
            TiledSinrFeasibility::with_options(
                net.clone(),
                LinearPower::new(alpha),
                TileOptions::new(grid, eps)
                    .with_levels(levels)
                    .with_panel_budget(PANEL_BUDGET)
                    .with_panel_mode(PanelCacheMode::Adaptive),
            )
            .kernel_threads(threads)
        };

        // ε = 0 is bit-for-bit exact at every depth and thread count.
        // The assert drives a m/16 attempt subset: the exact oracle is
        // O(k²) powf at this size, and the full-k contract is already
        // referee-tested across (levels, threads) in `prop_tiles`.
        {
            let assert_attempts: Vec<Attempt> = attempts.iter().step_by(4).copied().collect();
            let exact = SinrFeasibility::new(net.clone(), LinearPower::new(alpha));
            let rng = split_stream(10, HIER_M as u64);
            let reference = exact.successes(&assert_attempts, &mut rng.clone());
            for (levels, threads) in [(1usize, 1usize), (HIER_LEVELS, 1), (HIER_LEVELS, 2)] {
                assert_eq!(
                    reference,
                    make(0.0, levels, threads).successes(&assert_attempts, &mut rng.clone()),
                    "m = {HIER_M}, levels = {levels}, threads = {threads}: \
                     ε = 0 must match the exact oracle"
                );
            }
        }

        let flat = make(1e-3, 1, 1);
        let hier = make(1e-3, HIER_LEVELS, 1);
        let hier_t2 = make(1e-3, HIER_LEVELS, 2);
        let mut out = Vec::new();
        let mut rng = split_stream(10, HIER_M as u64);
        let flat_t = measure_slot(
            || {
                flat.successes_into(&attempts, &mut out, &mut rng);
            },
            budget,
        );
        let hier_t = measure_slot(
            || {
                hier.successes_into(&attempts, &mut out, &mut rng);
            },
            budget,
        );
        let hier_t2_t = measure_slot(
            || {
                hier_t2.successes_into(&attempts, &mut out, &mut rng);
            },
            budget,
        );
        let per_sec = |d: Duration| 1.0 / d.as_secs_f64();
        let hier_speedup = flat_t.as_secs_f64() / hier_t.as_secs_f64();
        let far_per_level: Vec<String> = (0..HIER_LEVELS)
            .map(|l| hier.tiles().far_pairs_at(l).to_string())
            .collect();
        println!(
            "tiles_slot_throughput/scale m={HIER_M} (grid {grid}, L={HIER_LEVELS}): \
             flat ε=1e-3 {:.3e} slots/s, hier {:.3e} slots/s ({hier_speedup:.2}x), \
             hier 2-thread {:.3e} slots/s, far pairs flat {} vs per-level [{}]",
            per_sec(flat_t),
            per_sec(hier_t),
            per_sec(hier_t2_t),
            flat.tiles().far_pairs(),
            far_per_level.join(", "),
        );
        format!(
            "  \"scale\": {{\n    \"m\": {HIER_M},\n    \"side\": {:.0},\n    \
             \"grid\": {grid},\n    \
             \"levels\": {HIER_LEVELS},\n    \"attempts_per_slot\": {},\n    \
             \"flat_eps1e3_slots_per_sec\": {:.2},\n    \
             \"hier_eps1e3_slots_per_sec\": {:.2},\n    \
             \"hier_speedup_vs_flat\": {:.2},\n    \
             \"hier_t2_eps1e3_slots_per_sec\": {:.2},\n    \
             \"flat_far_pairs\": {},\n    \"hier_far_pairs_per_level\": [{}]\n  }}",
            80.0 * (HIER_M as f64).sqrt(),
            attempts.len(),
            per_sec(flat_t),
            per_sec(hier_t),
            hier_speedup,
            per_sec(hier_t2_t),
            flat.tiles().far_pairs(),
            far_per_level.join(", "),
        )
    };

    let json = format!(
        "{{\n  \"bench\": \"bench_tiles\",\n  \"metric\": \"exact on-the-fly fallback vs \
         tiled oracle, k = m/4 attempts per slot\",\n  \"cells\": [\n{}\n  ],\n{}\n}}\n",
        cells.join(",\n"),
        hier_json
    );
    let path = std::env::var("BENCH_TILES_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tiles.json").to_string()
    });
    match std::fs::write(&path, &json) {
        Ok(()) => println!("tiles_slot_throughput: baseline written to {path}"),
        Err(e) => eprintln!("tiles_slot_throughput: could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_tiled_slot);
criterion_main!(benches);
