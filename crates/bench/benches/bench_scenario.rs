//! Scenario-API overhead benchmark: the boxed-trait scenario path
//! (substrate/protocol/injector behind `dyn` factories, `Arc`'d
//! feasibility, `Box<dyn Protocol>`) vs direct monomorphic wiring, on the
//! E2 ring-routing workload — plus end-to-end slot throughput of full
//! SINR scenarios at `m ∈ {64, 256, 1024}` (the fast-path engine driven
//! through the whole stack: frame protocol, two-stage scheduler, exact
//! oracle, injection).
//!
//! The dynamic dispatch sits outside the hot per-slot arithmetic (one
//! virtual call per slot per component against hundreds of queue/array
//! operations), so the scenario path is expected to stay within ~2% of
//! the direct path; the `overhead` line printed at the end measures it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dps_bench::setup::{dynamic_run, injector_at_rate};
use dps_core::staticsched::greedy::GreedyPerLink;
use dps_routing::workloads::RoutingSetup;
use dps_scenario::spec::{PowerConfig, SubstrateConfig};
use dps_scenario::{registry, Scenario};
use dps_sim::runner::{run_simulation, SimulationConfig};
use std::time::Instant;

const FRAMES: u64 = 20;
const LAMBDA: f64 = 0.7;

/// The direct path: concrete types end to end, as `setup.rs` wires them.
fn run_direct(setup: &RoutingSetup, slots: u64) -> u64 {
    let mut run = dynamic_run(
        GreedyPerLink::new(),
        setup.network.significant_size(),
        setup.network.num_links(),
        LAMBDA,
    )
    .expect("valid config");
    let mut injector = injector_at_rate(setup.routes.clone(), &setup.model, LAMBDA).expect("rate");
    run_simulation(
        &mut run.protocol,
        &mut injector,
        &setup.feasibility,
        SimulationConfig::new(slots, 1),
    )
    .delivered
}

fn scenario_spec() -> dps_scenario::ScenarioSpec {
    let mut spec = registry::spec_for("ring-routing").expect("preset");
    spec = spec.with_lambda(LAMBDA).with_seed(1);
    spec.run.frames = FRAMES;
    spec.run.provision_cap = 0.9;
    spec
}

/// The boxed path: the same workload assembled through the scenario API.
fn run_boxed(scenario: &Scenario) -> u64 {
    scenario.run().expect("runs").report.delivered
}

fn bench_scenario_overhead(c: &mut Criterion) {
    let setup = RoutingSetup::ring(8, 2).expect("valid ring");
    let slots = {
        let run = dynamic_run(GreedyPerLink::new(), 8, 8, LAMBDA).expect("valid config");
        FRAMES * run.config.frame_len as u64
    };
    let scenario = Scenario::from_spec(&scenario_spec()).expect("valid spec");

    let mut group = c.benchmark_group("scenario_overhead");
    group.sample_size(20);
    group.throughput(Throughput::Elements(slots));
    group.bench_with_input(BenchmarkId::new("direct", 8), &8, |b, _| {
        b.iter(|| run_direct(&setup, slots))
    });
    group.bench_with_input(BenchmarkId::new("boxed_scenario", 8), &8, |b, _| {
        b.iter(|| run_boxed(&scenario))
    });
    group.finish();

    // A paired measurement for the headline number: interleaved batches so
    // both paths see the same thermal/scheduler conditions.
    let mut direct_total = 0.0;
    let mut boxed_total = 0.0;
    let mut checksum = 0u64;
    for _ in 0..12 {
        let t = Instant::now();
        checksum ^= run_direct(&setup, slots);
        direct_total += t.elapsed().as_secs_f64();
        let t = Instant::now();
        checksum ^= run_boxed(&scenario);
        boxed_total += t.elapsed().as_secs_f64();
    }
    println!(
        "scenario_overhead/overhead: boxed/direct = {:.4} ({:+.2}%)  [checksum {checksum}]",
        boxed_total / direct_total,
        (boxed_total / direct_total - 1.0) * 100.0
    );
}

/// End-to-end slot throughput of the `sinr-dense` scenario family: one
/// timed run per network size, reported as slots/second. A single pass
/// keeps the large-`m` cells bounded (the m = 1024 run alone is ~60k
/// slots); relative movement between PRs is what matters here, the
/// micro-level cached-vs-naive baseline lives in `bench_sinr` /
/// `BENCH_sinr.json`.
fn bench_sinr_scenario_throughput(_c: &mut Criterion) {
    for &(m, frames) in &[(64usize, 6u64), (256, 3), (1024, 3)] {
        let mut spec = registry::spec_for("sinr-dense").expect("preset");
        spec.substrate = SubstrateConfig::SinrRandom {
            links: m,
            side: 20.0 * (m as f64).sqrt(),
            min_len: 1.0,
            max_len: 3.0,
            power: PowerConfig::Linear,
            seed: 999,
        };
        spec = spec.with_seed(7);
        spec.run.frames = frames;
        let scenario = Scenario::from_spec(&spec).expect("valid spec");
        let start = Instant::now();
        let outcome = scenario.run().expect("runs");
        let elapsed = start.elapsed();
        let slots_per_sec = outcome.slots as f64 / elapsed.as_secs_f64();
        println!(
            "scenario_sinr_throughput/m={m}: {:.3e} slots/s  \
             ({} slots in {:.2?}, {} delivered)",
            slots_per_sec, outcome.slots, elapsed, outcome.report.delivered
        );
    }
}

criterion_group!(
    benches,
    bench_scenario_overhead,
    bench_sinr_scenario_throughput
);
criterion_main!(benches);
