//! E7/E8 benchmark: Algorithm 2 and Round-Robin-Withholding schedule
//! computation on the multiple-access channel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dps_core::feasibility::SingleChannelFeasibility;
use dps_core::ids::{LinkId, PacketId};
use dps_core::rng::split_stream;
use dps_core::staticsched::{run_static, Request, StaticScheduler};
use dps_mac::algorithm2::SymmetricMacScheduler;
use dps_mac::round_robin::RoundRobinWithholding;

fn requests(n: usize) -> Vec<Request> {
    (0..n)
        .map(|i| Request {
            packet: PacketId(i as u64),
            link: LinkId((i % 16) as u32),
        })
        .collect()
}

fn bench_mac(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_mac_static");
    group.sample_size(10);
    let feas = SingleChannelFeasibility::new();
    for &n in &[256usize, 1024] {
        let reqs = requests(n);
        let alg2 = SymmetricMacScheduler::default_params();
        group.bench_with_input(BenchmarkId::new("algorithm2", n), &n, |b, _| {
            b.iter(|| {
                let mut rng = split_stream(3, n as u64);
                let budget = 8 * alg2.slots_needed(n as f64, n);
                run_static(&alg2, &reqs, n as f64, &feas, budget, &mut rng)
            })
        });
        let rrw = RoundRobinWithholding::new(16);
        group.bench_with_input(BenchmarkId::new("round_robin", n), &n, |b, _| {
            b.iter(|| {
                let mut rng = split_stream(4, n as u64);
                run_static(&rrw, &reqs, n as f64, &feas, n + 17, &mut rng)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mac);
criterion_main!(benches);
