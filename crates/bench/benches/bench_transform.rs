//! E1 benchmark: static schedule computation — raw uniform-rate vs the
//! Algorithm 1 transformation vs the two-stage scheduler on a dense MAC
//! instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dps_core::feasibility::ThresholdFeasibility;
use dps_core::ids::{LinkId, PacketId};
use dps_core::interference::CompleteInterference;
use dps_core::rng::split_stream;
use dps_core::staticsched::two_stage::TwoStageDecayScheduler;
use dps_core::staticsched::uniform_rate::UniformRateScheduler;
use dps_core::staticsched::{run_static, Request, StaticScheduler};
use dps_core::transform::DenseTransform;

fn mac_requests(n: usize, m: usize) -> Vec<Request> {
    (0..n)
        .map(|i| Request {
            packet: PacketId(i as u64),
            link: LinkId((i % m) as u32),
        })
        .collect()
}

fn bench_schedulers(c: &mut Criterion) {
    let m = 8;
    let mut group = c.benchmark_group("e1_static_schedule");
    group.sample_size(10);
    for &n in &[128usize, 512] {
        let requests = mac_requests(n, m);
        let feas = ThresholdFeasibility::new(CompleteInterference::new(m));
        let i = n as f64;
        let raw = UniformRateScheduler::new();
        group.bench_with_input(BenchmarkId::new("uniform_rate", n), &n, |b, _| {
            b.iter(|| {
                let mut rng = split_stream(1, n as u64);
                let budget = 16 * raw.slots_needed(i, n);
                run_static(&raw, &requests, i, &feas, budget, &mut rng)
            })
        });
        let transformed = DenseTransform::new(raw, m).with_chi(8.0);
        group.bench_with_input(BenchmarkId::new("dense_transform", n), &n, |b, _| {
            b.iter(|| {
                let mut rng = split_stream(2, n as u64);
                let budget = 16 * transformed.slots_needed(i, n);
                run_static(&transformed, &requests, i, &feas, budget, &mut rng)
            })
        });
        let two_stage = TwoStageDecayScheduler::new(m);
        group.bench_with_input(BenchmarkId::new("two_stage", n), &n, |b, _| {
            b.iter(|| {
                let mut rng = split_stream(3, n as u64);
                let budget = 16 * two_stage.slots_needed(i, n);
                run_static(&two_stage, &requests, i, &feas, budget, &mut rng)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
