//! E2/E3/E4 benchmark: throughput of the dynamic frame protocol — slots
//! simulated per second on a packet-routing substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dps_bench::setup::{dynamic_run, injector_at_rate};
use dps_core::staticsched::greedy::GreedyPerLink;
use dps_routing::workloads::RoutingSetup;
use dps_sim::runner::{run_simulation, SimulationConfig};

fn bench_frame_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_dynamic_protocol");
    group.sample_size(10);
    for &num_links in &[8usize, 32] {
        let setup = RoutingSetup::ring(num_links, 2).expect("valid ring");
        let frames = 20u64;
        let run = dynamic_run(
            GreedyPerLink::new(),
            setup.network.significant_size(),
            num_links,
            0.9,
        )
        .expect("valid config");
        let slots = frames * run.config.frame_len as u64;
        group.throughput(Throughput::Elements(slots));
        group.bench_with_input(BenchmarkId::new("ring", num_links), &num_links, |b, _| {
            b.iter(|| {
                let mut run = dynamic_run(
                    GreedyPerLink::new(),
                    setup.network.significant_size(),
                    num_links,
                    0.9,
                )
                .expect("valid config");
                let mut injector =
                    injector_at_rate(setup.routes.clone(), &setup.model, 0.7).expect("rate");
                run_simulation(
                    &mut run.protocol,
                    &mut injector,
                    &setup.feasibility,
                    SimulationConfig::new(slots, 1),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_frame_protocol);
criterion_main!(benches);
