//! Frame-protocol bookkeeping benchmark: the Section-4 slot loop on a
//! no-op feasibility oracle.
//!
//! PR 4 removed the injector floor from two-stage sweep cells; ROADMAP
//! names protocol-side frame bookkeeping as the new dominant cost. This
//! bench isolates exactly that: a `DynamicProtocol<GreedyPerLink>` over a
//! line of `m` links with 4-hop routes, driven by a deterministic
//! round-robin arrival pattern against an oracle that acknowledges every
//! attempt without touching the RNG. Every cycle measured here is
//! request building, attempt building, acknowledgement bookkeeping,
//! the main→clean-up rebuild and delivery reporting — no injector
//! sampling, no interference arithmetic.
//!
//! Measurements, written to `BENCH_frame.json` at the workspace root
//! (override with `BENCH_FRAME_OUT`), for m ∈ {64, 256, 1024}:
//!
//! * **slot throughput** of the columnar `Protocol::step` path
//!   (slice arrivals, reused `SlotOutcome`);
//! * the same loop through the legacy `on_slot` shim (owned
//!   `Vec<Packet>` per slot, owned outcome per slot) for reference;
//! * the pre-refactor baseline captured on the `Arc`-per-packet
//!   `ActivePacket`/`FailedPacket` frame loop, hardcoded below.
//!
//! CI runs this in fast mode (smaller slot budget, one measurement run)
//! as a perf-harness smoke test; the checked-in file is the PR baseline,
//! captured in full mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dps_core::dynamic::{DynamicProtocol, FrameConfig};
use dps_core::feasibility::{Attempt, Feasibility};
use dps_core::graph::line_network;
use dps_core::ids::{LinkId, PacketId};
use dps_core::packet::Packet;
use dps_core::path::RoutePath;
use dps_core::protocol::{Protocol, SlotOutcome};
use dps_core::rng::split_stream;
use dps_core::staticsched::greedy::GreedyPerLink;
use rand::RngCore;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pre-refactor baseline (slots/s), captured on the seed commit's frame
/// loop (`ActivePacket`/`FailedPacket` owning `Packet`s, per-slot owned
/// arrivals and outcome) with this exact workload on the 1-CPU bench
/// host. `speedup` in the JSON is measured step-path throughput over
/// this number.
const PRE_REFACTOR_SLOTS_PER_SEC: [(usize, f64); 3] =
    [(64, 640_800.0), (256, 68_090.0), (1024, 5_394.0)];

const HOPS: usize = 4;

/// Acknowledges every attempt; consumes no randomness. The no-op
/// physical layer that makes the protocol's own bookkeeping the only
/// measured cost.
struct AllSucceed;

impl Feasibility for AllSucceed {
    fn successes(&self, attempts: &[Attempt], _rng: &mut dyn RngCore) -> Vec<bool> {
        vec![true; attempts.len()]
    }

    fn successes_into(&self, attempts: &[Attempt], out: &mut Vec<bool>, _rng: &mut dyn RngCore) {
        out.clear();
        out.resize(attempts.len(), true);
    }
}

/// The bookkeeping-dense frame geometry: short frames keep the
/// begin-frame/rebuild transitions (the refactored paths) hot relative
/// to idle slots.
fn config(m: usize) -> FrameConfig {
    FrameConfig {
        m,
        lambda: 0.5,
        epsilon: 0.5,
        frame_len: 12,
        j_bound: m as f64,
        main_budget: 6,
        cleanup_budget: 5,
        cleanup_select_prob: (4.0 / m as f64).min(1.0),
        cleanup_bound: 4.0,
    }
}

/// All 4-hop routes on the m-link line: m − 3 distinct `Arc`s, so at
/// m = 1024 the route set does not fit a cache line — the pointer-chase
/// the interned route table removes.
fn routes(m: usize) -> Vec<Arc<RoutePath>> {
    let network = line_network(m);
    (0..=m - HOPS)
        .map(|start| {
            RoutePath::new(
                &network,
                (start..start + HOPS).map(|i| LinkId(i as u32)).collect(),
            )
            .expect("line routes are connected")
            .shared()
        })
        .collect()
}

fn protocol(m: usize) -> DynamicProtocol<GreedyPerLink> {
    DynamicProtocol::new(GreedyPerLink::new(), config(m), m)
}

/// Deterministic round-robin arrivals: `m/32` packets per slot cycling
/// through the route family (≈ 1.5 packets per link per frame, inside
/// the main budget, so steady state has no failures and the active set
/// holds ≈ 4 frames of arrivals in flight).
struct ArrivalPattern {
    routes: Vec<Arc<RoutePath>>,
    per_slot: usize,
    next_route: usize,
    next_id: u64,
}

impl ArrivalPattern {
    fn new(m: usize) -> Self {
        ArrivalPattern {
            routes: routes(m),
            per_slot: (m / 32).max(1),
            next_route: 0,
            next_id: 0,
        }
    }

    fn fill(&mut self, slot: u64, out: &mut Vec<Packet>) {
        out.clear();
        for _ in 0..self.per_slot {
            let route = self.routes[self.next_route].clone();
            self.next_route = (self.next_route + 1) % self.routes.len();
            out.push(Packet::new(PacketId(self.next_id), route, slot));
            self.next_id += 1;
        }
    }
}

/// Drives the frame loop through the legacy owned-`Vec` entry point.
fn drive_shim(m: usize, slots: u64) -> (Duration, u64) {
    let mut protocol = protocol(m);
    let mut pattern = ArrivalPattern::new(m);
    let phy = AllSucceed;
    let mut rng = split_stream(7, 0);
    let mut arrivals = Vec::new();
    let mut delivered = 0u64;
    let start = Instant::now();
    for slot in 0..slots {
        pattern.fill(slot, &mut arrivals);
        let outcome = protocol.on_slot(slot, std::mem::take(&mut arrivals), &phy, &mut rng);
        delivered += outcome.delivered.len() as u64;
    }
    (start.elapsed(), delivered)
}

/// Drives the frame loop through the columnar hot path:
/// `Protocol::step` with a reused arrivals buffer and a reused outcome.
fn drive_hot(m: usize, slots: u64) -> (Duration, u64) {
    let mut protocol = protocol(m);
    let mut pattern = ArrivalPattern::new(m);
    let phy = AllSucceed;
    let mut rng = split_stream(7, 0);
    let mut arrivals = Vec::new();
    let mut outcome = SlotOutcome::empty();
    let mut delivered = 0u64;
    let start = Instant::now();
    for slot in 0..slots {
        pattern.fill(slot, &mut arrivals);
        protocol.step(slot, &arrivals, &phy, &mut rng, &mut outcome);
        delivered += outcome.delivered.len() as u64;
    }
    (start.elapsed(), delivered)
}

/// Median over `runs` measurements of `f`.
fn measure(f: &dyn Fn(usize, u64) -> (Duration, u64), m: usize, slots: u64, runs: usize) -> f64 {
    let mut samples = Vec::with_capacity(runs);
    let mut delivered = 0;
    for _ in 0..runs {
        let (elapsed, d) = f(m, slots);
        samples.push(elapsed);
        delivered = d;
    }
    assert!(delivered > 0, "bench workload must deliver packets");
    samples.sort();
    slots as f64 / samples[samples.len() / 2].as_secs_f64()
}

fn bench_frame_bookkeeping(c: &mut Criterion) {
    let fast_mode = std::env::var("CRITERION_MEASUREMENT_MS").is_ok();
    let (slots, runs) = if fast_mode {
        (20_000u64, 1usize)
    } else {
        (200_000, 3)
    };

    let mut group = c.benchmark_group("frame_bookkeeping");
    group.sample_size(10);
    for m in [64usize, 256, 1024] {
        group.bench_with_input(BenchmarkId::new("step", m), &m, |b, &m| {
            let mut protocol = protocol(m);
            let mut pattern = ArrivalPattern::new(m);
            let phy = AllSucceed;
            let mut rng = split_stream(7, 0);
            let mut arrivals = Vec::new();
            let mut outcome = SlotOutcome::empty();
            let mut slot = 0u64;
            b.iter(|| {
                pattern.fill(slot, &mut arrivals);
                protocol.step(slot, &arrivals, &phy, &mut rng, &mut outcome);
                slot += 1;
                outcome.delivered.len()
            })
        });
    }
    group.finish();

    let mut cells = Vec::new();
    for m in [64usize, 256, 1024] {
        let hot = measure(&drive_hot, m, slots, runs);
        let shim = measure(&drive_shim, m, slots, runs);
        let before = PRE_REFACTOR_SLOTS_PER_SEC
            .iter()
            .find(|&&(bm, _)| bm == m)
            .map(|&(_, v)| v)
            .unwrap_or(0.0);
        let speedup = if before > 0.0 { hot / before } else { 1.0 };
        println!(
            "frame_bookkeeping/m={m}: step {hot:.3e} slots/s, on_slot shim {shim:.3e} slots/s, \
             pre-refactor {before:.3e} slots/s, speedup {speedup:.2}x"
        );
        cells.push(format!(
            "    {{\n      \"m\": {m},\n      \"slots\": {slots},\n      \
             \"step_slots_per_sec\": {hot:.1},\n      \
             \"on_slot_shim_slots_per_sec\": {shim:.1},\n      \
             \"pre_refactor_slots_per_sec\": {before:.1},\n      \
             \"speedup_vs_pre_refactor\": {speedup:.2}\n    }}"
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"bench_frame\",\n  \"metric\": \"frame-protocol bookkeeping slot \
         throughput on a no-op feasibility oracle (line of m links, 4-hop routes, m/32 \
         round-robin arrivals per slot, 12-slot frames); `step` = columnar slice/reused-buffer \
         path, `on_slot_shim` = legacy owned-Vec entry point over the same core, \
         `pre_refactor` = seed frame loop (Arc-owning ActivePacket/FailedPacket), captured \
         once on the 1-CPU bench host (timing noise +/-30%)\",\n  \"cells\": [\n{}\n  ]\n}}\n",
        cells.join(",\n")
    );
    let path = std::env::var("BENCH_FRAME_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_frame.json").to_string()
    });
    match std::fs::write(&path, &json) {
        Ok(()) => println!("frame_bookkeeping: baseline written to {path}"),
        Err(e) => eprintln!("frame_bookkeeping: could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_frame_bookkeeping);
criterion_main!(benches);
