//! Microbenchmarks of the core data-structure kernels every experiment
//! leans on: interference-measure evaluation, row products, window
//! validation, and potential-tail statistics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dps_core::ids::LinkId;
use dps_core::interference::{CompleteInterference, DenseInterference, InterferenceModel};
use dps_core::load::LinkLoad;
use dps_core::potential::PotentialSeries;

fn bench_measure(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_measure");
    for &m in &[64usize, 256] {
        let dense = DenseInterference::from_fn(m, |on, from| {
            1.0 / (1.0 + (on.index() as f64 - from.index() as f64).abs())
        });
        let mut load = LinkLoad::new(m);
        for i in (0..m).step_by(3) {
            load.add(LinkId(i as u32), (i % 5) as f64 + 1.0);
        }
        group.bench_with_input(BenchmarkId::new("dense_measure", m), &m, |b, _| {
            b.iter(|| dense.measure(&load))
        });
        let complete = CompleteInterference::new(m);
        group.bench_with_input(BenchmarkId::new("complete_measure", m), &m, |b, _| {
            b.iter(|| complete.measure(&load))
        });
        group.bench_with_input(BenchmarkId::new("row_load", m), &m, |b, _| {
            b.iter(|| dense.row_load(LinkId(0), &load))
        });
    }
    group.finish();
}

fn bench_potential(c: &mut Criterion) {
    let mut series = PotentialSeries::new();
    for i in 0..10_000u64 {
        series.record(i % 17);
    }
    c.bench_function("micro_potential_tail_slope", |b| {
        b.iter(|| series.log_tail_slope())
    });
}

criterion_group!(benches, bench_measure, bench_potential);
criterion_main!(benches);
