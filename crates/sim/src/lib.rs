//! Slotted discrete-time simulation engine for dynamic packet scheduling.
//!
//! Drives a [`dps_core::protocol::Protocol`] with an
//! [`dps_core::injection::Injector`] against a
//! [`dps_core::feasibility::Feasibility`] oracle, one slot at a time, and
//! collects the metrics every experiment in this workspace reports:
//! backlog time series, latency statistics by path length, potential
//! samples, and throughput counters.
//!
//! * [`runner`] — the slot loop, its event-driven fast path, and
//!   [`runner::SimulationReport`];
//! * [`events`] — the event queue and clock the fast path is built from;
//! * [`stats`] — summary statistics and least-squares fits;
//! * [`stability`] — the bounded-vs-growing backlog verdict used for the
//!   stability-threshold experiments;
//! * [`table`] — fixed-width text and CSV rendering of experiment tables.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod events;
pub mod parallel;
pub mod runner;
pub mod stability;
pub mod stats;
pub mod table;
pub mod trace;

/// Convenience re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::events::{Event, EventKind, EventQueue, SimClock};
    pub use crate::parallel::{parallel_map, run_repetitions, AggregateReport};
    pub use crate::runner::{run_simulation, SimulationConfig, SimulationReport};
    pub use crate::stability::{classify_stability, StabilityVerdict};
    pub use crate::stats::{linear_fit, quantile, Summary};
    pub use crate::table::Table;
}
