//! The slot loop: inject, schedule, observe — with an event-driven fast
//! path that jumps over provably inert slot ranges.
//!
//! Every run starts on the classic per-slot loop. When
//! [`SimulationConfig::events`] is on (the default) the loop additionally
//! queries the hint methods after each stepped slot —
//! [`Protocol::next_event_slot`] and `Injector::next_active_slot` — and,
//! when both hints agree that a range of upcoming slots can neither
//! receive arrivals nor do anything observable, replaces that range with
//! one [`Protocol::skip_idle_slots`] call and a clock jump. Skipped slots
//! consume no RNG and change no observable state, so a run produces the
//! same [`SimulationReport`] (up to
//! [`SimulationReport::idle_slots_skipped`], an engine diagnostic) and
//! the same trace stream (skips are recorded explicitly; see
//! [`crate::trace::TraceRecorder::expand`]) whether the fast path engaged
//! or not. Any unavailable hint (`None`) simply keeps the loop on per-slot
//! stepping — correctness never depends on a hint being present.

use crate::events::{Event, EventKind, EventQueue, SimClock};
use crate::stats::Summary;
use dps_core::feasibility::Feasibility;
use dps_core::ids::PacketId;
use dps_core::injection::Injector;
use dps_core::packet::Packet;
use dps_core::potential::PotentialSeries;
use dps_core::protocol::{InternedArrival, Protocol, SlotOutcome};
use dps_core::rng::split_stream;
use dps_core::route_table::RouteId;

/// Configuration of one simulation run.
#[derive(Clone, Copy, Debug)]
pub struct SimulationConfig {
    /// Number of slots to simulate.
    pub slots: u64,
    /// Root seed; combined with `stream` for independent repetitions.
    pub seed: u64,
    /// RNG stream index (repetition number).
    pub stream: u64,
    /// Record the backlog every this many slots.
    pub sample_every: u64,
    /// Whether the event-driven fast path may skip inert slot ranges.
    /// Results are identical either way; turning this off forces the
    /// per-slot reference loop (useful for differential testing).
    pub events: bool,
}

impl SimulationConfig {
    /// A run of `slots` slots with the given seed, sampling the backlog
    /// roughly 512 times. The event-driven fast path is enabled.
    pub fn new(slots: u64, seed: u64) -> Self {
        SimulationConfig {
            slots,
            seed,
            stream: 0,
            sample_every: (slots / 512).max(1),
            events: true,
        }
    }

    /// Selects an independent repetition stream.
    pub fn with_stream(mut self, stream: u64) -> Self {
        self.stream = stream;
        self
    }

    /// Overrides the backlog sampling interval.
    ///
    /// # Panics
    ///
    /// Panics if `sample_every == 0`.
    pub fn with_sample_every(mut self, sample_every: u64) -> Self {
        assert!(sample_every > 0, "sampling interval must be positive");
        self.sample_every = sample_every;
        self
    }

    /// Enables or disables the event-driven fast path.
    pub fn with_events(mut self, events: bool) -> Self {
        self.events = events;
        self
    }
}

/// Everything a run produced.
#[derive(Clone, Debug)]
pub struct SimulationReport {
    /// Total packets injected.
    pub injected: u64,
    /// Total packets delivered.
    pub delivered: u64,
    /// Backlog samples as `(slot, backlog)` pairs.
    pub backlog_series: Vec<(u64, usize)>,
    /// Final backlog.
    pub final_backlog: usize,
    /// Latencies of delivered packets, in slots.
    pub latencies: Vec<u64>,
    /// Path length of each delivered packet, aligned with `latencies`.
    pub path_lens: Vec<usize>,
    /// Potential samples (one per backlog sample).
    pub potential: PotentialSeries,
    /// Total transmission attempts.
    pub attempts: u64,
    /// Total successful transmissions.
    pub successes: u64,
    /// Number of slots simulated.
    pub slots: u64,
    /// Slots covered by event-engine jumps instead of being stepped
    /// individually. Diagnostic only: skipped slots are provably inert,
    /// so every other report field is independent of this count (a
    /// per-slot run of the same configuration reports 0 here and is
    /// otherwise identical).
    pub idle_slots_skipped: u64,
}

impl SimulationReport {
    /// Delivered fraction of injected packets.
    pub fn delivery_ratio(&self) -> f64 {
        if self.injected == 0 {
            return 1.0;
        }
        self.delivered as f64 / self.injected as f64
    }

    /// Summary of all delivery latencies.
    pub fn latency_summary(&self) -> Summary {
        let xs: Vec<f64> = self.latencies.iter().map(|&l| l as f64).collect();
        Summary::of(&xs)
    }

    /// Summary of delivery latencies restricted to packets of path length
    /// `d` — the grouping Theorem 8's `O(d·T)` bound is stated over.
    pub fn latency_summary_for_path_len(&self, d: usize) -> Summary {
        let xs: Vec<f64> = self
            .latencies
            .iter()
            .zip(&self.path_lens)
            .filter(|(_, &len)| len == d)
            .map(|(&l, _)| l as f64)
            .collect();
        Summary::of(&xs)
    }

    /// Mean backlog over the recorded samples.
    pub fn mean_backlog(&self) -> f64 {
        if self.backlog_series.is_empty() {
            return 0.0;
        }
        self.backlog_series
            .iter()
            .map(|&(_, b)| b as f64)
            .sum::<f64>()
            / self.backlog_series.len() as f64
    }

    /// Fraction of attempts that succeeded.
    pub fn success_ratio(&self) -> f64 {
        if self.attempts == 0 {
            return 1.0;
        }
        self.successes as f64 / self.attempts as f64
    }
}

/// Runs `protocol` for `config.slots` slots, feeding it `injector`'s
/// packets and judging attempts with `phy`.
///
/// Packet ids are assigned densely in injection order; packets are stamped
/// with their injection slot, so reported latencies include all queueing
/// (and, under the adversarial wrapper, the random initial delays — as in
/// Theorem 11).
pub fn run_simulation<P, I>(
    protocol: &mut P,
    injector: &mut I,
    phy: &dyn Feasibility,
    config: SimulationConfig,
) -> SimulationReport
where
    P: Protocol + ?Sized,
    I: Injector + ?Sized,
{
    run_simulation_inner(protocol, injector, phy, config, None)
}

/// Like [`run_simulation`], additionally recording every slot into
/// `trace` (which keeps a bounded window; see
/// [`crate::trace::TraceRecorder`]).
pub fn run_simulation_traced<P, I>(
    protocol: &mut P,
    injector: &mut I,
    phy: &dyn Feasibility,
    config: SimulationConfig,
    trace: &mut crate::trace::TraceRecorder,
) -> SimulationReport
where
    P: Protocol + ?Sized,
    I: Injector + ?Sized,
{
    run_simulation_inner(protocol, injector, phy, config, Some(trace))
}

fn run_simulation_inner<P, I>(
    protocol: &mut P,
    injector: &mut I,
    phy: &dyn Feasibility,
    config: SimulationConfig,
    mut trace: Option<&mut crate::trace::TraceRecorder>,
) -> SimulationReport
where
    P: Protocol + ?Sized,
    I: Injector + ?Sized,
{
    let mut rng = split_stream(config.seed, config.stream);
    let mut report = SimulationReport {
        injected: 0,
        delivered: 0,
        backlog_series: Vec::new(),
        final_backlog: 0,
        latencies: Vec::new(),
        path_lens: Vec::new(),
        potential: PotentialSeries::new(),
        attempts: 0,
        successes: 0,
        slots: config.slots,
        idle_slots_skipped: 0,
    };
    let mut next_id = 0u64;
    // Reused across slots so the whole run is allocation-free in steady
    // state: the injector writes routes into `route_buf` (or route ids
    // into `id_buf` on the interned lane), arrivals are stamped into
    // `arrivals`/`interned_arrivals`, and the protocol writes each
    // slot's result into `outcome` (`Protocol::step`'s
    // `SlotOutcome::clear` reuse contract).
    let mut route_buf = Vec::new();
    let mut arrivals: Vec<Packet> = Vec::new();
    let mut id_buf: Vec<RouteId> = Vec::new();
    let mut interned_arrivals: Vec<InternedArrival> = Vec::new();
    let mut outcome = SlotOutcome::empty();
    // The interned lane is picked once per run: both sides must opt in,
    // and the choice is observable only through performance (the core
    // crate pins a golden fingerprint proving lane equivalence).
    let interned = injector.interned_capable() && protocol.route_interner().is_some();
    let mut clock = SimClock::new(config.slots);
    let mut queue = EventQueue::new();
    // Runtime invariant guard cadence: the checks walk the whole
    // protocol state (store, route table, every buffered packet), so
    // asserting them after *every* slot turns an O(slots) run quadratic
    // — worse in overloaded runs whose backlog itself grows linearly.
    // Check densely while the state is young — that is where new
    // bookkeeping bugs surface in exhaustive-model counterexamples too
    // — then back off geometrically (interval ∝ elapsed slots), which
    // keeps the total guard cost linear whatever the backlog does. The
    // frame-boundary guard inside the protocol is unaffected.
    #[cfg(feature = "check-invariants")]
    let (mut stepped_slots, mut next_check) = (0u64, 0u64);
    while !clock.is_done() {
        let slot = clock.now();
        let injected_now = if interned {
            {
                let table = protocol
                    .route_interner()
                    .expect("interned lane is gated on route_interner()");
                injector.inject_interned_into(slot, &mut rng, table, &mut id_buf);
            }
            interned_arrivals.clear();
            interned_arrivals.extend(id_buf.drain(..).map(|route| {
                let arrival = InternedArrival {
                    id: PacketId(next_id),
                    route,
                    injected_at: slot,
                };
                next_id += 1;
                arrival
            }));
            protocol.step_interned(slot, &interned_arrivals, phy, &mut rng, &mut outcome);
            interned_arrivals.len()
        } else {
            injector.inject_into(slot, &mut rng, &mut route_buf);
            arrivals.clear();
            arrivals.extend(route_buf.drain(..).map(|path| {
                let packet = Packet::new(PacketId(next_id), path, slot);
                next_id += 1;
                packet
            }));
            protocol.step(slot, &arrivals, phy, &mut rng, &mut outcome);
            arrivals.len()
        };
        // Runtime invariant guard: with the `check-invariants` feature
        // on, stepped slots re-prove the protocol's bookkeeping
        // identities (dense early, sampled later — see the cadence note
        // above), so a long unattended run fails loudly near the first
        // breach instead of silently producing corrupt statistics.
        #[cfg(feature = "check-invariants")]
        {
            stepped_slots += 1;
            if stepped_slots >= next_check {
                if let Err(violation) = protocol.check_invariants() {
                    panic!("after slot {slot}: {violation}");
                }
                next_check = if stepped_slots < 1024 {
                    stepped_slots + 1
                } else {
                    stepped_slots + (stepped_slots / 16).max(64)
                };
            }
        }
        report.injected += injected_now as u64;
        report.attempts += outcome.attempts as u64;
        report.successes += outcome.successes as u64;
        let delivered_now = outcome.delivered.len();
        for d in &outcome.delivered {
            report.delivered += 1;
            report.latencies.push(d.latency());
            report.path_lens.push(d.path_len);
        }
        if let Some(trace) = trace.as_deref_mut() {
            trace.record(crate::trace::SlotRecord {
                slot,
                injected: injected_now,
                attempts: outcome.attempts,
                successes: outcome.successes,
                delivered: delivered_now,
                backlog: protocol.backlog(),
            });
        }
        if slot.is_multiple_of(config.sample_every) {
            report.backlog_series.push((slot, protocol.backlog()));
            report.potential.record(protocol.potential());
        }
        clock.tick();
        if !config.events || clock.is_done() {
            continue;
        }
        // Event-driven fast path: both hints must be available, and both
        // must clear the next slot, for a jump to be sound. The protocol
        // hint covers slots `slot+1..proto_next` (inert given no
        // arrivals); the injector hint covers `now..inj_next` (no
        // arrivals). Either `None` falls back to per-slot stepping.
        let Some(proto_next) = protocol.next_event_slot(slot) else {
            continue;
        };
        let now = clock.now();
        let Some(inj_next) = injector.next_active_slot(now, &mut rng) else {
            continue;
        };
        if proto_next.min(inj_next) <= now {
            continue;
        }
        queue.clear();
        queue.push(Event {
            slot: inj_next,
            kind: EventKind::Injection,
        });
        queue.push(Event {
            slot: proto_next,
            kind: EventKind::Protocol,
        });
        queue.push(Event {
            slot: config.slots,
            kind: EventKind::End,
        });
        let target = queue.peek_slot().expect("queue was just filled");
        if target <= now {
            continue;
        }
        let gap = target - now;
        protocol.skip_idle_slots(now, gap);
        report.idle_slots_skipped += gap;
        // A bulk skip must land in a state as consistent as stepping
        // each inert slot would have.
        #[cfg(feature = "check-invariants")]
        if let Err(violation) = protocol.check_invariants() {
            panic!("after skipping slots {now}..{target}: {violation}");
        }
        let backlog = protocol.backlog();
        if let Some(trace) = trace.as_deref_mut() {
            trace.record_skip(crate::trace::SkipRecord {
                from_slot: now,
                slots: gap,
                backlog,
            });
        }
        // Replay the periodic samples the per-slot loop would have taken
        // inside the skipped range: skipped slots are inert, so backlog
        // and potential are constant across them and the series stays
        // bit-for-bit identical without stepping the sampled slots.
        let potential = protocol.potential();
        let mut sample_slot = now.next_multiple_of(config.sample_every);
        while sample_slot < target {
            report.backlog_series.push((sample_slot, backlog));
            report.potential.record(potential);
            sample_slot += config.sample_every;
        }
        clock.advance_to(target);
    }
    // The terminal state is always verified, whatever the sampling
    // cadence landed on.
    #[cfg(feature = "check-invariants")]
    if let Err(violation) = protocol.check_invariants() {
        panic!("at end of run ({} slots): {violation}", config.slots);
    }
    report.final_backlog = protocol.backlog();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_core::dynamic::{DynamicProtocol, FrameConfig};
    use dps_core::feasibility::PerLinkFeasibility;
    use dps_core::ids::LinkId;
    use dps_core::injection::stochastic::uniform_generators;
    use dps_core::path::RoutePath;
    use dps_core::staticsched::greedy::GreedyPerLink;

    fn setup(
        lambda: f64,
    ) -> (
        DynamicProtocol<GreedyPerLink>,
        dps_core::injection::stochastic::StochasticInjector,
        PerLinkFeasibility,
    ) {
        let num_links = 3;
        let config = FrameConfig::tuned(&GreedyPerLink::new(), num_links, 0.9).unwrap();
        let protocol = DynamicProtocol::new(GreedyPerLink::new(), config, num_links);
        let routes: Vec<_> = (0..num_links as u32)
            .map(|l| RoutePath::single_hop(LinkId(l)).shared())
            .collect();
        let injector = uniform_generators(routes, lambda).unwrap();
        (protocol, injector, PerLinkFeasibility::new(num_links))
    }

    #[test]
    fn report_conserves_packets() {
        let (mut protocol, mut injector, phy) = setup(0.5);
        let report = run_simulation(
            &mut protocol,
            &mut injector,
            &phy,
            SimulationConfig::new(20_000, 42),
        );
        assert!(report.injected > 0);
        assert_eq!(
            report.delivered + report.final_backlog as u64,
            report.injected
        );
        assert_eq!(report.latencies.len() as u64, report.delivered);
    }

    #[test]
    fn different_streams_differ_same_stream_repeats() {
        let run = |stream: u64| {
            let (mut protocol, mut injector, phy) = setup(0.5);
            run_simulation(
                &mut protocol,
                &mut injector,
                &phy,
                SimulationConfig::new(5_000, 42).with_stream(stream),
            )
        };
        let a = run(0);
        let b = run(0);
        let c = run(1);
        assert_eq!(a.injected, b.injected, "same stream must reproduce");
        assert_eq!(a.delivered, b.delivered);
        assert_ne!(
            (a.injected, a.delivered),
            (c.injected, c.delivered),
            "different streams should diverge"
        );
    }

    #[test]
    fn backlog_series_is_sampled() {
        let (mut protocol, mut injector, phy) = setup(0.3);
        let report = run_simulation(
            &mut protocol,
            &mut injector,
            &phy,
            SimulationConfig::new(1000, 1).with_sample_every(100),
        );
        assert_eq!(report.backlog_series.len(), 10);
        assert_eq!(report.potential.len(), 10);
        assert_eq!(report.backlog_series[0].0, 0);
        assert_eq!(report.backlog_series[9].0, 900);
    }

    #[test]
    fn latency_summaries_by_path_length() {
        let (mut protocol, mut injector, phy) = setup(0.5);
        let report = run_simulation(
            &mut protocol,
            &mut injector,
            &phy,
            SimulationConfig::new(20_000, 3),
        );
        let all = report.latency_summary();
        let d1 = report.latency_summary_for_path_len(1);
        assert_eq!(all.count, d1.count, "all routes here have one hop");
        assert_eq!(report.latency_summary_for_path_len(7).count, 0);
        assert!(all.mean > 0.0);
    }

    #[test]
    fn traced_run_matches_untraced_and_records_slots() {
        let (mut protocol, mut injector, phy) = setup(0.4);
        let mut trace = crate::trace::TraceRecorder::new(256);
        let cfg = SimulationConfig::new(1000, 11);
        let traced =
            super::run_simulation_traced(&mut protocol, &mut injector, &phy, cfg, &mut trace);
        let (mut protocol2, mut injector2, phy2) = setup(0.4);
        let untraced = run_simulation(&mut protocol2, &mut injector2, &phy2, cfg);
        assert_eq!(traced.injected, untraced.injected);
        assert_eq!(traced.delivered, untraced.delivered);
        assert_eq!(trace.len(), 256, "window keeps the last 256 of 1000 slots");
        assert_eq!(trace.dropped(), 1000 - 256);
        let total_injected_in_window: usize = trace.records().map(|r| r.injected).sum();
        assert!(total_injected_in_window > 0);
    }

    #[test]
    fn ratios_behave_at_edges() {
        let empty = SimulationReport {
            injected: 0,
            delivered: 0,
            backlog_series: Vec::new(),
            final_backlog: 0,
            latencies: Vec::new(),
            path_lens: Vec::new(),
            potential: PotentialSeries::new(),
            attempts: 0,
            successes: 0,
            slots: 0,
            idle_slots_skipped: 0,
        };
        assert_eq!(empty.delivery_ratio(), 1.0);
        assert_eq!(empty.success_ratio(), 1.0);
        assert_eq!(empty.mean_backlog(), 0.0);
    }

    /// Asserts two reports are identical in every observable field
    /// (everything except the `idle_slots_skipped` diagnostic).
    fn assert_reports_equal(a: &SimulationReport, b: &SimulationReport) {
        assert_eq!(a.injected, b.injected);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.backlog_series, b.backlog_series);
        assert_eq!(a.final_backlog, b.final_backlog);
        assert_eq!(a.latencies, b.latencies);
        assert_eq!(a.path_lens, b.path_lens);
        assert_eq!(a.potential.samples(), b.potential.samples());
        assert_eq!(a.attempts, b.attempts);
        assert_eq!(a.successes, b.successes);
        assert_eq!(a.slots, b.slots);
    }

    fn sparse_setup(
        lambda: f64,
    ) -> (
        DynamicProtocol<GreedyPerLink>,
        dps_core::injection::batch::BatchStochasticInjector,
        PerLinkFeasibility,
    ) {
        let num_links = 3;
        let config = FrameConfig::tuned(&GreedyPerLink::new(), num_links, 0.9).unwrap();
        let protocol = DynamicProtocol::new(GreedyPerLink::new(), config, num_links);
        let routes: Vec<_> = (0..num_links as u32)
            .map(|l| RoutePath::single_hop(LinkId(l)).shared())
            .collect();
        let injector = dps_core::injection::batch::BatchStochasticInjector::new(
            uniform_generators(routes, lambda).unwrap(),
        );
        (protocol, injector, PerLinkFeasibility::new(num_links))
    }

    #[test]
    fn event_path_matches_slot_path_on_sparse_traffic() {
        let cfg = SimulationConfig::new(50_000, 9).with_sample_every(1000);
        let (mut p1, mut i1, phy) = sparse_setup(0.0004);
        let fast = run_simulation(&mut p1, &mut i1, &phy, cfg.with_events(true));
        let (mut p2, mut i2, phy2) = sparse_setup(0.0004);
        let slow = run_simulation(&mut p2, &mut i2, &phy2, cfg.with_events(false));
        assert_reports_equal(&fast, &slow);
        assert_eq!(slow.idle_slots_skipped, 0);
        assert!(
            fast.idle_slots_skipped > cfg.slots / 2,
            "sparse run skipped only {} of {} slots",
            fast.idle_slots_skipped,
            cfg.slots
        );
    }

    #[test]
    fn event_path_matches_slot_path_on_dense_traffic() {
        // Dense traffic never skips, but the event machinery must still
        // agree with the reference loop bit for bit.
        let cfg = SimulationConfig::new(8_000, 10);
        let (mut p1, mut i1, phy) = sparse_setup(0.5);
        let fast = run_simulation(&mut p1, &mut i1, &phy, cfg.with_events(true));
        let (mut p2, mut i2, phy2) = sparse_setup(0.5);
        let slow = run_simulation(&mut p2, &mut i2, &phy2, cfg.with_events(false));
        assert_reports_equal(&fast, &slow);
        assert!(fast.injected > 0);
    }

    #[test]
    fn hintless_injector_keeps_per_slot_stepping() {
        // The plain `StochasticInjector` exposes no calendar hint, so the
        // fast path must never engage even with events enabled.
        let (mut protocol, mut injector, phy) = setup(0.001);
        let report = run_simulation(
            &mut protocol,
            &mut injector,
            &phy,
            SimulationConfig::new(5_000, 13),
        );
        assert_eq!(report.idle_slots_skipped, 0);
    }

    #[test]
    fn traced_event_run_expands_to_the_per_slot_trace() {
        let cfg = SimulationConfig::new(20_000, 21).with_sample_every(500);
        let (mut p1, mut i1, phy) = sparse_setup(0.0005);
        let mut fast_trace = crate::trace::TraceRecorder::new(cfg.slots as usize);
        let fast = super::run_simulation_traced(
            &mut p1,
            &mut i1,
            &phy,
            cfg.with_events(true),
            &mut fast_trace,
        );
        let (mut p2, mut i2, phy2) = sparse_setup(0.0005);
        let mut slow_trace = crate::trace::TraceRecorder::new(cfg.slots as usize);
        let slow = super::run_simulation_traced(
            &mut p2,
            &mut i2,
            &phy2,
            cfg.with_events(false),
            &mut slow_trace,
        );
        assert_reports_equal(&fast, &slow);
        assert!(fast.idle_slots_skipped > 0, "sparse run must skip");
        assert!(
            fast_trace.skips().next().is_some(),
            "skips must be recorded explicitly"
        );
        // The fast trace holds far fewer per-slot records…
        assert!(fast_trace.len() < slow_trace.len());
        // …but expanding its skips reproduces the reference stream.
        let expanded = fast_trace.expand();
        let reference: Vec<_> = slow_trace.records().copied().collect();
        assert_eq!(expanded, reference);
    }
}
