//! The slot loop: inject, schedule, observe.

use crate::stats::Summary;
use dps_core::feasibility::Feasibility;
use dps_core::ids::PacketId;
use dps_core::injection::Injector;
use dps_core::packet::Packet;
use dps_core::potential::PotentialSeries;
use dps_core::protocol::{Protocol, SlotOutcome};
use dps_core::rng::split_stream;

/// Configuration of one simulation run.
#[derive(Clone, Copy, Debug)]
pub struct SimulationConfig {
    /// Number of slots to simulate.
    pub slots: u64,
    /// Root seed; combined with `stream` for independent repetitions.
    pub seed: u64,
    /// RNG stream index (repetition number).
    pub stream: u64,
    /// Record the backlog every this many slots.
    pub sample_every: u64,
}

impl SimulationConfig {
    /// A run of `slots` slots with the given seed, sampling the backlog
    /// roughly 512 times.
    pub fn new(slots: u64, seed: u64) -> Self {
        SimulationConfig {
            slots,
            seed,
            stream: 0,
            sample_every: (slots / 512).max(1),
        }
    }

    /// Selects an independent repetition stream.
    pub fn with_stream(mut self, stream: u64) -> Self {
        self.stream = stream;
        self
    }

    /// Overrides the backlog sampling interval.
    ///
    /// # Panics
    ///
    /// Panics if `sample_every == 0`.
    pub fn with_sample_every(mut self, sample_every: u64) -> Self {
        assert!(sample_every > 0, "sampling interval must be positive");
        self.sample_every = sample_every;
        self
    }
}

/// Everything a run produced.
#[derive(Clone, Debug)]
pub struct SimulationReport {
    /// Total packets injected.
    pub injected: u64,
    /// Total packets delivered.
    pub delivered: u64,
    /// Backlog samples as `(slot, backlog)` pairs.
    pub backlog_series: Vec<(u64, usize)>,
    /// Final backlog.
    pub final_backlog: usize,
    /// Latencies of delivered packets, in slots.
    pub latencies: Vec<u64>,
    /// Path length of each delivered packet, aligned with `latencies`.
    pub path_lens: Vec<usize>,
    /// Potential samples (one per backlog sample).
    pub potential: PotentialSeries,
    /// Total transmission attempts.
    pub attempts: u64,
    /// Total successful transmissions.
    pub successes: u64,
    /// Number of slots simulated.
    pub slots: u64,
}

impl SimulationReport {
    /// Delivered fraction of injected packets.
    pub fn delivery_ratio(&self) -> f64 {
        if self.injected == 0 {
            return 1.0;
        }
        self.delivered as f64 / self.injected as f64
    }

    /// Summary of all delivery latencies.
    pub fn latency_summary(&self) -> Summary {
        let xs: Vec<f64> = self.latencies.iter().map(|&l| l as f64).collect();
        Summary::of(&xs)
    }

    /// Summary of delivery latencies restricted to packets of path length
    /// `d` — the grouping Theorem 8's `O(d·T)` bound is stated over.
    pub fn latency_summary_for_path_len(&self, d: usize) -> Summary {
        let xs: Vec<f64> = self
            .latencies
            .iter()
            .zip(&self.path_lens)
            .filter(|(_, &len)| len == d)
            .map(|(&l, _)| l as f64)
            .collect();
        Summary::of(&xs)
    }

    /// Mean backlog over the recorded samples.
    pub fn mean_backlog(&self) -> f64 {
        if self.backlog_series.is_empty() {
            return 0.0;
        }
        self.backlog_series
            .iter()
            .map(|&(_, b)| b as f64)
            .sum::<f64>()
            / self.backlog_series.len() as f64
    }

    /// Fraction of attempts that succeeded.
    pub fn success_ratio(&self) -> f64 {
        if self.attempts == 0 {
            return 1.0;
        }
        self.successes as f64 / self.attempts as f64
    }
}

/// Runs `protocol` for `config.slots` slots, feeding it `injector`'s
/// packets and judging attempts with `phy`.
///
/// Packet ids are assigned densely in injection order; packets are stamped
/// with their injection slot, so reported latencies include all queueing
/// (and, under the adversarial wrapper, the random initial delays — as in
/// Theorem 11).
pub fn run_simulation<P, I>(
    protocol: &mut P,
    injector: &mut I,
    phy: &dyn Feasibility,
    config: SimulationConfig,
) -> SimulationReport
where
    P: Protocol + ?Sized,
    I: Injector + ?Sized,
{
    run_simulation_inner(protocol, injector, phy, config, None)
}

/// Like [`run_simulation`], additionally recording every slot into
/// `trace` (which keeps a bounded window; see
/// [`crate::trace::TraceRecorder`]).
pub fn run_simulation_traced<P, I>(
    protocol: &mut P,
    injector: &mut I,
    phy: &dyn Feasibility,
    config: SimulationConfig,
    trace: &mut crate::trace::TraceRecorder,
) -> SimulationReport
where
    P: Protocol + ?Sized,
    I: Injector + ?Sized,
{
    run_simulation_inner(protocol, injector, phy, config, Some(trace))
}

fn run_simulation_inner<P, I>(
    protocol: &mut P,
    injector: &mut I,
    phy: &dyn Feasibility,
    config: SimulationConfig,
    mut trace: Option<&mut crate::trace::TraceRecorder>,
) -> SimulationReport
where
    P: Protocol + ?Sized,
    I: Injector + ?Sized,
{
    let mut rng = split_stream(config.seed, config.stream);
    let mut report = SimulationReport {
        injected: 0,
        delivered: 0,
        backlog_series: Vec::new(),
        final_backlog: 0,
        latencies: Vec::new(),
        path_lens: Vec::new(),
        potential: PotentialSeries::new(),
        attempts: 0,
        successes: 0,
        slots: config.slots,
    };
    let mut next_id = 0u64;
    // Reused across slots so the whole run is allocation-free in steady
    // state: the injector writes routes into `route_buf`
    // (`inject_into`), arrivals are stamped into `arrivals`, and the
    // protocol writes each slot's result into `outcome`
    // (`Protocol::step`'s `SlotOutcome::clear` reuse contract).
    let mut route_buf = Vec::new();
    let mut arrivals: Vec<Packet> = Vec::new();
    let mut outcome = SlotOutcome::empty();
    for slot in 0..config.slots {
        injector.inject_into(slot, &mut rng, &mut route_buf);
        arrivals.clear();
        arrivals.extend(route_buf.drain(..).map(|path| {
            let packet = Packet::new(PacketId(next_id), path, slot);
            next_id += 1;
            packet
        }));
        let injected_now = arrivals.len();
        report.injected += injected_now as u64;
        protocol.step(slot, &arrivals, phy, &mut rng, &mut outcome);
        report.attempts += outcome.attempts as u64;
        report.successes += outcome.successes as u64;
        let delivered_now = outcome.delivered.len();
        for d in &outcome.delivered {
            report.delivered += 1;
            report.latencies.push(d.latency());
            report.path_lens.push(d.path_len);
        }
        if let Some(trace) = trace.as_deref_mut() {
            trace.record(crate::trace::SlotRecord {
                slot,
                injected: injected_now,
                attempts: outcome.attempts,
                successes: outcome.successes,
                delivered: delivered_now,
                backlog: protocol.backlog(),
            });
        }
        if slot % config.sample_every == 0 {
            report.backlog_series.push((slot, protocol.backlog()));
            report.potential.record(protocol.potential());
        }
    }
    report.final_backlog = protocol.backlog();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_core::dynamic::{DynamicProtocol, FrameConfig};
    use dps_core::feasibility::PerLinkFeasibility;
    use dps_core::ids::LinkId;
    use dps_core::injection::stochastic::uniform_generators;
    use dps_core::path::RoutePath;
    use dps_core::staticsched::greedy::GreedyPerLink;

    fn setup(
        lambda: f64,
    ) -> (
        DynamicProtocol<GreedyPerLink>,
        dps_core::injection::stochastic::StochasticInjector,
        PerLinkFeasibility,
    ) {
        let num_links = 3;
        let config = FrameConfig::tuned(&GreedyPerLink::new(), num_links, 0.9).unwrap();
        let protocol = DynamicProtocol::new(GreedyPerLink::new(), config, num_links);
        let routes: Vec<_> = (0..num_links as u32)
            .map(|l| RoutePath::single_hop(LinkId(l)).shared())
            .collect();
        let injector = uniform_generators(routes, lambda).unwrap();
        (protocol, injector, PerLinkFeasibility::new(num_links))
    }

    #[test]
    fn report_conserves_packets() {
        let (mut protocol, mut injector, phy) = setup(0.5);
        let report = run_simulation(
            &mut protocol,
            &mut injector,
            &phy,
            SimulationConfig::new(20_000, 42),
        );
        assert!(report.injected > 0);
        assert_eq!(
            report.delivered + report.final_backlog as u64,
            report.injected
        );
        assert_eq!(report.latencies.len() as u64, report.delivered);
    }

    #[test]
    fn different_streams_differ_same_stream_repeats() {
        let run = |stream: u64| {
            let (mut protocol, mut injector, phy) = setup(0.5);
            run_simulation(
                &mut protocol,
                &mut injector,
                &phy,
                SimulationConfig::new(5_000, 42).with_stream(stream),
            )
        };
        let a = run(0);
        let b = run(0);
        let c = run(1);
        assert_eq!(a.injected, b.injected, "same stream must reproduce");
        assert_eq!(a.delivered, b.delivered);
        assert_ne!(
            (a.injected, a.delivered),
            (c.injected, c.delivered),
            "different streams should diverge"
        );
    }

    #[test]
    fn backlog_series_is_sampled() {
        let (mut protocol, mut injector, phy) = setup(0.3);
        let report = run_simulation(
            &mut protocol,
            &mut injector,
            &phy,
            SimulationConfig::new(1000, 1).with_sample_every(100),
        );
        assert_eq!(report.backlog_series.len(), 10);
        assert_eq!(report.potential.len(), 10);
        assert_eq!(report.backlog_series[0].0, 0);
        assert_eq!(report.backlog_series[9].0, 900);
    }

    #[test]
    fn latency_summaries_by_path_length() {
        let (mut protocol, mut injector, phy) = setup(0.5);
        let report = run_simulation(
            &mut protocol,
            &mut injector,
            &phy,
            SimulationConfig::new(20_000, 3),
        );
        let all = report.latency_summary();
        let d1 = report.latency_summary_for_path_len(1);
        assert_eq!(all.count, d1.count, "all routes here have one hop");
        assert_eq!(report.latency_summary_for_path_len(7).count, 0);
        assert!(all.mean > 0.0);
    }

    #[test]
    fn traced_run_matches_untraced_and_records_slots() {
        let (mut protocol, mut injector, phy) = setup(0.4);
        let mut trace = crate::trace::TraceRecorder::new(256);
        let cfg = SimulationConfig::new(1000, 11);
        let traced =
            super::run_simulation_traced(&mut protocol, &mut injector, &phy, cfg, &mut trace);
        let (mut protocol2, mut injector2, phy2) = setup(0.4);
        let untraced = run_simulation(&mut protocol2, &mut injector2, &phy2, cfg);
        assert_eq!(traced.injected, untraced.injected);
        assert_eq!(traced.delivered, untraced.delivered);
        assert_eq!(trace.len(), 256, "window keeps the last 256 of 1000 slots");
        assert_eq!(trace.dropped(), 1000 - 256);
        let total_injected_in_window: usize = trace.records().map(|r| r.injected).sum();
        assert!(total_injected_in_window > 0);
    }

    #[test]
    fn ratios_behave_at_edges() {
        let empty = SimulationReport {
            injected: 0,
            delivered: 0,
            backlog_series: Vec::new(),
            final_backlog: 0,
            latencies: Vec::new(),
            path_lens: Vec::new(),
            potential: PotentialSeries::new(),
            attempts: 0,
            successes: 0,
            slots: 0,
        };
        assert_eq!(empty.delivery_ratio(), 1.0);
        assert_eq!(empty.success_ratio(), 1.0);
        assert_eq!(empty.mean_backlog(), 0.0);
    }
}
