//! The discrete-event core of the slot-skipping engine.
//!
//! The classic slot loop visits every slot, even when the injector's
//! calendar says nothing arrives for thousands of slots and the
//! protocol is quiescent. This module supplies the two pieces the
//! event-driven fast path in [`crate::runner`] is built from:
//!
//! * [`EventQueue`] — a min-heap of [`Event`]s keyed by slot, holding
//!   the *candidate* next-activity slots gathered from the hint methods
//!   (`Injector::next_active_slot`, `Protocol::next_event_slot`) plus
//!   the engine's own checkpoints (backlog sampling, simulation end);
//! * [`SimClock`] — the simulation clock, which either ticks one slot
//!   at a time (the per-slot fallback) or jumps straight to the next
//!   event ([`SimClock::advance_to`]), reporting how many slots the
//!   jump covered so the runner can account for them in bulk.
//!
//! Correctness rests on the hint contracts, not on this module: a hint
//! may be *early* (a false positive costs one inert step) but never
//! late. The queue therefore only ever shortens a jump, and the
//! engine degrades gracefully to per-slot stepping when any hint is
//! unavailable.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// What kind of activity a queued slot is a candidate for.
///
/// The ordering only breaks ties between events on the same slot (the
/// queue pops injection candidates first); the slot key dominates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// The injector's next candidate arrival slot.
    Injection,
    /// The protocol's next observable slot (frame phase boundary,
    /// clean-up selection, pending algorithm work).
    Protocol,
    /// A periodic engine checkpoint (backlog/potential sample). The
    /// default runner replays samples in bulk inside a jump — inert
    /// slots cannot change what a sample would record — so it never
    /// schedules this kind; it is vocabulary for engines whose
    /// checkpoints require stepping.
    Sample,
    /// The end of the simulation horizon.
    End,
}

/// A candidate activity slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Event {
    /// Slot the activity is scheduled at.
    pub slot: u64,
    /// What the activity is.
    pub kind: EventKind,
}

/// Min-heap of [`Event`]s keyed by slot.
///
/// Small by design: the engine clears and refills it between jumps
/// (hints are re-queried after every stepped slot), so it holds a
/// handful of entries and its buffer is reused for the whole run.
#[derive(Clone, Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Removes all events, keeping the allocation.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Schedules `event`.
    pub fn push(&mut self, event: Event) {
        self.heap.push(Reverse(event));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// The earliest scheduled slot, if any.
    pub fn peek_slot(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(e)| e.slot)
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// The simulation clock: current slot plus the run's horizon.
#[derive(Clone, Copy, Debug)]
pub struct SimClock {
    now: u64,
    horizon: u64,
}

impl SimClock {
    /// A clock at slot 0 running until `horizon` (exclusive).
    pub fn new(horizon: u64) -> Self {
        SimClock { now: 0, horizon }
    }

    /// The current slot.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The first slot *not* simulated.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Whether the horizon has been reached.
    pub fn is_done(&self) -> bool {
        self.now >= self.horizon
    }

    /// Advances by one slot (the per-slot fallback path).
    pub fn tick(&mut self) {
        self.now += 1;
    }

    /// Jumps forward to `slot` (clamped to the horizon), returning how
    /// many slots the jump covered. Jumping to the past is a no-op
    /// returning 0, so a stale event can never rewind the clock.
    pub fn advance_to(&mut self, slot: u64) -> u64 {
        let target = slot.min(self.horizon);
        let jumped = target.saturating_sub(self.now);
        self.now = self.now.max(target);
        jumped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_pops_in_slot_order() {
        let mut q = EventQueue::new();
        q.push(Event {
            slot: 30,
            kind: EventKind::End,
        });
        q.push(Event {
            slot: 5,
            kind: EventKind::Protocol,
        });
        q.push(Event {
            slot: 12,
            kind: EventKind::Sample,
        });
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_slot(), Some(5));
        let slots: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.slot).collect();
        assert_eq!(slots, vec![5, 12, 30]);
        assert!(q.is_empty());
    }

    #[test]
    fn same_slot_ties_break_by_kind() {
        let mut q = EventQueue::new();
        q.push(Event {
            slot: 7,
            kind: EventKind::Sample,
        });
        q.push(Event {
            slot: 7,
            kind: EventKind::Injection,
        });
        assert_eq!(q.pop().unwrap().kind, EventKind::Injection);
        assert_eq!(q.pop().unwrap().kind, EventKind::Sample);
    }

    #[test]
    fn clear_keeps_queue_usable() {
        let mut q = EventQueue::new();
        q.push(Event {
            slot: 1,
            kind: EventKind::End,
        });
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        q.push(Event {
            slot: 2,
            kind: EventKind::End,
        });
        assert_eq!(q.peek_slot(), Some(2));
    }

    #[test]
    fn clock_ticks_and_jumps() {
        let mut clock = SimClock::new(100);
        assert_eq!(clock.now(), 0);
        assert!(!clock.is_done());
        clock.tick();
        assert_eq!(clock.now(), 1);
        assert_eq!(clock.advance_to(50), 49);
        assert_eq!(clock.now(), 50);
        // Jumps clamp to the horizon…
        assert_eq!(clock.advance_to(1_000_000), 50);
        assert_eq!(clock.now(), 100);
        assert!(clock.is_done());
        assert_eq!(clock.horizon(), 100);
    }

    #[test]
    fn stale_jump_cannot_rewind() {
        let mut clock = SimClock::new(10);
        clock.advance_to(8);
        assert_eq!(clock.advance_to(3), 0);
        assert_eq!(clock.now(), 8);
    }
}
