//! Optional per-slot event tracing for debugging and plotting.
//!
//! A [`TraceRecorder`] sits beside the slot loop and captures a bounded
//! window of per-slot records (injections, attempts, successes,
//! deliveries, backlog); export to CSV for external plotting. Bounded so
//! long stability runs cannot exhaust memory — the recorder keeps the
//! *last* `capacity` slots.

use std::collections::VecDeque;

/// One slot's activity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotRecord {
    /// Slot number.
    pub slot: u64,
    /// Packets injected this slot.
    pub injected: usize,
    /// Transmission attempts issued.
    pub attempts: usize,
    /// Attempts that succeeded.
    pub successes: usize,
    /// Packets delivered.
    pub delivered: usize,
    /// Backlog after the slot.
    pub backlog: usize,
}

/// A sliding window of [`SlotRecord`]s.
#[derive(Clone, Debug)]
pub struct TraceRecorder {
    records: VecDeque<SlotRecord>,
    capacity: usize,
    dropped: u64,
}

impl TraceRecorder {
    /// Creates a recorder keeping the last `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        TraceRecorder {
            records: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Appends a record, evicting the oldest when full.
    pub fn record(&mut self, record: SlotRecord) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &SlotRecord> {
        self.records.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the retained window as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("slot,injected,attempts,successes,delivered,backlog\n");
        for r in &self.records {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                r.slot, r.injected, r.attempts, r.successes, r.delivered, r.backlog
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(slot: u64) -> SlotRecord {
        SlotRecord {
            slot,
            injected: 1,
            attempts: 2,
            successes: 1,
            delivered: 1,
            backlog: 3,
        }
    }

    #[test]
    fn keeps_last_capacity_records() {
        let mut t = TraceRecorder::new(3);
        for slot in 0..5 {
            t.record(rec(slot));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let slots: Vec<u64> = t.records().map(|r| r.slot).collect();
        assert_eq!(slots, vec![2, 3, 4]);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = TraceRecorder::new(8);
        t.record(rec(7));
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("slot,"));
        assert_eq!(lines[1], "7,1,2,1,1,3");
    }

    #[test]
    fn empty_recorder_is_empty() {
        let t = TraceRecorder::new(2);
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_zero_capacity() {
        let _ = TraceRecorder::new(0);
    }
}
