//! Optional per-slot event tracing for debugging and plotting.
//!
//! A [`TraceRecorder`] sits beside the slot loop and captures a bounded
//! window of per-slot records (injections, attempts, successes,
//! deliveries, backlog); export to CSV for external plotting. Bounded so
//! long stability runs cannot exhaust memory — the recorder keeps the
//! *last* `capacity` slots.
//!
//! Under the event-driven engine, slot ranges the engine proved inert
//! are not stepped, so they produce no [`SlotRecord`]s; the engine
//! records each jump as a [`SkipRecord`] instead (kept in a second
//! window of the same capacity). [`TraceRecorder::expand`] rehydrates
//! the skips into the equivalent per-slot stream — every skipped slot
//! had zero injections, attempts, and deliveries and an unchanged
//! backlog, which is exactly what a per-slot run would have recorded.

use std::collections::VecDeque;

/// One slot's activity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotRecord {
    /// Slot number.
    pub slot: u64,
    /// Packets injected this slot.
    pub injected: usize,
    /// Transmission attempts issued.
    pub attempts: usize,
    /// Attempts that succeeded.
    pub successes: usize,
    /// Packets delivered.
    pub delivered: usize,
    /// Backlog after the slot.
    pub backlog: usize,
}

/// A slot range the event engine jumped over instead of stepping.
///
/// Covers slots `from_slot..from_slot + slots`, each of which had zero
/// injections, attempts, successes, and deliveries, and the recorded
/// (unchanged) backlog.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SkipRecord {
    /// First skipped slot.
    pub from_slot: u64,
    /// Number of consecutive skipped slots.
    pub slots: u64,
    /// Backlog throughout the skipped range.
    pub backlog: usize,
}

/// A sliding window of [`SlotRecord`]s plus the [`SkipRecord`]s the
/// event engine emitted in place of inert slot ranges.
#[derive(Clone, Debug)]
pub struct TraceRecorder {
    records: VecDeque<SlotRecord>,
    skips: VecDeque<SkipRecord>,
    capacity: usize,
    dropped: u64,
    dropped_skips: u64,
}

impl TraceRecorder {
    /// Creates a recorder keeping the last `capacity` slots (and up to
    /// `capacity` skip records).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        TraceRecorder {
            records: VecDeque::with_capacity(capacity),
            skips: VecDeque::new(),
            capacity,
            dropped: 0,
            dropped_skips: 0,
        }
    }

    /// Appends a record, evicting the oldest when full.
    pub fn record(&mut self, record: SlotRecord) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }

    /// Appends a skip record, evicting the oldest when full.
    pub fn record_skip(&mut self, skip: SkipRecord) {
        if self.skips.len() == self.capacity {
            self.skips.pop_front();
            self.dropped_skips += 1;
        }
        self.skips.push_back(skip);
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &SlotRecord> {
        self.records.iter()
    }

    /// The retained skip records, oldest first.
    pub fn skips(&self) -> impl Iterator<Item = &SkipRecord> {
        self.skips.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been recorded (skips included).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty() && self.skips.is_empty()
    }

    /// Records evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Skip records evicted due to the capacity bound.
    pub fn dropped_skips(&self) -> u64 {
        self.dropped_skips
    }

    /// Rehydrates the retained window into a pure per-slot stream:
    /// stepped slots contribute their [`SlotRecord`] verbatim, and each
    /// [`SkipRecord`] contributes one all-zero record per skipped slot
    /// (constant backlog), sorted by slot. On a fully retained trace
    /// this equals what a per-slot run of the same configuration would
    /// have recorded.
    ///
    /// Materializes one record per covered slot — intended for
    /// differential testing and plotting of bounded windows, not for
    /// billion-slot skips.
    pub fn expand(&self) -> Vec<SlotRecord> {
        let mut out: Vec<SlotRecord> = self.records.iter().copied().collect();
        for skip in &self.skips {
            out.extend((0..skip.slots).map(|i| SlotRecord {
                slot: skip.from_slot + i,
                injected: 0,
                attempts: 0,
                successes: 0,
                delivered: 0,
                backlog: skip.backlog,
            }));
        }
        out.sort_by_key(|r| r.slot);
        out
    }

    /// Renders the retained window as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("slot,injected,attempts,successes,delivered,backlog\n");
        for r in &self.records {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                r.slot, r.injected, r.attempts, r.successes, r.delivered, r.backlog
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(slot: u64) -> SlotRecord {
        SlotRecord {
            slot,
            injected: 1,
            attempts: 2,
            successes: 1,
            delivered: 1,
            backlog: 3,
        }
    }

    #[test]
    fn keeps_last_capacity_records() {
        let mut t = TraceRecorder::new(3);
        for slot in 0..5 {
            t.record(rec(slot));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let slots: Vec<u64> = t.records().map(|r| r.slot).collect();
        assert_eq!(slots, vec![2, 3, 4]);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = TraceRecorder::new(8);
        t.record(rec(7));
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("slot,"));
        assert_eq!(lines[1], "7,1,2,1,1,3");
    }

    #[test]
    fn empty_recorder_is_empty() {
        let t = TraceRecorder::new(2);
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_zero_capacity() {
        let _ = TraceRecorder::new(0);
    }

    #[test]
    fn expand_interleaves_skips_with_records() {
        let mut t = TraceRecorder::new(16);
        t.record(rec(0));
        t.record_skip(SkipRecord {
            from_slot: 1,
            slots: 3,
            backlog: 3,
        });
        t.record(rec(4));
        let expanded = t.expand();
        let slots: Vec<u64> = expanded.iter().map(|r| r.slot).collect();
        assert_eq!(slots, vec![0, 1, 2, 3, 4]);
        // Skipped slots are all-zero with the recorded backlog.
        for r in &expanded[1..4] {
            assert_eq!(
                (r.injected, r.attempts, r.successes, r.delivered, r.backlog),
                (0, 0, 0, 0, 3)
            );
        }
        // Stepped slots pass through verbatim.
        assert_eq!(expanded[0], rec(0));
        assert_eq!(expanded[4], rec(4));
    }

    #[test]
    fn expand_ignores_zero_length_skips() {
        // The event engine never emits `slots: 0`, but a rehydrated
        // trace must tolerate one (e.g. a hand-built fixture): it
        // covers no slots, so it contributes no records.
        let mut t = TraceRecorder::new(8);
        t.record(rec(0));
        t.record_skip(SkipRecord {
            from_slot: 1,
            slots: 0,
            backlog: 3,
        });
        t.record(rec(1));
        let expanded = t.expand();
        let slots: Vec<u64> = expanded.iter().map(|r| r.slot).collect();
        assert_eq!(slots, vec![0, 1]);
        assert_eq!(
            expanded[1],
            rec(1),
            "zero-length skip must not shadow slot 1"
        );
    }

    #[test]
    fn expand_covers_a_skip_abutting_the_horizon() {
        // A run that ends mid-skip records the jump but no trailing
        // SlotRecord; the rehydrated stream must still end exactly at
        // the last skipped slot, with no record past the horizon.
        let mut t = TraceRecorder::new(8);
        t.record(rec(5));
        t.record_skip(SkipRecord {
            from_slot: 6,
            slots: 4, // covers 6..10; horizon is slot 9
            backlog: 3,
        });
        let expanded = t.expand();
        let slots: Vec<u64> = expanded.iter().map(|r| r.slot).collect();
        assert_eq!(slots, vec![5, 6, 7, 8, 9]);
        assert_eq!(
            expanded.last().unwrap().backlog,
            3,
            "the final synthesized slot carries the recorded backlog"
        );
    }

    #[test]
    fn expand_merges_back_to_back_skips() {
        // Two adjacent jumps (the engine woke for an event that turned
        // out to be inert and immediately jumped again) must rehydrate
        // into one gapless, duplicate-free run of slots.
        let mut t = TraceRecorder::new(8);
        t.record(rec(0));
        t.record_skip(SkipRecord {
            from_slot: 1,
            slots: 2,
            backlog: 3,
        });
        t.record_skip(SkipRecord {
            from_slot: 3,
            slots: 3,
            backlog: 3,
        });
        t.record(rec(6));
        let expanded = t.expand();
        let slots: Vec<u64> = expanded.iter().map(|r| r.slot).collect();
        assert_eq!(slots, vec![0, 1, 2, 3, 4, 5, 6]);
        // Every synthesized slot is inert: the two windows do not
        // overlap, double-count, or leave a seam at slot 3.
        for r in &expanded[1..6] {
            assert_eq!(
                (r.injected, r.attempts, r.successes, r.delivered, r.backlog),
                (0, 0, 0, 0, 3)
            );
        }
    }

    #[test]
    fn skip_window_is_bounded() {
        let mut t = TraceRecorder::new(2);
        for i in 0..4 {
            t.record_skip(SkipRecord {
                from_slot: i * 10,
                slots: 5,
                backlog: 0,
            });
        }
        assert_eq!(t.skips().count(), 2);
        assert_eq!(t.dropped_skips(), 2);
        assert_eq!(t.skips().next().unwrap().from_slot, 20);
        assert!(!t.is_empty(), "retained skips count as recorded data");
    }
}
