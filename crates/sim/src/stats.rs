//! Summary statistics and least-squares fitting shared by the metrics and
//! experiment code.

use serde::{Deserialize, Serialize};

/// Mean, standard deviation, extremes and count of a sample.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Sample mean (0 for an empty sample).
    pub mean: f64,
    /// Sample standard deviation (0 with fewer than two samples).
    pub std_dev: f64,
    /// Smallest sample (0 for an empty sample).
    pub min: f64,
    /// Largest sample (0 for an empty sample).
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// The Bessel-corrected sample variance divides by `count − 1`, so a
    /// single sample has no spread estimate at all; dividing anyway
    /// would make `std_dev` (and everything derived from it) `NaN` and
    /// poison any aggregate table the summary lands in. A single sample
    /// therefore reports `std_dev = 0` — a 0-width interval, matching
    /// [`ci95`](Self::ci95) — and its own value as mean/min/max.
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min: samples.iter().copied().fold(f64::INFINITY, f64::min),
            max: samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Half-width of the ~95% normal confidence interval for the mean.
    ///
    /// With fewer than two samples there is no spread estimate; the
    /// interval is reported 0-width (never `NaN`).
    pub fn ci95(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        1.96 * self.std_dev / (self.count as f64).sqrt()
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) of a sample, by linear interpolation.
/// Returns 0 for an empty sample.
pub fn quantile(samples: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Least-squares line `y = slope·x + intercept` through the points.
/// Returns `None` with fewer than two points or a degenerate x-range.
pub fn linear_fit(points: &[(f64, f64)]) -> Option<(f64, f64)> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|(x, _)| x).sum();
    let sy: f64 = points.iter().map(|(_, y)| y).sum();
    let sxx: f64 = points.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = points.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    Some((slope, intercept))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std_dev - 1.2909944).abs() < 1e-6);
        assert!(s.ci95() > 0.0);
    }

    #[test]
    fn summary_of_empty_sample() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.ci95(), 0.0);
    }

    /// Regression: a single sample must report a 0-width spread, not the
    /// `NaN` that a bare `count − 1` division would produce — `NaN`
    /// here propagates into every aggregate table built on summaries.
    #[test]
    fn summary_of_single_sample_has_zero_width_interval() {
        let s = Summary::of(&[42.5]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 42.5);
        assert_eq!(s.min, 42.5);
        assert_eq!(s.max, 42.5);
        assert_eq!(s.std_dev, 0.0, "single sample must not yield NaN spread");
        assert!(s.std_dev.is_finite());
        assert_eq!(s.ci95(), 0.0);
        assert!(s.ci95().is_finite());
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert_eq!(quantile(&xs, 0.25), 2.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let points: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 7.0)).collect();
        let (slope, intercept) = linear_fit(&points).unwrap();
        assert!((slope - 3.0).abs() < 1e-9);
        assert!((intercept - 7.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_degenerate_cases() {
        assert!(linear_fit(&[]).is_none());
        assert!(linear_fit(&[(1.0, 1.0)]).is_none());
        assert!(linear_fit(&[(2.0, 1.0), (2.0, 5.0)]).is_none());
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_rejects_out_of_range() {
        let _ = quantile(&[1.0], 1.5);
    }
}
