//! Fixed-width text tables and CSV output for the experiment harness —
//! the "rows the paper reports" format of EXPERIMENTS.md.

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the headers.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} does not match {} headers",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as aligned monospace text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let mut header_line = String::new();
        for (w, h) in widths.iter().zip(&self.headers) {
            let _ = write!(header_line, "{h:>w$}  ");
        }
        let _ = writeln!(out, "{}", header_line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(header_line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (w, cell) in widths.iter().zip(row) {
                let _ = write!(line, "{cell:>w$}  ");
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table as a JSON object
    /// `{"title": …, "headers": […], "rows": [{header: cell, …}, …]}` —
    /// the machine-readable mirror of [`Table::to_csv`].
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(&self.to_value())
    }

    /// The table as a serde [`serde::Value`] map (`title`, `headers`,
    /// `rows`) — the [`Table::to_json`] payload before rendering, for
    /// callers that splice extra fields alongside the table.
    pub fn to_value(&self) -> serde::Value {
        let rows: Vec<serde::Value> = self
            .rows
            .iter()
            .map(|row| {
                serde::Value::Map(
                    self.headers
                        .iter()
                        .zip(row)
                        .map(|(h, cell)| (h.clone(), serde::Value::Str(cell.clone())))
                        .collect(),
                )
            })
            .collect();
        serde::Value::Map(vec![
            ("title".to_string(), serde::Value::Str(self.title.clone())),
            (
                "headers".to_string(),
                serde::Value::Seq(
                    self.headers
                        .iter()
                        .map(|h| serde::Value::Str(h.clone()))
                        .collect(),
                ),
            ),
            ("rows".to_string(), serde::Value::Seq(rows)),
        ])
    }

    /// Renders the table as CSV (headers first, comma-separated, cells
    /// containing commas or quotes are quoted).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a float with three significant decimals, for table cells.
pub fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with one decimal, for table cells.
pub fn fmt1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push_row(vec!["short".into(), "1".into()]);
        t.push_row(vec!["a-much-longer-name".into(), "22.5".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        let lines: Vec<&str> = s.lines().collect();
        // Header + separator + 2 rows + title.
        assert_eq!(lines.len(), 4 + 1);
        assert!(lines[1].ends_with("value"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_mismatched_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt3(1.23456), "1.235");
        assert_eq!(fmt1(1.26), "1.3");
    }

    #[test]
    fn json_mirrors_rows() {
        let mut t = Table::new("demo \"x\"", &["a", "b"]);
        t.push_row(vec!["1".into(), "two".into()]);
        let parsed = serde::json::parse(&t.to_json()).unwrap();
        assert_eq!(parsed.get("title").unwrap().as_str().unwrap(), "demo \"x\"");
        let rows = parsed.get("rows").unwrap().as_seq().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("a").unwrap().as_str().unwrap(), "1");
        assert_eq!(rows[0].get("b").unwrap().as_str().unwrap(), "two");
    }
}
