//! Parallel repetition of simulation runs across independent RNG streams,
//! with cross-repetition aggregate statistics.
//!
//! Experiments report means with confidence intervals where single runs
//! are noisy (schedule lengths have coupon-collector tails; stability
//! slopes fluctuate near thresholds). Repetitions use
//! [`dps_core::rng::split_stream`] streams, so repetition `k` is the same
//! regardless of how many repetitions run or on how many threads.

use crate::runner::{run_simulation, SimulationConfig, SimulationReport};
use crate::stability::{classify_stability, StabilityVerdict};
use crate::stats::Summary;
use dps_core::feasibility::Feasibility;
use dps_core::injection::Injector;
use dps_core::protocol::Protocol;

/// The backlog-slope threshold (as a fraction of the injection rate) the
/// aggregate's per-repetition stability classifications use.
const STABILITY_THRESHOLD: f64 = 0.05;

/// Aggregate statistics over repetitions of the same configuration.
#[derive(Clone, Debug)]
pub struct AggregateReport {
    /// Per-repetition reports, in stream order.
    pub reports: Vec<SimulationReport>,
    /// Per-repetition stability verdicts, index-aligned with `reports`
    /// (classified once at aggregation; the slope threshold is 5% of
    /// the injection rate).
    pub verdicts: Vec<StabilityVerdict>,
    /// Summary of mean backlogs.
    pub mean_backlog: Summary,
    /// Summary of mean latencies (over repetitions with deliveries).
    pub mean_latency: Summary,
    /// Summary of delivery ratios.
    pub delivery_ratio: Summary,
    /// How many repetitions were classified stable.
    pub stable_count: usize,
}

impl AggregateReport {
    /// Builds the aggregate from per-repetition reports.
    pub fn from_reports(reports: Vec<SimulationReport>) -> Self {
        let mean_backlog = Summary::of(
            &reports
                .iter()
                .map(SimulationReport::mean_backlog)
                .collect::<Vec<_>>(),
        );
        let mean_latency = Summary::of(
            &reports
                .iter()
                .map(|r| r.latency_summary().mean)
                .filter(|&l| l > 0.0)
                .collect::<Vec<_>>(),
        );
        let delivery_ratio = Summary::of(
            &reports
                .iter()
                .map(SimulationReport::delivery_ratio)
                .collect::<Vec<_>>(),
        );
        let verdicts: Vec<StabilityVerdict> = reports
            .iter()
            .map(|r| classify_stability(r, STABILITY_THRESHOLD))
            .collect();
        let stable_count = verdicts.iter().filter(|v| v.is_stable()).count();
        AggregateReport {
            reports,
            verdicts,
            mean_backlog,
            mean_latency,
            delivery_ratio,
            stable_count,
        }
    }

    /// The majority stability verdict across repetitions: Stable only if
    /// a *strict* majority of the (non-empty) repetition set is stable,
    /// with the median per-repetition backlog slope attached.
    ///
    /// An empty report set and a set whose repetitions are all
    /// inconclusive yield [`StabilityVerdict::Inconclusive`] — previously
    /// zero reports counted as Stable (`0·2 ≥ 0`), a 50/50 tie counted as
    /// stable, and the reported slopes were `0.0`/`NaN` placeholders.
    pub fn majority_verdict(&self) -> StabilityVerdict {
        if self.reports.is_empty() {
            return StabilityVerdict::Inconclusive;
        }
        let mut slopes: Vec<f64> = self.verdicts.iter().filter_map(|v| v.slope()).collect();
        if slopes.is_empty() {
            return StabilityVerdict::Inconclusive;
        }
        slopes.sort_by(|a, b| a.partial_cmp(b).expect("finite slopes"));
        let median = if slopes.len() % 2 == 1 {
            slopes[slopes.len() / 2]
        } else {
            0.5 * (slopes[slopes.len() / 2 - 1] + slopes[slopes.len() / 2])
        };
        if self.stable_count * 2 > self.reports.len() {
            StabilityVerdict::Stable { slope: median }
        } else {
            StabilityVerdict::Unstable { slope: median }
        }
    }
}

/// The workspace's one parallel-execution primitive, re-exported from
/// [`dps_core::parallel`] where it moved so the tiled SINR slot kernel
/// can fan region shards over the same pool without a dependency cycle.
/// Repetition runs ([`run_repetitions`]) and scenario sweeps build on
/// it; see the crate of origin for the chunking and order-preservation
/// contract.
pub use dps_core::parallel::parallel_map;

/// Runs `reps` independent repetitions, spreading them over up to
/// `threads` OS threads. `make_protocol` and `make_injector` build a fresh
/// protocol/injector per repetition (they receive the stream index).
pub fn run_repetitions<P, I, FP, FI, F>(
    make_protocol: FP,
    make_injector: FI,
    phy: &F,
    base: SimulationConfig,
    reps: u64,
    threads: usize,
) -> AggregateReport
where
    P: Protocol,
    I: Injector,
    FP: Fn(u64) -> P + Sync,
    FI: Fn(u64) -> I + Sync,
    F: Feasibility + Sync,
{
    assert!(reps > 0, "need at least one repetition");
    let reports = parallel_map(reps as usize, threads, |rep| {
        let rep = rep as u64;
        let mut protocol = make_protocol(rep);
        let mut injector = make_injector(rep);
        run_simulation(&mut protocol, &mut injector, phy, base.with_stream(rep))
    });
    AggregateReport::from_reports(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_core::dynamic::{DynamicProtocol, FrameConfig};
    use dps_core::feasibility::PerLinkFeasibility;
    use dps_core::ids::LinkId;
    use dps_core::injection::stochastic::uniform_generators;
    use dps_core::path::RoutePath;
    use dps_core::staticsched::greedy::GreedyPerLink;

    fn setup_pieces() -> (FrameConfig, PerLinkFeasibility) {
        let config = FrameConfig::tuned(&GreedyPerLink::new(), 3, 0.9).unwrap();
        (config, PerLinkFeasibility::new(3))
    }

    fn make_protocol(config: &FrameConfig) -> DynamicProtocol<GreedyPerLink> {
        DynamicProtocol::new(GreedyPerLink::new(), config.clone(), 3)
    }

    fn make_injector() -> dps_core::injection::stochastic::StochasticInjector {
        let routes: Vec<_> = (0..3u32)
            .map(|l| RoutePath::single_hop(LinkId(l)).shared())
            .collect();
        uniform_generators(routes, 0.4).unwrap()
    }

    #[test]
    fn reexported_parallel_map_is_order_preserving() {
        // The full chunking/order property suite lives with the
        // primitive in `dps_core::parallel`; this pins the re-export.
        let got = parallel_map(7, 3, |i| i + 1);
        let want: Vec<usize> = (1..=7).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn repetitions_match_sequential_runs() {
        let (config, phy) = setup_pieces();
        let base = SimulationConfig::new(10 * config.frame_len as u64, 5);
        let aggregate = run_repetitions(
            |_| make_protocol(&config),
            |_| make_injector(),
            &phy,
            base,
            4,
            2,
        );
        assert_eq!(aggregate.reports.len(), 4);
        // Stream 2 of the parallel run equals a sequential stream-2 run.
        let mut protocol = make_protocol(&config);
        let mut injector = make_injector();
        let sequential = run_simulation(&mut protocol, &mut injector, &phy, base.with_stream(2));
        assert_eq!(aggregate.reports[2].injected, sequential.injected);
        assert_eq!(aggregate.reports[2].delivered, sequential.delivered);
    }

    #[test]
    fn aggregate_statistics_cover_all_reps() {
        let (config, phy) = setup_pieces();
        let base = SimulationConfig::new(20 * config.frame_len as u64, 6);
        let aggregate = run_repetitions(
            |_| make_protocol(&config),
            |_| make_injector(),
            &phy,
            base,
            3,
            2,
        );
        assert_eq!(aggregate.mean_backlog.count, 3);
        assert_eq!(
            aggregate.stable_count, 3,
            "low load must be stable everywhere"
        );
        assert!(aggregate.majority_verdict().is_stable());
        assert!(aggregate.delivery_ratio.mean > 0.5);
    }

    fn synthetic_report(series: Vec<(u64, usize)>, injected: u64, slots: u64) -> SimulationReport {
        SimulationReport {
            injected,
            delivered: 0,
            backlog_series: series,
            final_backlog: 0,
            latencies: Vec::new(),
            path_lens: Vec::new(),
            potential: dps_core::potential::PotentialSeries::new(),
            attempts: 0,
            successes: 0,
            slots,
            idle_slots_skipped: 0,
        }
    }

    fn stable_report() -> SimulationReport {
        synthetic_report((0..32).map(|i| (i * 100, 10)).collect(), 3200, 3200)
    }

    fn unstable_report() -> SimulationReport {
        synthetic_report(
            (0..32).map(|i| (i * 100, (i * 50) as usize)).collect(),
            3200,
            3200,
        )
    }

    #[test]
    fn empty_report_set_is_inconclusive_not_stable() {
        let aggregate = AggregateReport::from_reports(Vec::new());
        assert_eq!(aggregate.majority_verdict(), StabilityVerdict::Inconclusive);
    }

    #[test]
    fn tie_is_not_a_majority() {
        let aggregate = AggregateReport::from_reports(vec![stable_report(), unstable_report()]);
        assert_eq!(aggregate.stable_count, 1);
        let verdict = aggregate.majority_verdict();
        assert!(!verdict.is_stable(), "50/50 tie must not count as stable");
        assert!(
            verdict.slope().unwrap().is_finite(),
            "median slope must be a real number, not a placeholder"
        );
    }

    #[test]
    fn majority_verdict_reports_median_slope() {
        let aggregate = AggregateReport::from_reports(vec![
            stable_report(),
            stable_report(),
            unstable_report(),
        ]);
        let verdict = aggregate.majority_verdict();
        assert!(verdict.is_stable());
        // Median of {~0, ~0, 0.5} is the flat repetitions' slope.
        let slope = verdict.slope().unwrap();
        assert!(slope.abs() < 1e-9, "median slope {slope} should be ~0");
    }

    #[test]
    fn all_inconclusive_repetitions_yield_inconclusive() {
        // Too few backlog samples for the classifier to fit a line.
        let short = synthetic_report(vec![(0, 1), (1, 2)], 10, 10);
        let aggregate = AggregateReport::from_reports(vec![short]);
        assert_eq!(aggregate.majority_verdict(), StabilityVerdict::Inconclusive);
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn rejects_zero_reps() {
        let (config, phy) = setup_pieces();
        let base = SimulationConfig::new(100, 7);
        let _ = run_repetitions(
            |_| make_protocol(&config),
            |_| make_injector(),
            &phy,
            base,
            0,
            1,
        );
    }
}
