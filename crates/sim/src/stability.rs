//! Deciding whether a run was stable: is the backlog bounded, or does it
//! grow linearly with time?
//!
//! The classifier fits a least-squares line to the backlog samples of the
//! second half of the run (the first half is warm-up) and compares its
//! slope against the injection rate: an unstable system accumulates a
//! constant fraction of the injected packets, a stable one's slope is
//! statistical noise around zero.

use crate::runner::SimulationReport;
use crate::stats::linear_fit;

/// Verdict of the stability classifier.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StabilityVerdict {
    /// Backlog bounded: tail slope is a negligible fraction of the
    /// injection rate.
    Stable {
        /// Fitted backlog slope, packets per slot.
        slope: f64,
    },
    /// Backlog grows linearly.
    Unstable {
        /// Fitted backlog slope, packets per slot.
        slope: f64,
    },
    /// Not enough samples to decide.
    Inconclusive,
}

impl StabilityVerdict {
    /// Whether the verdict is [`StabilityVerdict::Stable`].
    pub fn is_stable(&self) -> bool {
        matches!(self, StabilityVerdict::Stable { .. })
    }

    /// The fitted slope, if any.
    pub fn slope(&self) -> Option<f64> {
        match self {
            StabilityVerdict::Stable { slope } | StabilityVerdict::Unstable { slope } => {
                Some(*slope)
            }
            StabilityVerdict::Inconclusive => None,
        }
    }
}

/// Classifies a run. `threshold_fraction` is the fraction of the observed
/// injection rate above which the backlog slope counts as growth (0.05 is
/// a good default: an unstable system beyond its capacity accumulates
/// far more than 5% of its arrivals).
pub fn classify_stability(report: &SimulationReport, threshold_fraction: f64) -> StabilityVerdict {
    assert!(
        threshold_fraction > 0.0,
        "threshold fraction must be positive"
    );
    if report.backlog_series.len() < 8 || report.slots == 0 {
        return StabilityVerdict::Inconclusive;
    }
    let tail = &report.backlog_series[report.backlog_series.len() / 2..];
    let points: Vec<(f64, f64)> = tail
        .iter()
        .map(|&(slot, backlog)| (slot as f64, backlog as f64))
        .collect();
    let Some((slope, _)) = linear_fit(&points) else {
        return StabilityVerdict::Inconclusive;
    };
    let injection_rate = report.injected as f64 / report.slots as f64;
    if injection_rate <= 0.0 {
        return StabilityVerdict::Stable { slope };
    }
    if slope > threshold_fraction * injection_rate {
        StabilityVerdict::Unstable { slope }
    } else {
        StabilityVerdict::Stable { slope }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_core::potential::PotentialSeries;

    fn report_with_series(
        series: Vec<(u64, usize)>,
        injected: u64,
        slots: u64,
    ) -> SimulationReport {
        SimulationReport {
            injected,
            delivered: 0,
            backlog_series: series,
            final_backlog: 0,
            latencies: Vec::new(),
            path_lens: Vec::new(),
            potential: PotentialSeries::new(),
            attempts: 0,
            successes: 0,
            slots,
            idle_slots_skipped: 0,
        }
    }

    #[test]
    fn flat_backlog_is_stable() {
        let series: Vec<(u64, usize)> = (0..32).map(|i| (i * 100, 10)).collect();
        let report = report_with_series(series, 3200, 3200);
        let verdict = classify_stability(&report, 0.05);
        assert!(verdict.is_stable(), "{verdict:?}");
        assert!(verdict.slope().unwrap().abs() < 1e-9);
    }

    #[test]
    fn linear_growth_is_unstable() {
        // Backlog = slot/2 with injection rate 1: slope 0.5 ≫ 5%.
        let series: Vec<(u64, usize)> = (0..32).map(|i| (i * 100, (i * 50) as usize)).collect();
        let report = report_with_series(series, 3200, 3200);
        let verdict = classify_stability(&report, 0.05);
        assert!(!verdict.is_stable(), "{verdict:?}");
    }

    #[test]
    fn warmup_transient_is_ignored() {
        // Grows during the first half, flat afterwards: stable.
        let series: Vec<(u64, usize)> = (0..32)
            .map(|i| (i * 100, if i < 16 { (i * 10) as usize } else { 160 }))
            .collect();
        let report = report_with_series(series, 3200, 3200);
        assert!(classify_stability(&report, 0.05).is_stable());
    }

    #[test]
    fn too_few_samples_is_inconclusive() {
        let report = report_with_series(vec![(0, 1), (1, 2)], 10, 10);
        assert_eq!(
            classify_stability(&report, 0.05),
            StabilityVerdict::Inconclusive
        );
    }

    #[test]
    fn zero_injection_is_stable() {
        let series: Vec<(u64, usize)> = (0..32).map(|i| (i, 0)).collect();
        let report = report_with_series(series, 0, 32);
        assert!(classify_stability(&report, 0.05).is_stable());
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn rejects_nonpositive_threshold() {
        let report = report_with_series(vec![], 0, 0);
        let _ = classify_stability(&report, 0.0);
    }
}
