//! SINR instance generators: random networks for the competitive-ratio
//! experiments, line networks for multi-hop latency, and the **Figure 1
//! star instance** of the Theorem 20 lower bound.

use crate::geom::Point;
use crate::network::{SinrNetwork, SinrNetworkBuilder};
use crate::params::SinrParams;
use dps_core::ids::LinkId;
use rand::{Rng, RngCore};

/// A random single-hop instance: `m` links with senders placed uniformly
/// in a square of the given side length and receivers at a uniform random
/// direction and length drawn from `[min_len, max_len]`.
///
/// # Panics
///
/// Panics if `m == 0`, `side <= 0`, or the length range is empty or
/// non-positive.
pub fn random_instance(
    m: usize,
    side: f64,
    min_len: f64,
    max_len: f64,
    params: SinrParams,
    rng: &mut dyn RngCore,
) -> SinrNetwork {
    assert!(m > 0, "instance needs at least one link");
    assert!(side > 0.0, "square side must be positive");
    assert!(
        0.0 < min_len && min_len <= max_len,
        "invalid link length range [{min_len}, {max_len}]"
    );
    let mut b = SinrNetworkBuilder::new(params);
    for _ in 0..m {
        let sx = rng.gen::<f64>() * side;
        let sy = rng.gen::<f64>() * side;
        let angle = rng.gen::<f64>() * std::f64::consts::TAU;
        let len = min_len + rng.gen::<f64>() * (max_len - min_len);
        let rx = sx + len * angle.cos();
        let ry = sy + len * angle.sin();
        b.add_isolated_link((sx, sy), (rx, ry));
    }
    b.max_path_len(1);
    b.build()
}

/// A multi-hop line: `hops + 1` nodes at the given spacing, one link
/// between consecutive nodes. Used for the latency-vs-path-length
/// experiment (E3) on an actual SINR substrate.
///
/// # Panics
///
/// Panics if `hops == 0` or `spacing <= 0`.
pub fn line_instance(hops: usize, spacing: f64, params: SinrParams) -> SinrNetwork {
    assert!(hops > 0, "line needs at least one hop");
    assert!(spacing > 0.0, "spacing must be positive");
    let mut b = SinrNetworkBuilder::new(params);
    let nodes: Vec<_> = (0..=hops)
        .map(|i| b.add_node((i as f64 * spacing, 0.0)))
        .collect();
    for i in 0..hops {
        b.add_link(nodes[i], nodes[i + 1]);
    }
    b.max_path_len(hops);
    b.build()
}

/// The Figure 1 lower-bound instance (Section 8).
#[derive(Clone, Debug)]
pub struct StarInstance {
    /// The geometry, with uniform powers intended.
    pub net: SinrNetwork,
    /// The `m − 1` short links; they always succeed, no matter what else
    /// transmits.
    pub short_links: Vec<LinkId>,
    /// The long link; it succeeds only if **all** short links are silent.
    pub long_link: LinkId,
}

/// Builds the Figure 1 star instance with `m` links total (`m − 1` short
/// plus one long).
///
/// Geometry (uniform power 1, `α = 3`, `β = 2`):
///
/// * short links of length 1 at spacing 4 along a row — far enough apart
///   that their mutual interference accumulates to ≈ 0.04, far below the
///   SINR margin;
/// * the long link has length `2m` with its receiver hovering just above
///   the centre of the row, so every short sender is within blocking range
///   of it;
/// * noise is `ν = 1/(2β·(2m)^α)`: half the long link's SINR budget, so
///   the long link works alone but dies from any single short
///   transmission.
///
/// The accompanying tests verify all three properties against the exact
/// SINR oracle.
///
/// # Panics
///
/// Panics if `m < 2`.
pub fn star_instance(m: usize) -> StarInstance {
    assert!(m >= 2, "star instance needs at least two links");
    let alpha = 3.0;
    let beta = 2.0;
    let num_short = m - 1;
    let long_len = 2.0 * m as f64;
    let noise = 1.0 / (2.0 * beta * long_len.powf(alpha));
    let params = SinrParams::new(alpha, beta, noise);
    let mut b = SinrNetworkBuilder::new(params);
    let mut short_links = Vec::with_capacity(num_short);
    for i in 0..num_short {
        let x = 4.0 * i as f64;
        short_links.push(b.add_isolated_link((x, 0.0), (x, 1.0)));
    }
    let centre_x = 2.0 * (num_short.saturating_sub(1)) as f64;
    let receiver = Point::new(centre_x, 2.0);
    let sender = Point::new(centre_x, 2.0 + long_len);
    let long_link = b.add_isolated_link(sender, receiver);
    b.max_path_len(1);
    StarInstance {
        net: b.build(),
        short_links,
        long_link,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::SinrFeasibility;
    use crate::power::UniformPower;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn random_instance_respects_length_range() {
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let net = random_instance(32, 100.0, 1.0, 4.0, SinrParams::default(), &mut rng);
        assert_eq!(net.num_links(), 32);
        for link in net.network().link_ids() {
            let len = net.link_length(link);
            assert!((1.0..=4.0 + 1e-9).contains(&len), "length {len}");
        }
        assert!(net.length_diversity() <= 4.0 + 1e-9);
    }

    #[test]
    fn line_instance_is_connected_chain() {
        let net = line_instance(5, 2.0, SinrParams::default());
        assert_eq!(net.num_links(), 5);
        for i in 0..4u32 {
            assert!(net.network().adjacent(LinkId(i), LinkId(i + 1)));
        }
        assert_eq!(net.link_length(LinkId(0)), 2.0);
    }

    #[test]
    fn star_shorts_always_succeed_together() {
        let star = star_instance(16);
        let oracle = SinrFeasibility::new(star.net.clone(), UniformPower::unit());
        // All shorts plus the long link transmitting: every short succeeds.
        let mut all = star.short_links.clone();
        all.push(star.long_link);
        let attempts: Vec<_> = all
            .iter()
            .enumerate()
            .map(|(i, &l)| dps_core::feasibility::Attempt {
                link: l,
                packet: dps_core::ids::PacketId(i as u64),
            })
            .collect();
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        use dps_core::feasibility::Feasibility;
        let res = oracle.successes(&attempts, &mut rng);
        for (i, &l) in star.short_links.iter().enumerate() {
            assert!(res[i], "short link {l} must succeed even under full load");
        }
        assert!(
            !res[star.short_links.len()],
            "long link must fail under load"
        );
    }

    #[test]
    fn star_long_link_succeeds_alone() {
        let star = star_instance(16);
        let oracle = SinrFeasibility::new(star.net.clone(), UniformPower::unit());
        assert!(oracle.set_feasible(&[star.long_link]));
    }

    #[test]
    fn star_any_single_short_blocks_long() {
        let star = star_instance(16);
        let oracle = SinrFeasibility::new(star.net.clone(), UniformPower::unit());
        use dps_core::feasibility::Feasibility;
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        for &short in &star.short_links {
            let attempts = [
                dps_core::feasibility::Attempt {
                    link: star.long_link,
                    packet: dps_core::ids::PacketId(0),
                },
                dps_core::feasibility::Attempt {
                    link: short,
                    packet: dps_core::ids::PacketId(1),
                },
            ];
            let res = oracle.successes(&attempts, &mut rng);
            assert!(!res[0], "short link {short} must block the long link");
            assert!(res[1], "short link {short} itself must succeed");
        }
    }

    #[test]
    fn star_properties_hold_across_sizes() {
        for m in [2usize, 4, 32, 64] {
            let star = star_instance(m);
            assert_eq!(star.short_links.len(), m - 1);
            let oracle = SinrFeasibility::new(star.net.clone(), UniformPower::unit());
            assert!(oracle.set_feasible(&[star.long_link]), "m={m}: long alone");
            if let Some(&first_short) = star.short_links.first() {
                assert!(
                    !oracle.set_feasible(&[star.long_link, first_short]),
                    "m={m}: long with one short"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn star_rejects_trivial_size() {
        let _ = star_instance(1);
    }
}
