//! Exact SINR feasibility: the physical ground truth against which every
//! protocol in this workspace is validated.
//!
//! Unlike the pairwise matrix abstraction used to *design* schedules, this
//! oracle applies the full accumulated-interference SINR inequality to the
//! attempts actually made in a slot. Since this runs once per slot for the
//! whole simulation, it is the hottest kernel in the workspace; the
//! implementation therefore judges a slot from a [`SinrCache`] — cached
//! signals, margins and pairwise gains, no `sqrt`/`powf` — and iterates
//! only the `k` *attempted* links (`O(k²)` per slot) instead of scanning
//! all `m` links per attempt (`O(k·m)` with transcendentals, as the
//! reference implementation [`SinrFeasibility::successes_naive`] still
//! does). The two paths make bit-for-bit identical decisions; the
//! equivalence is property-tested in `tests/prop_sinr.rs`.

use crate::cache::SinrCache;
use crate::network::SinrNetwork;
use crate::power::PowerAssignment;
use dps_core::feasibility::{Attempt, Feasibility};
use dps_core::ids::LinkId;
use rand::RngCore;
use std::cell::RefCell;
use std::sync::Arc;

/// The accumulative SINR oracle under a fixed power assignment.
///
/// The geometry cache is held behind an [`Arc`], so one
/// [`SinrCache`] built for a network can be shared between the oracle,
/// the matrix constructions of [`crate::matrix`] and any other consumer
/// without re-deriving the `O(m²)` gain table — see
/// [`SinrFeasibility::with_cache`].
#[derive(Clone, Debug)]
pub struct SinrFeasibility<P> {
    net: SinrNetwork,
    power: P,
    cache: Arc<SinrCache>,
}

impl<P: PowerAssignment> SinrFeasibility<P> {
    /// Creates the oracle, precomputing the geometry cache (dense gain
    /// table within [`crate::cache::DEFAULT_DENSE_GAIN_BUDGET_BYTES`]).
    pub fn new(net: SinrNetwork, power: P) -> Self {
        let cache = Arc::new(SinrCache::new(&net, &power));
        SinrFeasibility { net, power, cache }
    }

    /// Creates the oracle with an explicit dense-gain-table limit
    /// (`0` forces the `O(m)`-memory on-the-fly gain fallback).
    pub fn with_dense_limit(net: SinrNetwork, power: P, dense_limit: usize) -> Self {
        let cache = Arc::new(SinrCache::with_dense_limit(&net, &power, dense_limit));
        SinrFeasibility { net, power, cache }
    }

    /// Creates the oracle with an explicit memory budget for the dense
    /// gain table (see [`SinrCache::with_memory_budget`]).
    pub fn with_memory_budget(net: SinrNetwork, power: P, budget_bytes: usize) -> Self {
        let cache = Arc::new(SinrCache::with_memory_budget(&net, &power, budget_bytes));
        SinrFeasibility { net, power, cache }
    }

    /// Creates the oracle around an already-built shared cache, instead
    /// of deriving its own — the substrate-sharing path: one
    /// [`SinrCache`] per topology serves this oracle and the
    /// interference-matrix builds alike.
    ///
    /// # Panics
    ///
    /// Panics if the cache was not built for this `(network, power)`
    /// pair: the link count must match and every link's cached
    /// transmission power and signal strength must be bit-for-bit what
    /// `power` produces on `net` (an `O(m)` check — cheap next to the
    /// `O(m²)` construction it replaces, and exact because a matching
    /// cache stores these very expressions).
    pub fn with_cache(net: SinrNetwork, power: P, cache: Arc<SinrCache>) -> Self {
        assert_eq!(
            cache.num_links(),
            net.num_links(),
            "shared SinrCache must cover the oracle's network"
        );
        assert!(
            cache.beta().to_bits() == net.params().beta.to_bits()
                && cache.noise().to_bits() == net.params().noise.to_bits(),
            "shared SinrCache was built under different SINR parameters"
        );
        let alpha = net.params().alpha;
        for (index, &len) in net.lengths().iter().enumerate() {
            let link = LinkId(index as u32);
            let p = power.power(len);
            assert!(
                cache.tx_power(link).to_bits() == p.to_bits()
                    && cache.signal(link).to_bits() == (p / len.powf(alpha)).to_bits(),
                "shared SinrCache was built for a different (network, power) pair \
                 (mismatch at link {index})"
            );
        }
        SinrFeasibility { net, power, cache }
    }

    /// The network the oracle judges.
    pub fn network(&self) -> &SinrNetwork {
        &self.net
    }

    /// The precomputed geometry cache the fast path judges from.
    pub fn cache(&self) -> &SinrCache {
        &self.cache
    }

    /// The shared handle to the geometry cache (clone to share it with
    /// matrix builds or other oracles over the same topology).
    pub fn shared_cache(&self) -> &Arc<SinrCache> {
        &self.cache
    }

    /// Whether the given set of links (one transmission each) is
    /// simultaneously feasible — the static "can this be one slot?" check
    /// used by schedule validators and the star-instance tests.
    pub fn set_feasible(&self, links: &[dps_core::ids::LinkId]) -> bool {
        let attempts: Vec<Attempt> = links
            .iter()
            .enumerate()
            .map(|(i, &link)| Attempt {
                link,
                packet: dps_core::ids::PacketId(i as u64),
            })
            .collect();
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        self.successes(&attempts, &mut rng).into_iter().all(|ok| ok)
    }

    /// The reference implementation: recomputes every distance and
    /// path-loss term from scratch and scans all `m` links per attempt.
    ///
    /// Kept as the ground truth for the cached-vs-naive equivalence
    /// proptest and as the pre-optimization baseline in `bench_sinr`.
    /// Interference contributions accumulate as `count · (p/d^α)` — the
    /// same association as the cached path — in link-index order. (The
    /// pre-cache oracle associated this as `(count · p)/d^α`, which can
    /// differ by an ulp for `count ≥ 3`; the equivalence guarantee is
    /// between the two current paths, whose expressions are identical.)
    pub fn successes_naive(&self, attempts: &[Attempt], _rng: &mut dyn RngCore) -> Vec<bool> {
        let params = *self.net.params();
        // Count transmissions per link: two packets on one link collide at
        // the shared transmitter regardless of SINR.
        let mut mult = vec![0u32; self.net.num_links()];
        for a in attempts {
            mult[a.link.index()] += 1;
        }
        attempts
            .iter()
            .map(|a| {
                if mult[a.link.index()] != 1 {
                    return false;
                }
                let own = self.net.sender_pos(a.link);
                let len = own.distance(&self.net.receiver_pos(a.link));
                let signal = self.power.power(len) / len.powf(params.alpha);
                let mut interference = 0.0;
                for (other_idx, &count) in mult.iter().enumerate() {
                    if count == 0 || other_idx == a.link.index() {
                        continue;
                    }
                    let other = dps_core::ids::LinkId(other_idx as u32);
                    let other_sender = self.net.sender_pos(other);
                    let other_len = other_sender.distance(&self.net.receiver_pos(other));
                    let d = other_sender.distance(&self.net.receiver_pos(a.link));
                    if d <= 0.0 {
                        return false;
                    }
                    interference +=
                        count as f64 * (self.power.power(other_len) / d.powf(params.alpha));
                }
                signal >= params.beta * (interference + params.noise)
            })
            .collect()
    }
}

/// Per-thread slot scratch: distinct links with multiplicity, the
/// per-distinct-link verdicts, and the blocked kernel's accumulator and
/// lane-pack buffers.
struct SlotScratch {
    active: Vec<(u32, u32)>,
    verdicts: Vec<bool>,
    interference: Vec<f64>,
    lanes: Vec<f64>,
}

thread_local! {
    /// Keeps [`SinrFeasibility`] callable through `&self`/`Arc` across
    /// threads while the slot loop stays allocation-free in steady state.
    static SLOT_SCRATCH: RefCell<SlotScratch> = const {
        RefCell::new(SlotScratch {
            active: Vec::new(),
            verdicts: Vec::new(),
            interference: Vec::new(),
            lanes: Vec::new(),
        })
    };
}

impl<P: PowerAssignment> Feasibility for SinrFeasibility<P> {
    fn successes(&self, attempts: &[Attempt], rng: &mut dyn RngCore) -> Vec<bool> {
        let mut out = Vec::new();
        self.successes_into(attempts, &mut out, rng);
        out
    }

    fn successes_into(&self, attempts: &[Attempt], out: &mut Vec<bool>, _rng: &mut dyn RngCore) {
        out.clear();
        if attempts.is_empty() {
            return;
        }
        let beta = self.cache.beta();
        let noise = self.cache.noise();
        SLOT_SCRATCH.with(|scratch| {
            let SlotScratch {
                active,
                verdicts,
                interference,
                lanes,
            } = &mut *scratch.borrow_mut();
            // Distinct attempted links with multiplicities, in link-index
            // order — the same accumulation order as the naive scan.
            active.clear();
            active.extend(attempts.iter().map(|a| (a.link.0, 1u32)));
            active.sort_unstable_by_key(|&(link, _)| link);
            let mut write = 0;
            for read in 1..active.len() {
                if active[read].0 == active[write].0 {
                    active[write].1 += active[read].1;
                } else {
                    write += 1;
                    active[write] = active[read];
                }
            }
            active.truncate(write + 1);
            // One SINR evaluation per distinct receiver: O(k²) overall.
            verdicts.clear();
            if self
                .cache
                .active_interference_into(active, interference, lanes)
            {
                // Dense path: the blocked kernel produced every
                // receiver's accumulated interference, bit-for-bit in the
                // scalar order; only the comparisons remain.
                verdicts.extend(active.iter().zip(interference.iter()).map(
                    |(&(on_raw, count), &interference)| {
                        // A shared transmitter collides regardless of SINR.
                        count == 1
                            && self.cache.signal(LinkId(on_raw)) >= beta * (interference + noise)
                    },
                ));
            } else {
                // Fallback (no dense gain table): per-pair scalar loop
                // over on-the-fly gains.
                verdicts.extend(active.iter().map(|&(on_raw, count)| {
                    if count != 1 {
                        // A shared transmitter collides regardless of SINR.
                        return false;
                    }
                    let on = LinkId(on_raw);
                    let mut interference = 0.0;
                    for &(from_raw, from_count) in active.iter() {
                        if from_raw == on_raw {
                            continue;
                        }
                        // A NaN gain (coincident endpoints) poisons the
                        // sum, failing the comparison — the naive "zero
                        // cross distance blocks the receiver" rule.
                        interference += from_count as f64 * self.cache.gain(LinkId(from_raw), on);
                    }
                    self.cache.signal(on) >= beta * (interference + noise)
                }));
            }
            out.extend(attempts.iter().map(|a| {
                let slot = active
                    .binary_search_by_key(&a.link.0, |&(link, _)| link)
                    .expect("every attempted link is in the active list");
                verdicts[slot]
            }));
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::SinrNetworkBuilder;
    use crate::params::SinrParams;
    use crate::power::{LinearPower, UniformPower};
    use dps_core::ids::{LinkId, PacketId};
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng() -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(1)
    }

    fn attempt(link: u32, packet: u64) -> Attempt {
        Attempt {
            link: LinkId(link),
            packet: PacketId(packet),
        }
    }

    /// Unit links at the given x offsets.
    fn net_at(offsets: &[f64], params: SinrParams) -> SinrNetwork {
        let mut b = SinrNetworkBuilder::new(params);
        for &x in offsets {
            b.add_isolated_link((x, 0.0), (x, 1.0));
        }
        b.build()
    }

    #[test]
    fn lone_transmission_succeeds_without_noise() {
        let net = net_at(&[0.0], SinrParams::default_noiseless());
        let oracle = SinrFeasibility::new(net, UniformPower::unit());
        assert_eq!(oracle.successes(&[attempt(0, 1)], &mut rng()), vec![true]);
    }

    #[test]
    fn overwhelming_noise_blocks_even_lone_transmission() {
        // Unit link, unit power: signal 1; β(ν) = 2·1 > 1.
        let net = net_at(&[0.0], SinrParams::with_noise(1.0));
        let oracle = SinrFeasibility::new(net, UniformPower::unit());
        assert_eq!(oracle.successes(&[attempt(0, 1)], &mut rng()), vec![false]);
    }

    #[test]
    fn near_links_collide_far_links_coexist() {
        // With α=3, β=2 a unit link dies when interference exceeds 1/β =
        // 0.5, i.e. when the interferer is closer than 2^(1/3) ≈ 1.26.
        // Gap 0.5 puts the cross distance at √1.25 ≈ 1.12 (collision);
        // gap 50 is far beyond it.
        let params = SinrParams::default_noiseless();
        let near = SinrFeasibility::new(net_at(&[0.0, 0.5], params), UniformPower::unit());
        let far = SinrFeasibility::new(net_at(&[0.0, 50.0], params), UniformPower::unit());
        let atts = [attempt(0, 1), attempt(1, 2)];
        assert_eq!(near.successes(&atts, &mut rng()), vec![false, false]);
        assert_eq!(far.successes(&atts, &mut rng()), vec![true, true]);
    }

    #[test]
    fn interference_accumulates() {
        // Spacing 1.2: a single neighbour contributes 1/(√2.44)³ ≈ 0.26 <
        // 0.5 (tolerable), but both neighbours plus the next ring sum to
        // ≈ 0.64 ≥ 0.5 — accumulation is what kills the centre link.
        let params = SinrParams::default_noiseless();
        let net = net_at(&[0.0, 1.2, 2.4, 3.6, 4.8], params);
        let oracle = SinrFeasibility::new(net, UniformPower::unit());
        // Middle link with one active neighbour: passes.
        let two = [attempt(2, 1), attempt(3, 2)];
        let res = oracle.successes(&two, &mut rng());
        assert!(res[0], "single neighbour should be tolerable");
        // Middle link with all four others active: accumulated interference
        // blocks it.
        let all: Vec<Attempt> = (0..5).map(|i| attempt(i, i as u64)).collect();
        let res = oracle.successes(&all, &mut rng());
        assert!(
            !res[2],
            "centre link must drown in accumulated interference"
        );
    }

    #[test]
    fn same_link_collision_fails_both() {
        let net = net_at(&[0.0], SinrParams::default_noiseless());
        let oracle = SinrFeasibility::new(net, UniformPower::unit());
        let res = oracle.successes(&[attempt(0, 1), attempt(0, 2)], &mut rng());
        assert_eq!(res, vec![false, false]);
    }

    #[test]
    fn linear_power_rescues_short_link_next_to_long() {
        // A unit link whose sender sits 5 away from the receiver of a
        // length-8 link (but > 10 from its powerful sender). Under uniform
        // powers the long link's weak signal (1/8³) drowns in the short
        // sender's interference (1/5³); under linear powers the long link
        // receives at full strength and both coexist.
        let params = SinrParams::default_noiseless();
        let mut b = SinrNetworkBuilder::new(params);
        let _short = b.add_isolated_link((5.0, 12.0), (5.0, 11.0));
        let _long = b.add_isolated_link((0.0, 20.0), (0.0, 12.0));
        let net = b.build();
        let atts = [attempt(0, 1), attempt(1, 2)];
        let uni = SinrFeasibility::new(net.clone(), UniformPower::unit());
        let lin = SinrFeasibility::new(net, LinearPower::new(params.alpha));
        let res_uni = uni.successes(&atts, &mut rng());
        let res_lin = lin.successes(&atts, &mut rng());
        assert!(res_uni[0], "short link passes under uniform power");
        assert!(!res_uni[1], "long link should fail under uniform power");
        assert!(
            res_lin[0] && res_lin[1],
            "both should pass under linear power"
        );
    }

    #[test]
    fn set_feasible_helper_agrees_with_successes() {
        let params = SinrParams::default_noiseless();
        let oracle = SinrFeasibility::new(net_at(&[0.0, 50.0], params), UniformPower::unit());
        assert!(oracle.set_feasible(&[LinkId(0), LinkId(1)]));
        let near = SinrFeasibility::new(net_at(&[0.0, 0.5], params), UniformPower::unit());
        assert!(!near.set_feasible(&[LinkId(0), LinkId(1)]));
    }

    #[test]
    fn empty_attempt_set_is_trivially_fine() {
        let net = net_at(&[0.0], SinrParams::default_noiseless());
        let oracle = SinrFeasibility::new(net, UniformPower::unit());
        assert!(oracle.successes(&[], &mut rng()).is_empty());
    }
}
