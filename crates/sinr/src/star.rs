//! The two protocols separated by Theorem 20 (Section 8) on the Figure 1
//! star instance.
//!
//! * [`GlobalClockStarProtocol`]: with a shared slot parity, short links
//!   transmit on even slots and the long link on odd slots; stable for
//!   every per-link injection rate `λ < 1/2`.
//! * [`LocalClockAlohaProtocol`]: an acknowledgment-based protocol without
//!   a global clock — every backlogged link simply transmits with a fixed
//!   probability `q`. Short links are fine (their transmissions always
//!   succeed), but the long link only gets through when *all* short links
//!   happen to be silent, which at short-link load `λ ≥ ln m / m` happens
//!   too rarely for stability. Theorem 20 proves no local-clock protocol
//!   can do better than `m/2·ln m`-competitive; this protocol exhibits the
//!   phenomenon concretely.

use crate::instances::StarInstance;
use dps_core::feasibility::{Attempt, Feasibility};
use dps_core::ids::LinkId;
use dps_core::packet::{DeliveredPacket, Packet};
use dps_core::protocol::{Protocol, SlotOutcome};
use rand::{Rng, RngCore};
use std::collections::VecDeque;

/// Per-link FIFO queues of single-hop packets — shared plumbing of both
/// star protocols.
#[derive(Clone, Debug)]
struct LinkQueues {
    queues: Vec<VecDeque<Packet>>,
    backlog: usize,
}

impl LinkQueues {
    fn new(num_links: usize) -> Self {
        LinkQueues {
            queues: vec![VecDeque::new(); num_links],
            backlog: 0,
        }
    }

    fn push(&mut self, packet: Packet) {
        let link = packet
            .hop_link(0)
            .expect("star protocols serve single-hop packets");
        self.queues[link.index()].push_back(packet);
        self.backlog += 1;
    }

    fn head(&self, link: LinkId) -> Option<&Packet> {
        self.queues[link.index()].front()
    }

    fn pop(&mut self, link: LinkId) -> Packet {
        self.backlog -= 1;
        self.queues[link.index()]
            .pop_front()
            .expect("pop only after head() is Some")
    }

    fn queue_len(&self, link: LinkId) -> usize {
        self.queues[link.index()].len()
    }
}

/// Even/odd slot split between short links and the long link — the
/// globally-clocked protocol that is stable for `λ < 1/2` on the star.
#[derive(Clone, Debug)]
pub struct GlobalClockStarProtocol {
    short_links: Vec<LinkId>,
    long_link: LinkId,
    queues: LinkQueues,
    transmitters: Vec<LinkId>,
    scratch: SlotScratch,
}

impl GlobalClockStarProtocol {
    /// Creates the protocol for the given star instance.
    pub fn new(star: &StarInstance) -> Self {
        GlobalClockStarProtocol {
            short_links: star.short_links.clone(),
            long_link: star.long_link,
            queues: LinkQueues::new(star.net.num_links()),
            transmitters: Vec::new(),
            scratch: SlotScratch::default(),
        }
    }

    /// Current queue length of the long link.
    pub fn long_queue_len(&self) -> usize {
        self.queues.queue_len(self.long_link)
    }
}

impl Protocol for GlobalClockStarProtocol {
    fn step(
        &mut self,
        slot: u64,
        arrivals: &[Packet],
        phy: &dyn Feasibility,
        rng: &mut dyn RngCore,
        out: &mut SlotOutcome,
    ) {
        for packet in arrivals {
            self.queues.push(packet.clone());
        }
        self.transmitters.clear();
        if slot.is_multiple_of(2) {
            self.transmitters.extend(
                self.short_links
                    .iter()
                    .copied()
                    .filter(|&l| self.queues.head(l).is_some()),
            );
        } else if self.queues.head(self.long_link).is_some() {
            self.transmitters.push(self.long_link);
        }
        transmit_heads(
            &mut self.queues,
            &self.transmitters,
            &mut self.scratch,
            slot,
            phy,
            rng,
            out,
        )
    }

    fn backlog(&self) -> usize {
        self.queues.backlog
    }
}

/// Backlogged links transmit with probability `q`, with no shared clock —
/// the acknowledgment-based local-clock protocol whose long link starves
/// (Theorem 20).
#[derive(Clone, Debug)]
pub struct LocalClockAlohaProtocol {
    links: Vec<LinkId>,
    long_link: LinkId,
    q: f64,
    queues: LinkQueues,
    transmitters: Vec<LinkId>,
    scratch: SlotScratch,
}

impl LocalClockAlohaProtocol {
    /// Creates the protocol with per-slot transmission probability `q`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < q <= 1`.
    pub fn new(star: &StarInstance, q: f64) -> Self {
        assert!(
            q > 0.0 && q <= 1.0,
            "transmission probability must be in (0, 1]"
        );
        let mut links = star.short_links.clone();
        links.push(star.long_link);
        LocalClockAlohaProtocol {
            links,
            long_link: star.long_link,
            q,
            queues: LinkQueues::new(star.net.num_links()),
            transmitters: Vec::new(),
            scratch: SlotScratch::default(),
        }
    }

    /// Current queue length of the long link — the quantity that grows
    /// without bound once the short links are loaded.
    pub fn long_queue_len(&self) -> usize {
        self.queues.queue_len(self.long_link)
    }
}

impl Protocol for LocalClockAlohaProtocol {
    fn step(
        &mut self,
        slot: u64,
        arrivals: &[Packet],
        phy: &dyn Feasibility,
        rng: &mut dyn RngCore,
        out: &mut SlotOutcome,
    ) {
        for packet in arrivals {
            self.queues.push(packet.clone());
        }
        self.transmitters.clear();
        {
            let queues = &self.queues;
            let q = self.q;
            self.transmitters.extend(
                self.links
                    .iter()
                    .copied()
                    .filter(|&l| queues.head(l).is_some() && rng.gen::<f64>() < q),
            );
        }
        transmit_heads(
            &mut self.queues,
            &self.transmitters,
            &mut self.scratch,
            slot,
            phy,
            rng,
            out,
        )
    }

    fn backlog(&self) -> usize {
        self.queues.backlog
    }
}

/// Reusable per-slot attempt/success buffers, so the star protocols'
/// step path stays allocation-free in steady state.
#[derive(Clone, Debug, Default)]
struct SlotScratch {
    attempts: Vec<Attempt>,
    successes: Vec<bool>,
}

/// Transmits the head packet of each listed link and applies the oracle,
/// recording everything into `out` (cleared first).
fn transmit_heads(
    queues: &mut LinkQueues,
    transmitters: &[LinkId],
    scratch: &mut SlotScratch,
    slot: u64,
    phy: &dyn Feasibility,
    rng: &mut dyn RngCore,
    out: &mut SlotOutcome,
) {
    out.clear();
    if transmitters.is_empty() {
        return;
    }
    scratch.attempts.clear();
    scratch
        .attempts
        .extend(transmitters.iter().map(|&link| Attempt {
            link,
            packet: queues.head(link).expect("transmitter has backlog").id(),
        }));
    out.attempts = scratch.attempts.len();
    phy.successes_into(&scratch.attempts, &mut scratch.successes, rng);
    for (&link, &ok) in transmitters.iter().zip(&scratch.successes) {
        if !ok {
            continue;
        }
        out.successes += 1;
        let packet = queues.pop(link);
        out.delivered.push(DeliveredPacket {
            id: packet.id(),
            injected_at: packet.injected_at(),
            delivered_at: slot,
            path_len: 1,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::SinrFeasibility;
    use crate::instances::star_instance;
    use crate::power::UniformPower;
    use dps_core::ids::PacketId;
    use dps_core::injection::stochastic::uniform_generators;
    use dps_core::injection::Injector;
    use dps_core::path::RoutePath;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn run_star<P: Protocol>(
        protocol: &mut P,
        star: &StarInstance,
        lambda: f64,
        slots: u64,
        seed: u64,
    ) -> (u64, u64) {
        let oracle = SinrFeasibility::new(star.net.clone(), UniformPower::unit());
        let routes: Vec<_> = star
            .short_links
            .iter()
            .chain(std::iter::once(&star.long_link))
            .map(|&l| RoutePath::single_hop(l).shared())
            .collect();
        let mut injector = uniform_generators(routes, lambda).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let mut next_id = 0u64;
        let mut injected = 0u64;
        let mut delivered = 0u64;
        for slot in 0..slots {
            let arrivals: Vec<Packet> = injector
                .inject(slot, &mut rng)
                .into_iter()
                .map(|p| {
                    let pkt = Packet::new(PacketId(next_id), p, slot);
                    next_id += 1;
                    pkt
                })
                .collect();
            injected += arrivals.len() as u64;
            delivered += protocol
                .on_slot(slot, arrivals, &oracle, &mut rng)
                .delivered
                .len() as u64;
        }
        (injected, delivered)
    }

    #[test]
    fn global_clock_is_stable_below_half() {
        let star = star_instance(16);
        let mut protocol = GlobalClockStarProtocol::new(&star);
        let (injected, delivered) = run_star(&mut protocol, &star, 0.4, 20_000, 5);
        assert!(injected > 0);
        let backlog = protocol.backlog() as u64;
        assert_eq!(delivered + backlog, injected, "conservation");
        assert!(
            backlog < 200,
            "global-clock backlog {backlog} should stay bounded"
        );
        assert!(
            protocol.long_queue_len() < 100,
            "long-link queue {} should stay bounded",
            protocol.long_queue_len()
        );
    }

    #[test]
    fn local_clock_long_link_starves() {
        let star = star_instance(16);
        let lambda = 0.4;
        let mut protocol = LocalClockAlohaProtocol::new(&star, 0.8);
        let slots = 20_000;
        let (injected, _) = run_star(&mut protocol, &star, lambda, slots, 9);
        assert!(injected > 0);
        // Expected long-link arrivals: λ·slots = 8000. With 15 short links
        // each backlogged and transmitting w.p. 0.8, the long link almost
        // never sees a silent slot.
        let expected_arrivals = (lambda * slots as f64) as usize;
        assert!(
            protocol.long_queue_len() > expected_arrivals / 2,
            "long-link queue {} should grow linearly (expected ≈ {expected_arrivals})",
            protocol.long_queue_len()
        );
    }

    #[test]
    fn local_clock_short_links_are_fine() {
        let star = star_instance(16);
        let mut protocol = LocalClockAlohaProtocol::new(&star, 0.8);
        let (_, _) = run_star(&mut protocol, &star, 0.4, 20_000, 11);
        for &short in &star.short_links {
            assert!(
                protocol.queues.queue_len(short) < 100,
                "short link {short} queue should stay bounded"
            );
        }
    }

    #[test]
    fn global_clock_overload_grows_backlog() {
        // At λ > 1/2 even the global-clock protocol must diverge on shorts.
        let star = star_instance(8);
        let mut protocol = GlobalClockStarProtocol::new(&star);
        let slots = 10_000;
        let (injected, delivered) = run_star(&mut protocol, &star, 0.8, slots, 13);
        let backlog = injected - delivered;
        assert!(
            backlog as f64 > 0.15 * injected as f64,
            "backlog {backlog} of {injected} should grow at λ = 0.8"
        );
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn aloha_rejects_zero_probability() {
        let star = star_instance(4);
        let _ = LocalClockAlohaProtocol::new(&star, 0.0);
    }
}
