//! SINR substrate for *Dynamic Packet Scheduling in Wireless Networks*
//! (Kesselheim, PODC 2012), Section 6.
//!
//! In the physical (SINR) interference model, network nodes live in a
//! metric space; a transmission at power `p` is received at distance `d`
//! with strength `p/d^α`, and it succeeds iff its
//! signal-to-interference-plus-noise ratio exceeds a threshold `β`:
//!
//! ```text
//!   p(ℓ)/d(s,r)^α  ≥  β · ( Σ_{ℓ'≠ℓ} p(ℓ')/d(s',r)^α + ν )
//! ```
//!
//! This crate implements everything the paper's Section 6 needs on top of
//! [`dps_core`]:
//!
//! * 2-D geometry and [`network::SinrNetwork`] — node positions attached to
//!   a [`dps_core::graph::Network`];
//! * [`power::PowerAssignment`]s — uniform, linear (`p ∝ d^α`), square-root
//!   (`p ∝ d^{α/2}`), all monotone and (sub-)linear in the paper's sense;
//! * [`affectance`] — the relative interference `a_p(ℓ, ℓ')` of [28, 33];
//! * [`cache::SinrCache`] — precomputed signals, margins and pairwise
//!   gains: the fast path every hot loop (matrix builds, the exact
//!   oracle) judges from, bit-for-bit equivalent to naive recomputation;
//! * [`matrix::SinrInterference`] — the three matrix constructions of
//!   Section 6 (fixed powers, monotone powers, power control), each a
//!   [`dps_core::interference::InterferenceModel`];
//! * [`feasibility::SinrFeasibility`] — the exact accumulative SINR oracle
//!   (the physical ground truth the protocols are validated against);
//! * [`instances`] — random, line and clustered instance generators plus
//!   the **Figure 1 star instance** of the Section 8 lower bound;
//! * [`star`] — the global-clock and local-clock protocols separated by
//!   Theorem 20;
//! * [`scheduler::PowerControlScheduler`] — a centralized scheduler in the
//!   spirit of \[32\] for the power-control case (Corollary 14);
//! * [`tiles`] — the spatially-tiled substrate for metro-scale instances:
//!   near-field gain panels, far-field tile aggregation under an explicit
//!   error knob `ε` (exact and bit-for-bit at `ε = 0`), and an on-demand
//!   `O(1)`-memory interference model.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod affectance;
pub mod cache;
pub mod diversity;
pub mod feasibility;
pub mod geom;
pub mod instances;
pub mod matrix;
pub mod network;
pub mod params;
pub mod power;
pub mod scheduler;
pub mod star;
pub mod tiles;

/// Convenience re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::affectance::affectance;
    pub use crate::cache::SinrCache;
    pub use crate::diversity::DiversityScheduler;
    pub use crate::feasibility::SinrFeasibility;
    pub use crate::geom::Point;
    pub use crate::instances::{line_instance, random_instance, star_instance, StarInstance};
    pub use crate::matrix::SinrInterference;
    pub use crate::network::SinrNetwork;
    pub use crate::params::SinrParams;
    pub use crate::power::{LinearPower, PowerAssignment, SquareRootPower, UniformPower};
    pub use crate::scheduler::PowerControlScheduler;
    pub use crate::star::{GlobalClockStarProtocol, LocalClockAlohaProtocol};
    pub use crate::tiles::{TileGrid, TiledInterference, TiledSinrCache, TiledSinrFeasibility};
}
