//! Two-dimensional Euclidean geometry for SINR instances.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point in the plane.
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point { x, y }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(b.distance(&a), 5.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn tuple_conversion() {
        let p: Point = (1.0, 2.0).into();
        assert_eq!(p, Point::new(1.0, 2.0));
    }
}
