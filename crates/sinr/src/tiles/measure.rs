//! Load-weighted interference measure `‖W·R‖∞` over the tiled index.
//!
//! The trait-default [`InterferenceModel::measure`] walks every
//! `(row, loaded link)` pair — `O(m²)` on-the-fly `powf` affectances
//! for the near-uniform loads the stochastic injector normalizes
//! against, which at `m = 2²⁰` costs hours and dwarfs the simulation
//! it feeds. The tiled measure reuses the far-field machinery of
//! [`TiledSinrCache`]: per-tile *rate-weighted* power aggregates
//! (`Σ rate·p`, the load-vector analogue of the slot kernel's active
//! `Σ count·p` sums) are coarsened up the hierarchy once, and each
//! receiver row charges far subtrees as one centre-substituted term at
//! the coarsest qualifying level — the slot kernel's walk, under the
//! same per-transmission `ε·margin/m` error contract, so a row of
//! total rate `R` is perturbed by at most `ε·β·R·max(rate)` relative
//! to centre-exact far charges. Near-field affectances are evaluated
//! per link with the exact clamp `min(1, β·g/margin)`.
//!
//! Two further deviations from the trait default, both confined to the
//! far-qualified regime this function is gated on:
//!
//! * far-aggregated entries are charged *unclamped* (`β·g/margin`
//!   without the `min(1, ·)`), an overestimate wherever a far link's
//!   affectance would have saturated — conservative for the measure's
//!   one caller, injection-rate normalization;
//! * near-field gains use an `α = 3` specialised power
//!   (`d³ = d·d·d`) instead of `powf` on the measure's dominant loop.
//!
//! With no far-qualified pairs (`ε = 0`, or geometry that never
//! qualifies) callers must take the trait-default row walk instead —
//! [`super::TiledInterference`]'s `measure` override delegates
//! accordingly, so `ε = 0` substrates keep the default bit-for-bit.
//!
//! [`InterferenceModel::measure`]: dps_core::interference::InterferenceModel::measure

use super::index::TiledSinrCache;
use dps_core::load::LinkLoad;

/// `d^α` with the hot `α = 3` case specialised to multiplications.
#[inline]
fn pow_alpha(d: f64, alpha: f64) -> f64 {
    if alpha == 3.0 {
        d * d * d
    } else {
        d.powf(alpha)
    }
}

/// One hierarchy level's occupied tiles under the load (the load-vector
/// analogue of the slot kernel's `SlotCoarse`): `tiles` ascending,
/// `weight[i] = Σ rate·p` over the subtree, `children` spans indexing
/// the level below's occupied list.
struct LoadCoarse {
    tiles: Vec<u32>,
    weight: Vec<f64>,
    child_start: Vec<u32>,
    children: Vec<u32>,
}

/// The measure `‖W·R‖∞` of `load` under the fixed-power affectance
/// matrix, far field aggregated through `tiles`' qualification tables.
///
/// Callers must gate on `tiles.far_pairs() > 0`: with no far tables the
/// walk degenerates to a slower exact loop in a different summation
/// order than the trait default, which would break the `ε = 0`
/// bit-for-bit story for no benefit.
pub(super) fn measure_with_tiles(tiles: &TiledSinrCache, load: &LinkLoad) -> f64 {
    debug_assert!(tiles.far_pairs() > 0, "caller gates on far_pairs() > 0");
    let cache = &*tiles.cache;
    let m = cache.num_links();
    let beta = cache.beta();
    let alpha = cache.alpha();
    let powers = cache.tx_powers();
    let margins = cache.margins();
    let senders = cache.sender_positions();
    let receivers = cache.receiver_positions();

    let mut rate = vec![0.0f64; m];
    let mut total_rate = 0.0;
    for (link, r) in load.support() {
        rate[link.index()] = r;
        total_rate += r;
    }
    if total_rate <= 0.0 {
        return 0.0;
    }

    // Rate-weighted power per occupied leaf tile (occupied iff some
    // sender in it carries positive rate), ascending tile order via the
    // sender CSR.
    let num_leaves = tiles.grid.num_tiles();
    let mut leaf_tiles: Vec<u32> = Vec::new();
    let mut leaf_weight: Vec<f64> = Vec::new();
    for t in 0..num_leaves {
        let span = tiles.senders_start[t] as usize..tiles.senders_start[t + 1] as usize;
        let mut w = 0.0;
        let mut occupied = false;
        for &link in &tiles.senders_links[span] {
            let r = rate[link as usize];
            if r > 0.0 {
                occupied = true;
                w += r * powers[link as usize];
            }
        }
        if occupied {
            leaf_tiles.push(t as u32);
            leaf_weight.push(w);
        }
    }

    // Coarsen the occupied list level by level — the slot kernel's
    // `build_coarse`, with rates folded into the weights.
    let g0 = tiles.grid.tiles_per_side();
    let levels = &tiles.levels;
    let mut coarse: Vec<LoadCoarse> = Vec::with_capacity(levels.len().saturating_sub(1));
    for l in 1..levels.len() {
        let (below_tiles, below_weight, below_side): (&[u32], &[f64], usize) = if l == 1 {
            (&leaf_tiles, &leaf_weight, g0)
        } else {
            let below = &coarse[l - 2];
            (&below.tiles, &below.weight, levels[l - 1].tiles_per_side)
        };
        let this_side = levels[l].tiles_per_side;
        // Parent indices are not monotone in the child's row-major
        // order (a row of children alternates between two parent rows),
        // so sorting restores ascending tile order.
        let mut pairs: Vec<(u32, u32)> = below_tiles
            .iter()
            .enumerate()
            .map(|(i, &tile)| {
                let row = tile as usize / below_side;
                let col = tile as usize % below_side;
                (((row >> 1) * this_side + (col >> 1)) as u32, i as u32)
            })
            .collect();
        pairs.sort_unstable();
        let mut up = LoadCoarse {
            tiles: Vec::new(),
            weight: Vec::new(),
            child_start: Vec::new(),
            children: Vec::with_capacity(pairs.len()),
        };
        for &(parent, child) in &pairs {
            if up.tiles.last() != Some(&parent) {
                up.tiles.push(parent);
                up.child_start.push(up.children.len() as u32);
                up.weight.push(0.0);
            }
            up.children.push(child);
            *up.weight.last_mut().expect("group opened above") += below_weight[child as usize];
        }
        up.child_start.push(up.children.len() as u32);
        coarse.push(up);
    }

    // Walk every receiver tile with members once (rows in tiles without
    // loaded senders are still charged by every loaded sender, and the
    // max may land on a zero-rate row), then fold its member rows.
    let top = levels.len() - 1;
    let mut far_plan: Vec<(u8, u32)> = Vec::new();
    let mut near_plan: Vec<u32> = Vec::new();
    let mut stack: Vec<(u8, u32)> = Vec::new();
    let mut max_row = 0.0f64;
    for rt in 0..num_leaves {
        let members = &tiles.receivers_links
            [tiles.receivers_start[rt] as usize..tiles.receivers_start[rt + 1] as usize];
        if members.is_empty() {
            continue;
        }
        far_plan.clear();
        near_plan.clear();
        stack.clear();
        if top == 0 {
            for j in (0..leaf_tiles.len()).rev() {
                stack.push((0, j as u32));
            }
        } else {
            for j in (0..coarse[top - 1].tiles.len()).rev() {
                stack.push((top as u8, j as u32));
            }
        }
        while let Some((l, j)) = stack.pop() {
            let l_us = l as usize;
            if l == 0 {
                let s = leaf_tiles[j as usize];
                if levels[0].is_far(s, rt as u32) {
                    far_plan.push((0, j));
                } else {
                    near_plan.push(s);
                }
            } else {
                let occ = &coarse[l_us - 1];
                let s = occ.tiles[j as usize];
                let r = levels[l_us].tile_of_leaf(rt as u32, g0);
                if levels[l_us].is_far(s, r) {
                    far_plan.push((l, j));
                } else {
                    let span = occ.child_start[j as usize] as usize
                        ..occ.child_start[j as usize + 1] as usize;
                    for k in span.rev() {
                        stack.push((l - 1, occ.children[k]));
                    }
                }
            }
        }

        for &on in members {
            let on_us = on as usize;
            let margin = margins[on_us];
            // A non-positive (or NaN) margin saturates every off-diagonal
            // affectance at 1 and the diagonal weighs 1: the row is the
            // whole rate mass. (`margin > 0.0` is false for NaN, which
            // is exactly the saturating branch.)
            let row = if margin > 0.0 {
                let receiver = receivers[on_us];
                let own_leaf = tiles.sender_tile[on_us];
                let mut near = 0.0f64;
                for &s in &near_plan {
                    let span = tiles.senders_start[s as usize] as usize
                        ..tiles.senders_start[s as usize + 1] as usize;
                    for &from in &tiles.senders_links[span] {
                        if from == on {
                            continue;
                        }
                        let r = rate[from as usize];
                        if r <= 0.0 {
                            continue;
                        }
                        let d = senders[from as usize].distance(&receiver);
                        // Mirrors `SinrCache::affectance`: a non-positive
                        // cross distance blocks the receiver outright
                        // (affectance 1), otherwise clamp into [0, 1].
                        let a = if d <= 0.0 {
                            1.0
                        } else {
                            (beta * (powers[from as usize] / pow_alpha(d, alpha)) / margin).min(1.0)
                        };
                        near += r * a;
                    }
                }
                let mut far_gain = 0.0f64;
                for &(l, j) in &far_plan {
                    let l_us = l as usize;
                    let (s_tile, mut weight) = if l == 0 {
                        (leaf_tiles[j as usize], leaf_weight[j as usize])
                    } else {
                        let occ = &coarse[l_us - 1];
                        (occ.tiles[j as usize], occ.weight[j as usize])
                    };
                    if levels[l_us].tile_of_leaf(own_leaf, g0) == s_tile {
                        // The diagonal is charged separately at weight 1;
                        // remove `on`'s own mass from the aggregate.
                        weight -= rate[on_us] * powers[on_us];
                    }
                    let d = levels[l_us].center(s_tile).distance(&receiver);
                    far_gain += weight / pow_alpha(d, alpha);
                }
                rate[on_us] + near + beta * far_gain / margin
            } else {
                total_rate
            };
            max_row = max_row.max(row);
        }
    }
    max_row
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::SinrCache;
    use crate::instances::random_instance;
    use crate::params::SinrParams;
    use crate::power::LinearPower;
    use crate::tiles::{TileOptions, TiledInterference};
    use dps_core::ids::LinkId;
    use dps_core::interference::InterferenceModel;
    use dps_core::rng::split_stream;
    use std::sync::Arc;

    fn tiled(m: usize, side: f64, eps: f64, levels: usize) -> Arc<TiledSinrCache> {
        let mut rng = split_stream(71, m as u64);
        let net = random_instance(m, side, 1.0, 3.0, SinrParams::default_noiseless(), &mut rng);
        let cache = Arc::new(SinrCache::new(&net, &LinearPower::new(3.0)));
        let tiles = Arc::new(TiledSinrCache::with_options(
            cache,
            TileOptions::new(8, eps).with_levels(levels),
        ));
        assert!(tiles.far_pairs() > 0, "geometry must qualify far pairs");
        tiles
    }

    #[test]
    fn tiled_measure_matches_trait_default_within_contract() {
        for levels in [1usize, 3] {
            let tiles = tiled(256, 400.0, 1e-3, levels);
            let load = LinkLoad::from_links(256, (0..256u32).map(LinkId));
            let fast = measure_with_tiles(&tiles, &load);
            let model = TiledInterference::new(tiles.cache.clone());
            let exact = (0..256u32)
                .map(|e| model.row_load(LinkId(e), &load))
                .fold(0.0, f64::max);
            let tol = 0.05 * exact + 1e-9;
            assert!(
                (fast - exact).abs() <= tol,
                "levels {levels}: tiled measure {fast} vs trait default {exact}"
            );
        }
    }

    #[test]
    fn tiled_measure_is_linear_in_uniform_rate_scaling() {
        let tiles = tiled(128, 300.0, 1e-2, 2);
        let mut half = LinkLoad::new(128);
        for l in 0..128u32 {
            half.add(LinkId(l), 0.5);
        }
        let full = LinkLoad::from_links(128, (0..128u32).map(LinkId));
        let m_half = measure_with_tiles(&tiles, &half);
        let m_full = measure_with_tiles(&tiles, &full);
        assert!(
            (2.0 * m_half - m_full).abs() <= 1e-9 * m_full.max(1.0),
            "uniform scaling must scale the measure: {m_half} vs {m_full}"
        );
    }

    #[test]
    fn tiled_measure_of_empty_load_is_zero() {
        let tiles = tiled(64, 200.0, 1e-2, 2);
        assert_eq!(measure_with_tiles(&tiles, &LinkLoad::new(64)), 0.0);
    }
}
