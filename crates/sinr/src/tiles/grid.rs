//! The uniform leaf tile grid: point-to-tile assignment and tile
//! geometry. Hierarchy levels above the leaf live in
//! [`super::hierarchy`].

use super::MAX_TILES_PER_SIDE;
use crate::geom::Point;

/// A uniform grid of square tiles covering a deployment's bounding box.
///
/// Tile indices are row-major: `tile = row · g + col`. A point exactly
/// on an interior tile boundary belongs to the tile on its right/top
/// (floor semantics); points on the bounding box's max edge are clamped
/// into the last row/column, so every point of the covered set maps to
/// a valid tile.
#[derive(Clone, Copy, Debug)]
pub struct TileGrid {
    tiles_per_side: usize,
    origin: Point,
    tile_size: f64,
}

impl TileGrid {
    /// Builds the grid covering every point of `senders` and
    /// `receivers` with `tiles_per_side × tiles_per_side` square tiles.
    ///
    /// The grid is anchored at the bounding box's min corner; the tile
    /// side is `max(width, height)/tiles_per_side`. A zero-area
    /// (single-point or empty) deployment gets tile side `1.0`, mapping
    /// every point into tile `0`.
    ///
    /// # Panics
    ///
    /// Panics if `tiles_per_side` is `0` or exceeds
    /// [`MAX_TILES_PER_SIDE`], or if any coordinate is non-finite.
    pub fn cover(senders: &[Point], receivers: &[Point], tiles_per_side: usize) -> Self {
        assert!(
            (1..=MAX_TILES_PER_SIDE).contains(&tiles_per_side),
            "tiles_per_side must be in 1..={MAX_TILES_PER_SIDE}, got {tiles_per_side}"
        );
        let mut min = Point::new(f64::INFINITY, f64::INFINITY);
        let mut max = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in senders.iter().chain(receivers) {
            assert!(
                p.x.is_finite() && p.y.is_finite(),
                "tile grids require finite coordinates, got {p}"
            );
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        }
        let (origin, extent) = if min.x <= max.x {
            (min, (max.x - min.x).max(max.y - min.y))
        } else {
            // No points at all: any anchored unit grid works.
            (Point::new(0.0, 0.0), 0.0)
        };
        let tile_size = if extent > 0.0 {
            extent / tiles_per_side as f64
        } else {
            1.0
        };
        TileGrid {
            tiles_per_side,
            origin,
            tile_size,
        }
    }

    /// Tiles per side `g`.
    pub fn tiles_per_side(&self) -> usize {
        self.tiles_per_side
    }

    /// Total number of tiles `g²`.
    pub fn num_tiles(&self) -> usize {
        self.tiles_per_side * self.tiles_per_side
    }

    /// The side length of each square tile.
    pub fn tile_size(&self) -> f64 {
        self.tile_size
    }

    /// The min corner of the covered bounding box (the grid anchor).
    pub fn origin(&self) -> Point {
        self.origin
    }

    /// The row-major tile index of `point` (clamped into the grid, so
    /// points outside the covered box map to the nearest border tile).
    pub fn tile_of(&self, point: &Point) -> u32 {
        let g = self.tiles_per_side as i64;
        let col = ((point.x - self.origin.x) / self.tile_size).floor() as i64;
        let row = ((point.y - self.origin.y) / self.tile_size).floor() as i64;
        let col = col.clamp(0, g - 1);
        let row = row.clamp(0, g - 1);
        (row * g + col) as u32
    }

    /// The geometric centre of tile `tile` (the tile *box* centre, not
    /// a member centroid — empty tiles have centres too).
    pub fn center(&self, tile: u32) -> Point {
        let g = self.tiles_per_side as u32;
        let col = (tile % g) as f64;
        let row = (tile / g) as f64;
        Point::new(
            self.origin.x + (col + 0.5) * self.tile_size,
            self.origin.y + (row + 0.5) * self.tile_size,
        )
    }
}
