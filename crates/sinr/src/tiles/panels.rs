//! Near-field gain panel storage: one dense `|S|×|R|` block of raw
//! gains per near leaf tile pair, under one of two residency policies.
//!
//! * [`PanelCacheMode::Fixed`] — panels are filled once at build time,
//!   in deterministic row-major `(S, R)` tile order, until the next
//!   panel would exceed the byte budget. Zero slot-time bookkeeping.
//! * [`PanelCacheMode::Adaptive`] — panels live in a touch-count LRU
//!   cache: a slot's plan resolution touches the pairs it needs,
//!   missing pairs are refilled from the exact gain expression, and
//!   when the resident bytes overflow the budget the least-recently
//!   touched pairs are evicted (stale first, then smallest tile key —
//!   fully deterministic, O(log n) per eviction via an ordered
//!   eviction queue). Panels touched by the *current* slot are never
//!   evicted: when a slot's working set outgrows the budget the cache
//!   refuses further admissions for that slot instead of churning —
//!   refused pairs fall back to the on-the-fly path, so a hot resident
//!   set stays resident and thrash degrades to at most one fill per
//!   admitted pair. Panels are handed to the slot kernel as [`Arc`]
//!   clones, so an eviction mid-slot can never invalidate a panel in
//!   use.
//!
//! Every panel entry is produced by the same floating-point expression
//! as the on-the-fly path, so residency is a speed layer only: hits,
//! misses, refills and evictions are bit-for-bit interchangeable.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Residency policy of the near-field panel store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PanelCacheMode {
    /// Build-time allocation in deterministic tile order within the
    /// byte budget; the resident set never changes afterwards.
    #[default]
    Fixed,
    /// Touch-count LRU evict/refill cache bounded by the byte budget;
    /// the resident set tracks the slots' active tiles.
    Adaptive,
}

/// Approximate per-resident-panel bookkeeping overhead (map node, key,
/// `Arc` header) charged by the byte accounting.
const PANEL_ENTRY_OVERHEAD: usize = 64;

/// A slot-duration handle to one tile pair's panel.
#[derive(Clone, Debug)]
pub(super) enum PanelRef {
    /// No panel resident: compute gains on the fly.
    None,
    /// Offset into the fixed store's arena.
    Arena(usize),
    /// Shared ownership of an adaptive-cache panel (outlives eviction).
    Owned(Arc<Vec<f64>>),
}

/// Hit/miss/eviction counters of the panel store (diagnostics only;
/// relaxed atomics, never part of any verdict).
#[derive(Debug, Default)]
pub(super) struct PanelCounters {
    pub(super) hits: AtomicU64,
    pub(super) misses: AtomicU64,
    pub(super) evictions: AtomicU64,
}

/// The panel store behind [`super::TiledSinrCache`].
#[derive(Debug)]
pub(super) enum PanelStore {
    /// Build-time panels: `(sender_tile, receiver_tile) → arena offset`.
    Fixed {
        offsets: BTreeMap<(u32, u32), usize>,
        arena: Vec<f64>,
        counters: PanelCounters,
    },
    /// LRU evict/refill cache.
    Adaptive {
        budget_bytes: usize,
        state: Mutex<AdaptivePanels>,
        counters: PanelCounters,
    },
}

/// Mutable state of the adaptive cache (behind the store's mutex).
#[derive(Debug, Default)]
pub(super) struct AdaptivePanels {
    resident: BTreeMap<(u32, u32), PanelSlot>,
    /// Eviction order: `(last_touch, key)` ascending — stalest first,
    /// ties by tile key. Mirrors `resident` exactly.
    queue: BTreeSet<(u64, (u32, u32))>,
    /// Panel-data bytes currently resident (excludes map overhead).
    bytes: usize,
    /// Bytes of panels touched since the last [`PanelStore::tick`] —
    /// the current slot's pinned working set, never evicted.
    pinned_bytes: usize,
    /// High-water mark of `bytes` over the store's lifetime.
    high_water: usize,
    /// Slot clock: advanced once per slot, stamped on every touch.
    clock: u64,
}

#[derive(Debug)]
struct PanelSlot {
    data: Arc<Vec<f64>>,
    last_touch: u64,
}

impl PanelStore {
    /// An adaptive store with nothing resident yet.
    pub(super) fn adaptive(budget_bytes: usize) -> Self {
        PanelStore::Adaptive {
            budget_bytes,
            state: Mutex::new(AdaptivePanels::default()),
            counters: PanelCounters::default(),
        }
    }

    /// A fixed store over a prebuilt arena.
    pub(super) fn fixed(offsets: BTreeMap<(u32, u32), usize>, arena: Vec<f64>) -> Self {
        PanelStore::Fixed {
            offsets,
            arena,
            counters: PanelCounters::default(),
        }
    }

    /// The store's hit/miss/eviction counters.
    pub(super) fn counters(&self) -> &PanelCounters {
        match self {
            PanelStore::Fixed { counters, .. } | PanelStore::Adaptive { counters, .. } => counters,
        }
    }

    /// Number of panels currently resident.
    pub(super) fn resident_count(&self) -> usize {
        match self {
            PanelStore::Fixed { offsets, .. } => offsets.len(),
            PanelStore::Adaptive { state, .. } => state.lock().expect("panel lock").resident.len(),
        }
    }

    /// Panel-data bytes currently resident.
    pub(super) fn resident_bytes(&self) -> usize {
        match self {
            PanelStore::Fixed { arena, .. } => arena.len() * std::mem::size_of::<f64>(),
            PanelStore::Adaptive { state, .. } => state.lock().expect("panel lock").bytes,
        }
    }

    /// High-water mark of resident panel-data bytes (for a fixed store
    /// this is just the arena size).
    pub(super) fn high_water_bytes(&self) -> usize {
        match self {
            PanelStore::Fixed { arena, .. } => arena.len() * std::mem::size_of::<f64>(),
            PanelStore::Adaptive { state, .. } => state.lock().expect("panel lock").high_water,
        }
    }

    /// Heap bytes the store pins, charged at the *high-water* mark (not
    /// the current resident set) so LRU budget accounting upstream
    /// stays honest about what the store has grown to.
    pub(super) fn approx_bytes(&self) -> usize {
        self.high_water_bytes() + self.resident_count() * PANEL_ENTRY_OVERHEAD
    }

    /// Advances the adaptive slot clock (no-op for fixed stores). Call
    /// once per slot before resolving that slot's panels.
    pub(super) fn tick(&self) {
        if let PanelStore::Adaptive { state, .. } = self {
            let mut state = state.lock().expect("panel lock");
            state.clock += 1;
            state.pinned_bytes = 0;
        }
    }

    /// Resolves the panel of tile pair `key` for the current slot,
    /// counting a hit or a miss. Fixed stores never fill on miss
    /// (`PanelRef::None` sends the pair to the on-the-fly path).
    /// Adaptive stores fill via `fill` (which must append exactly
    /// `cells` raw gains in panel layout), evicting least-recently
    /// touched *stale* panels — never a panel this slot already
    /// touched — when the budget overflows. If the current slot's
    /// pinned working set leaves too little evictable room (or the
    /// panel is larger than the whole budget), the pair is refused:
    /// `fill` is never called and the pair takes the on-the-fly path
    /// for this slot, so an over-budget working set cannot thrash the
    /// resident panels.
    pub(super) fn resolve<F>(&self, key: (u32, u32), cells: usize, fill: F) -> PanelRef
    where
        F: FnOnce(&mut Vec<f64>),
    {
        match self {
            PanelStore::Fixed {
                offsets, counters, ..
            } => match offsets.get(&key) {
                Some(&offset) => {
                    counters.hits.fetch_add(1, Ordering::Relaxed);
                    PanelRef::Arena(offset)
                }
                None => {
                    counters.misses.fetch_add(1, Ordering::Relaxed);
                    PanelRef::None
                }
            },
            PanelStore::Adaptive {
                budget_bytes,
                state,
                counters,
            } => {
                let mut state = state.lock().expect("panel lock");
                let clock = state.clock;
                let panel_bytes = |data: &Arc<Vec<f64>>| data.len() * std::mem::size_of::<f64>();
                if let Some(slot) = state.resident.get(&key) {
                    let data = Arc::clone(&slot.data);
                    let prev_touch = slot.last_touch;
                    if prev_touch != clock {
                        state.queue.remove(&(prev_touch, key));
                        state.queue.insert((clock, key));
                        state.resident.get_mut(&key).expect("resident").last_touch = clock;
                        state.pinned_bytes += panel_bytes(&data);
                    }
                    counters.hits.fetch_add(1, Ordering::Relaxed);
                    return PanelRef::Owned(data);
                }
                counters.misses.fetch_add(1, Ordering::Relaxed);
                let new_bytes = cells * std::mem::size_of::<f64>();
                // Admission control: the current slot's touched panels
                // are pinned, so only `bytes - pinned_bytes` is
                // evictable. Refuse rather than churn.
                let needed = (state.bytes + new_bytes).saturating_sub(*budget_bytes);
                if new_bytes > *budget_bytes || needed > state.bytes - state.pinned_bytes {
                    return PanelRef::None;
                }
                let mut data = Vec::with_capacity(cells);
                fill(&mut data);
                debug_assert_eq!(data.len(), cells, "panel fill must produce |S|·|R| cells");
                let data = Arc::new(data);
                while state.bytes + new_bytes > *budget_bytes {
                    let &(touch, stalest) = state
                        .queue
                        .iter()
                        .next()
                        .expect("admission check guarantees evictable bytes");
                    debug_assert!(touch < clock, "current-slot panels are pinned");
                    state.queue.remove(&(touch, stalest));
                    let evicted = state.resident.remove(&stalest).expect("queue mirrors map");
                    state.bytes -= panel_bytes(&evicted.data);
                    counters.evictions.fetch_add(1, Ordering::Relaxed);
                }
                state.resident.insert(
                    key,
                    PanelSlot {
                        data: Arc::clone(&data),
                        last_touch: clock,
                    },
                );
                state.queue.insert((clock, key));
                state.bytes += new_bytes;
                state.pinned_bytes += new_bytes;
                state.high_water = state.high_water.max(state.bytes);
                PanelRef::Owned(data)
            }
        }
    }

    /// Reads one panel cell if the pair is resident (no touch, no
    /// counter traffic) — the single-gain probe behind
    /// [`super::TiledSinrCache::gain`].
    pub(super) fn probe(&self, key: (u32, u32), index: usize) -> Option<f64> {
        match self {
            PanelStore::Fixed { offsets, arena, .. } => {
                offsets.get(&key).map(|&offset| arena[offset + index])
            }
            PanelStore::Adaptive { state, .. } => state
                .lock()
                .expect("panel lock")
                .resident
                .get(&key)
                .map(|slot| slot.data[index]),
        }
    }
}
