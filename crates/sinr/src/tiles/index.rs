//! The tiled spatial index over a [`SinrCache`]: per-link tile
//! assignments and CSR member lists at the leaf, the hierarchy of
//! coarsening levels, the panel store, and the far-walk diagnostics.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use super::grid::TileGrid;
use super::hierarchy::{build_levels, TileLevel};
use super::panels::{PanelRef, PanelStore};
use super::{PanelCacheMode, TileOptions, MAX_TILE_LEVELS};
use crate::cache::{raw_gain, SinrCache};
use dps_core::ids::LinkId;

/// Per-level far-walk counters (relaxed atomics: diagnostics only,
/// never part of a verdict).
#[derive(Debug)]
pub(super) struct WalkCounters {
    /// Slots the tiled kernel has judged.
    pub(super) slots: AtomicU64,
    /// Occupied tiles examined during plan construction, per level.
    pub(super) visited: Vec<AtomicU64>,
    /// Far aggregate terms emitted into walk plans, per level.
    pub(super) far_terms: Vec<AtomicU64>,
    /// Near (exact) groups emitted into walk plans.
    pub(super) near_terms: AtomicU64,
}

/// A point-in-time snapshot of the tiled kernel's far-walk and panel
/// cache activity, exposed by [`TiledSinrCache::diagnostics`] and, via
/// `scenario run --json`, by the scenario runner.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TileDiagnostics {
    /// Slots the tiled kernel has judged.
    pub slots: u64,
    /// Tiles per side at each hierarchy level, leaf first.
    pub level_tiles_per_side: Vec<usize>,
    /// Occupied tiles examined during plan construction, per level.
    pub tiles_visited_per_level: Vec<u64>,
    /// Far aggregate terms emitted into walk plans, per level.
    pub far_terms_per_level: Vec<u64>,
    /// Near (exact) groups emitted into walk plans.
    pub near_terms: u64,
    /// Panel-store hits during plan resolution.
    pub panel_hits: u64,
    /// Panel-store misses during plan resolution.
    pub panel_misses: u64,
    /// Panels evicted by the adaptive store (always `0` for fixed).
    pub panel_evictions: u64,
    /// Panel-data bytes currently resident.
    pub panel_resident_bytes: usize,
    /// High-water mark of resident panel-data bytes.
    pub panel_high_water_bytes: usize,
}

/// Tiled spatial index over a [`SinrCache`]: per-link tile assignments,
/// per-tile membership and summary statistics at every hierarchy level,
/// the per-level far-qualification tables, and the near-field gain
/// panel store.
///
/// Built once per `(network, power, options)` combination and shared
/// behind an [`Arc`] by the tiled oracle ([`super::TiledSinrFeasibility`])
/// and any diagnostics. Not `Clone`: the panel store (adaptive mode)
/// and the diagnostics counters are shared state, and every consumer
/// holds the index behind an `Arc` anyway.
#[derive(Debug)]
pub struct TiledSinrCache {
    pub(super) cache: Arc<SinrCache>,
    pub(super) grid: TileGrid,
    epsilon: f64,
    panel_budget_bytes: usize,
    panel_mode: PanelCacheMode,

    /// Per-link tile of the *sender* position.
    pub(super) sender_tile: Vec<u32>,
    /// Per-link tile of the *receiver* position.
    pub(super) receiver_tile: Vec<u32>,
    /// Per-link rank within its sender tile's member list.
    pub(super) sender_rank: Vec<u32>,
    /// Per-link rank within its receiver tile's member list.
    pub(super) receiver_rank: Vec<u32>,
    /// CSR starts (length `T+1`) of the per-tile sender member lists.
    pub(super) senders_start: Vec<u32>,
    /// Link ids with sender in each tile, ascending within a tile.
    pub(super) senders_links: Vec<u32>,
    /// CSR starts (length `T+1`) of the per-tile receiver member lists.
    pub(super) receivers_start: Vec<u32>,
    /// Link ids with receiver in each tile, ascending within a tile.
    pub(super) receivers_links: Vec<u32>,

    /// Hierarchy levels, leaf (`shift 0`) first.
    pub(super) levels: Vec<TileLevel>,
    /// Far-qualified pairs summed across levels.
    far_pairs: usize,

    /// Near-field gain panels.
    pub(super) panels: PanelStore,
    /// Far-walk counters.
    pub(super) walk: WalkCounters,
}

impl TiledSinrCache {
    /// Builds a flat (single-level, fixed-panel) index — the historical
    /// constructor, equivalent to [`TiledSinrCache::with_options`] with
    /// `levels = 1` and [`PanelCacheMode::Fixed`].
    ///
    /// # Panics
    ///
    /// As [`TiledSinrCache::with_options`].
    pub fn new(
        cache: Arc<SinrCache>,
        tiles_per_side: usize,
        epsilon: f64,
        panel_budget_bytes: usize,
    ) -> Self {
        Self::with_options(
            cache,
            TileOptions::new(tiles_per_side, epsilon).with_panel_budget(panel_budget_bytes),
        )
    }

    /// Builds the tiled index over an already-built shared cache.
    ///
    /// `options.epsilon` is the per-slot relative error budget: a slot
    /// with at most `m` concurrent transmissions sees its per-receiver
    /// interference perturbed by at most `epsilon · margin(receiver)`,
    /// no matter which hierarchy level each far charge lands on.
    /// `epsilon = 0` disables far-field aggregation entirely (the tiled
    /// kernel is then bit-for-bit the exact oracle).
    ///
    /// # Panics
    ///
    /// Panics if `options.tiles_per_side` is out of
    /// `1..=`[`super::MAX_TILES_PER_SIDE`], if `options.levels` is out
    /// of `1..=`[`MAX_TILE_LEVELS`], if `options.epsilon` is negative
    /// or non-finite, or if any position is non-finite.
    pub fn with_options(cache: Arc<SinrCache>, options: TileOptions) -> Self {
        let TileOptions {
            tiles_per_side,
            levels: requested_levels,
            epsilon,
            panel_budget_bytes,
            panel_mode,
        } = options;
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "epsilon must be finite and non-negative, got {epsilon}"
        );
        assert!(
            (1..=MAX_TILE_LEVELS).contains(&requested_levels),
            "levels must be in 1..={MAX_TILE_LEVELS}, got {requested_levels}"
        );
        let m = cache.num_links();
        let grid = TileGrid::cover(
            cache.sender_positions(),
            cache.receiver_positions(),
            tiles_per_side,
        );
        let t = grid.num_tiles();

        let sender_tile: Vec<u32> = cache
            .sender_positions()
            .iter()
            .map(|p| grid.tile_of(p))
            .collect();
        let receiver_tile: Vec<u32> = cache
            .receiver_positions()
            .iter()
            .map(|p| grid.tile_of(p))
            .collect();

        // Counting sort into CSR member lists (ascending link ids per
        // tile, since links are visited in ascending order).
        let csr = |tiles: &[u32]| -> (Vec<u32>, Vec<u32>, Vec<u32>) {
            let mut start = vec![0u32; t + 1];
            for &tile in tiles {
                start[tile as usize + 1] += 1;
            }
            for i in 0..t {
                start[i + 1] += start[i];
            }
            let mut cursor = start.clone();
            let mut links = vec![0u32; m];
            let mut rank = vec![0u32; m];
            for (link, &tile) in tiles.iter().enumerate() {
                let at = cursor[tile as usize];
                links[at as usize] = link as u32;
                rank[link] = at - start[tile as usize];
                cursor[tile as usize] += 1;
            }
            (start, links, rank)
        };
        let (senders_start, senders_links, sender_rank) = csr(&sender_tile);
        let (receivers_start, receivers_links, receiver_rank) = csr(&receiver_tile);

        let levels = build_levels(
            &cache,
            &grid,
            &sender_tile,
            &receiver_tile,
            requested_levels,
            epsilon,
        );
        let far_pairs = levels.iter().map(|l| l.far_pairs).sum();

        // Panel store. Fixed mode fills panels for near leaf pairs in
        // row-major (S, R) order over the *occupied* tile lists,
        // stopping at the first panel that no longer fits the budget
        // (so build work is bounded by the budget, not by g⁴). Adaptive
        // mode starts empty and fills on demand.
        let panels = match panel_mode {
            PanelCacheMode::Adaptive => PanelStore::adaptive(panel_budget_bytes),
            PanelCacheMode::Fixed => {
                let budget_cells = panel_budget_bytes / std::mem::size_of::<f64>();
                let occupied = |start: &[u32]| -> Vec<usize> {
                    (0..t).filter(|&i| start[i] != start[i + 1]).collect()
                };
                let occ_s = occupied(&senders_start);
                let occ_r = occupied(&receivers_start);
                let mut offsets = BTreeMap::new();
                let mut arena = Vec::new();
                'alloc: for &s in &occ_s {
                    let s_links =
                        &senders_links[senders_start[s] as usize..senders_start[s + 1] as usize];
                    for &r in &occ_r {
                        if levels[0].is_far(s as u32, r as u32) {
                            continue;
                        }
                        let r_links = &receivers_links
                            [receivers_start[r] as usize..receivers_start[r + 1] as usize];
                        let cells = s_links.len() * r_links.len();
                        if arena.len() + cells > budget_cells {
                            break 'alloc;
                        }
                        offsets.insert((s as u32, r as u32), arena.len());
                        for &on in r_links {
                            for &from in s_links {
                                arena.push(raw_gain(
                                    cache.sender_positions(),
                                    cache.receiver_positions(),
                                    cache.tx_powers(),
                                    cache.alpha(),
                                    from as usize,
                                    on as usize,
                                ));
                            }
                        }
                    }
                }
                PanelStore::fixed(offsets, arena)
            }
        };

        let walk = WalkCounters {
            slots: AtomicU64::new(0),
            visited: (0..levels.len()).map(|_| AtomicU64::new(0)).collect(),
            far_terms: (0..levels.len()).map(|_| AtomicU64::new(0)).collect(),
            near_terms: AtomicU64::new(0),
        };

        TiledSinrCache {
            cache,
            grid,
            epsilon,
            panel_budget_bytes,
            panel_mode,
            sender_tile,
            receiver_tile,
            sender_rank,
            receiver_rank,
            senders_start,
            senders_links,
            receivers_start,
            receivers_links,
            levels,
            far_pairs,
            panels,
            walk,
        }
    }

    /// The underlying shared geometry cache.
    pub fn cache(&self) -> &SinrCache {
        &self.cache
    }

    /// The shared handle to the underlying geometry cache.
    pub fn shared_cache(&self) -> &Arc<SinrCache> {
        &self.cache
    }

    /// The leaf tile grid.
    pub fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// The far-field error knob `ε` the index was built with.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The panel byte budget the index was built with.
    pub fn panel_budget_bytes(&self) -> usize {
        self.panel_budget_bytes
    }

    /// The panel residency mode the index was built with.
    pub fn panel_mode(&self) -> PanelCacheMode {
        self.panel_mode
    }

    /// Number of links covered.
    pub fn num_links(&self) -> usize {
        self.cache.num_links()
    }

    /// Total number of leaf tiles `g²`.
    pub fn num_tiles(&self) -> usize {
        self.grid.num_tiles()
    }

    /// Number of hierarchy levels actually built (requested levels past
    /// the one-tile-per-side point are dropped).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Tiles per side at hierarchy `level` (level `0` is the leaf).
    ///
    /// # Panics
    ///
    /// Panics if `level >= num_levels()`.
    pub fn level_tiles_per_side(&self, level: usize) -> usize {
        self.levels[level].tiles_per_side
    }

    /// Leaf tile of `link`'s sender position.
    pub fn sender_tile_of(&self, link: LinkId) -> u32 {
        self.sender_tile[link.index()]
    }

    /// Leaf tile of `link`'s receiver position.
    pub fn receiver_tile_of(&self, link: LinkId) -> u32 {
        self.receiver_tile[link.index()]
    }

    /// Whether sender tile `s` is far-qualified for receiver tile `r`
    /// at the leaf level.
    pub fn is_far(&self, s: u32, r: u32) -> bool {
        self.levels[0].is_far(s, r)
    }

    /// Whether sender tile `s` is far-qualified for receiver tile `r`
    /// at hierarchy `level` (tile indices are level-local).
    ///
    /// # Panics
    ///
    /// Panics if `level >= num_levels()` or a tile index is out of the
    /// level's range.
    pub fn is_far_at(&self, level: usize, s: u32, r: u32) -> bool {
        self.levels[level].is_far(s, r)
    }

    /// Far-qualified tile pairs summed across all levels (`0` iff the
    /// kernel is fully exact, in particular always `0` at
    /// `epsilon = 0`).
    pub fn far_pairs(&self) -> usize {
        self.far_pairs
    }

    /// Far-qualified tile pairs at hierarchy `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= num_levels()`.
    pub fn far_pairs_at(&self, level: usize) -> usize {
        self.levels[level].far_pairs
    }

    /// Number of near-field gain panels currently resident.
    pub fn panel_count(&self) -> usize {
        self.panels.resident_count()
    }

    /// Panel-data bytes currently resident.
    pub fn panel_bytes(&self) -> usize {
        self.panels.resident_bytes()
    }

    /// A snapshot of the far-walk and panel-cache diagnostics.
    pub fn diagnostics(&self) -> TileDiagnostics {
        let counters = self.panels.counters();
        TileDiagnostics {
            slots: self.walk.slots.load(Ordering::Relaxed),
            level_tiles_per_side: self.levels.iter().map(|l| l.tiles_per_side).collect(),
            tiles_visited_per_level: self
                .walk
                .visited
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            far_terms_per_level: self
                .walk
                .far_terms
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            near_terms: self.walk.near_terms.load(Ordering::Relaxed),
            panel_hits: counters.hits.load(Ordering::Relaxed),
            panel_misses: counters.misses.load(Ordering::Relaxed),
            panel_evictions: counters.evictions.load(Ordering::Relaxed),
            panel_resident_bytes: self.panels.resident_bytes(),
            panel_high_water_bytes: self.panels.high_water_bytes(),
        }
    }

    /// Approximate heap footprint of the tiled index in bytes: tile
    /// assignments, member lists, every level's summary statistics and
    /// far table, and the panel store at its *high-water* byte mark
    /// (plus per-panel bookkeeping overhead) — so the substrate LRU
    /// budget sees what the index has actually grown to, not just what
    /// is resident this instant. The underlying [`SinrCache`] is
    /// accounted separately via [`SinrCache::approx_bytes`].
    pub fn approx_bytes(&self) -> usize {
        let u32s = self.sender_tile.len()
            + self.receiver_tile.len()
            + self.sender_rank.len()
            + self.receiver_rank.len()
            + self.senders_start.len()
            + self.senders_links.len()
            + self.receivers_start.len()
            + self.receivers_links.len();
        std::mem::size_of::<Self>()
            + u32s * std::mem::size_of::<u32>()
            + self
                .levels
                .iter()
                .map(TileLevel::approx_bytes)
                .sum::<usize>()
            + self.panels.approx_bytes()
    }

    /// Resolves the panel of leaf tile pair `(s, r)` for the current
    /// slot, refilling an adaptive store from the exact gain expression
    /// on miss.
    pub(super) fn resolve_panel(&self, s: u32, r: u32) -> PanelRef {
        let s_links = &self.senders_links
            [self.senders_start[s as usize] as usize..self.senders_start[s as usize + 1] as usize];
        let r_links = &self.receivers_links[self.receivers_start[r as usize] as usize
            ..self.receivers_start[r as usize + 1] as usize];
        let cells = s_links.len() * r_links.len();
        self.panels.resolve((s, r), cells, |data| {
            for &on in r_links {
                for &from in s_links {
                    data.push(raw_gain(
                        self.cache.sender_positions(),
                        self.cache.receiver_positions(),
                        self.cache.tx_powers(),
                        self.cache.alpha(),
                        from as usize,
                        on as usize,
                    ));
                }
            }
        })
    }

    /// The gain `p(d(from))/d(s_from, r_on)^α`, served from the pair's
    /// panel when one is resident and recomputed on the fly otherwise —
    /// bit-for-bit [`SinrCache::gain`] either way. The value for
    /// `from == on` is unspecified; SINR sums never include it.
    #[inline]
    pub fn gain(&self, from: LinkId, on: LinkId) -> f64 {
        let s = self.sender_tile[from.index()];
        let r = self.receiver_tile[on.index()];
        let s_count =
            (self.senders_start[s as usize + 1] - self.senders_start[s as usize]) as usize;
        let index = self.receiver_rank[on.index()] as usize * s_count
            + self.sender_rank[from.index()] as usize;
        match self.panels.probe((s, r), index) {
            Some(gain) => gain,
            None => raw_gain(
                self.cache.sender_positions(),
                self.cache.receiver_positions(),
                self.cache.tx_powers(),
                self.cache.alpha(),
                from.index(),
                on.index(),
            ),
        }
    }
}
