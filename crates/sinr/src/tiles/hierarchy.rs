//! Quadtree-style coarsening levels over the leaf [`TileGrid`]: per-level
//! membership statistics and far-qualification tables.
//!
//! Level `ℓ` merges `2^ℓ × 2^ℓ` leaf tiles into one coarse tile
//! (`g_ℓ = ⌈g/2^ℓ⌉` tiles per side), and its statistics — member radii
//! from the *coarse* centre, max power, min margin — are computed
//! directly from the member links, so a far qualification at level `ℓ`
//! is sound for every leaf descendant simultaneously. Level `0` *is*
//! the leaf grid; its statistics and far table reproduce the flat
//! index bit-for-bit.

use super::grid::TileGrid;
use super::MAX_FAR_TABLE_SIDE;
use crate::cache::SinrCache;
use crate::geom::Point;

/// One coarsening level: implicit geometry (origin + scaled tile size),
/// per-tile membership statistics, and — at levels coarse enough to
/// afford one — the far-qualification table.
#[derive(Debug)]
pub(super) struct TileLevel {
    /// Coarsening shift `ℓ`: one tile covers a `2^ℓ × 2^ℓ` leaf block.
    pub(super) shift: u32,
    /// Tiles per side `g_ℓ = ((g−1) >> ℓ) + 1`.
    pub(super) tiles_per_side: usize,
    origin: Point,
    tile_size: f64,
    /// Senders per tile (occupancy gate for qualification loops).
    pub(super) sender_count: Vec<u32>,
    /// Receivers per tile.
    pub(super) receiver_count: Vec<u32>,
    /// Max sender distance from the tile centre (`0` empty).
    pub(super) sender_radius: Vec<f64>,
    /// Max receiver distance from the tile centre (`0` empty).
    pub(super) receiver_radius: Vec<f64>,
    /// Max transmission power among senders in each tile (`0` empty).
    pub(super) tile_max_power: Vec<f64>,
    /// Min noise-adjusted margin among receivers in each tile
    /// (`+∞` empty).
    pub(super) tile_min_margin: Vec<f64>,
    /// `far[s·T + r] != 0` iff sender tile `s` is far-qualified for
    /// receiver tile `r` at this level. Empty when the level is too
    /// fine for a table (`g_ℓ >` [`MAX_FAR_TABLE_SIDE`]) or `ε = 0` —
    /// such levels never far-qualify and the walk always descends.
    pub(super) far: Vec<u8>,
    /// Number of far-qualified pairs at this level.
    pub(super) far_pairs: usize,
}

impl TileLevel {
    /// Total tiles `g_ℓ²`.
    pub(super) fn num_tiles(&self) -> usize {
        self.tiles_per_side * self.tiles_per_side
    }

    /// The tile of this level containing leaf tile `leaf` (of a leaf
    /// grid with `g0` tiles per side). At `shift = 0` this is the
    /// identity.
    #[inline]
    pub(super) fn tile_of_leaf(&self, leaf: u32, g0: usize) -> u32 {
        let row = leaf as usize / g0;
        let col = leaf as usize % g0;
        ((row >> self.shift) * self.tiles_per_side + (col >> self.shift)) as u32
    }

    /// The geometric centre of `tile` — the same box-centre formula as
    /// [`TileGrid::center`], with the tile side scaled by `2^ℓ`, so the
    /// level-0 centres are bit-for-bit the leaf grid's.
    #[inline]
    pub(super) fn center(&self, tile: u32) -> Point {
        let g = self.tiles_per_side as u32;
        let col = (tile % g) as f64;
        let row = (tile / g) as f64;
        Point::new(
            self.origin.x + (col + 0.5) * self.tile_size,
            self.origin.y + (row + 0.5) * self.tile_size,
        )
    }

    /// Whether sender tile `s` is far-qualified for receiver tile `r`
    /// at this level (always false at levels without a far table).
    #[inline]
    pub(super) fn is_far(&self, s: u32, r: u32) -> bool {
        !self.far.is_empty() && self.far[s as usize * self.num_tiles() + r as usize] != 0
    }

    /// Heap bytes of this level's statistics and far table.
    pub(super) fn approx_bytes(&self) -> usize {
        (self.sender_count.len() + self.receiver_count.len()) * std::mem::size_of::<u32>()
            + (self.sender_radius.len()
                + self.receiver_radius.len()
                + self.tile_max_power.len()
                + self.tile_min_margin.len())
                * std::mem::size_of::<f64>()
            + self.far.len()
    }
}

/// Builds the hierarchy: level 0 (the leaf) through at most `requested`
/// levels, stopping early once a level reaches one tile per side
/// (coarser levels would only duplicate it).
pub(super) fn build_levels(
    cache: &SinrCache,
    grid: &TileGrid,
    sender_tile: &[u32],
    receiver_tile: &[u32],
    requested: usize,
    epsilon: f64,
) -> Vec<TileLevel> {
    let g0 = grid.tiles_per_side();
    let m = cache.num_links();
    let alpha = cache.alpha();
    let mut levels: Vec<TileLevel> = Vec::new();
    for shift in 0..requested as u32 {
        if levels.last().is_some_and(|l| l.tiles_per_side == 1) {
            break;
        }
        let g = ((g0 - 1) >> shift) + 1;
        let t = g * g;
        let mut level = TileLevel {
            shift,
            tiles_per_side: g,
            origin: grid.origin(),
            tile_size: grid.tile_size() * (1u64 << shift) as f64,
            sender_count: vec![0; t],
            receiver_count: vec![0; t],
            sender_radius: vec![0.0; t],
            receiver_radius: vec![0.0; t],
            tile_max_power: vec![0.0; t],
            tile_min_margin: vec![f64::INFINITY; t],
            far: Vec::new(),
            far_pairs: 0,
        };
        for (link, &leaf) in sender_tile.iter().enumerate() {
            let tile = level.tile_of_leaf(leaf, g0) as usize;
            let d = level
                .center(tile as u32)
                .distance(&cache.sender_positions()[link]);
            level.sender_count[tile] += 1;
            level.sender_radius[tile] = level.sender_radius[tile].max(d);
            level.tile_max_power[tile] = level.tile_max_power[tile].max(cache.tx_powers()[link]);
        }
        for (link, &leaf) in receiver_tile.iter().enumerate() {
            let tile = level.tile_of_leaf(leaf, g0) as usize;
            let d = level
                .center(tile as u32)
                .distance(&cache.receiver_positions()[link]);
            level.receiver_count[tile] += 1;
            level.receiver_radius[tile] = level.receiver_radius[tile].max(d);
            level.tile_min_margin[tile] = level.tile_min_margin[tile].min(cache.margins()[link]);
        }

        // Far qualification at this level. For sender tile S and
        // receiver tile R with centre distance D, every receiver r ∈ R
        // has d(c_S, r) ≥ D − ρ_R =: d_min, and every sender s ∈ S has
        // |d(s, r) − d(c_S, r)| ≤ ρ_S. Since x ↦ 1/x^α is decreasing
        // and its spread over [d − ρ_S, d + ρ_S] shrinks with d, the
        // per-transmission error of charging s's power from c_S instead
        // of s is at most
        //   P_max(S) · (1/(d_min − ρ_S)^α − 1/(d_min + ρ_S)^α),
        // which must fit the per-transmission budget
        // ε · margin_min(R) / m. Pairs with d_min ≤ ρ_S (possible
        // zero/negative distances) or margin_min ≤ 0 (a comparison that
        // tolerates no perturbation) never qualify. The bound uses this
        // level's own radii and margins, so a qualification here is
        // sound for every leaf descendant of the pair at once.
        if epsilon > 0.0 && g <= MAX_FAR_TABLE_SIDE {
            let occ_s: Vec<usize> = (0..t).filter(|&i| level.sender_count[i] > 0).collect();
            let occ_r: Vec<usize> = (0..t).filter(|&i| level.receiver_count[i] > 0).collect();
            let mut far = vec![0u8; t * t];
            let mut far_pairs = 0usize;
            for &s in &occ_s {
                let rho_s = level.sender_radius[s];
                let p_max = level.tile_max_power[s];
                for &r in &occ_r {
                    let margin = level.tile_min_margin[r];
                    // NaN margins fail `is_finite`, so `<=` is safe here.
                    if margin <= 0.0 || !margin.is_finite() {
                        continue;
                    }
                    let d_min = level.center(s as u32).distance(&level.center(r as u32))
                        - level.receiver_radius[r];
                    if d_min <= rho_s {
                        continue;
                    }
                    let spread = p_max
                        * (1.0 / (d_min - rho_s).powf(alpha) - 1.0 / (d_min + rho_s).powf(alpha));
                    if spread <= epsilon * margin / m as f64 {
                        far[s * t + r] = 1;
                        far_pairs += 1;
                    }
                }
            }
            level.far = far;
            level.far_pairs = far_pairs;
        }
        levels.push(level);
    }
    levels
}
