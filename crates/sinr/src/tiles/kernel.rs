//! The tiled slot kernel: per-slot active grouping, coarse-level
//! aggregation, per-receiver-tile walk plans, and the (optionally
//! region-sharded, multi-threaded) verdict loop.

use std::cell::RefCell;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use super::index::TiledSinrCache;
use super::panels::PanelRef;
use crate::cache::SinrCache;
use crate::network::SinrNetwork;
use crate::power::PowerAssignment;
use dps_core::feasibility::{Attempt, Feasibility};
use dps_core::ids::LinkId;
use dps_core::interference::InterferenceModel;
use dps_core::load::LinkLoad;
use dps_core::parallel::parallel_map;
use dps_core::region::RegionMap;
use rand::RngCore;

use super::MAX_KERNEL_THREADS;

/// The active set bucketed by sender leaf tile, rebuilt per slot:
/// `entries` holds `(tile, link, count)` sorted by `(tile, link)`;
/// `touched[i]` is the `i`-th occupied leaf tile (ascending) whose
/// entries span `entries[start[i]..start[i + 1]]` and whose summed
/// transmission weight `Σ count·p` is `weight[i]`.
#[derive(Default)]
pub(super) struct TileGroups {
    pub(super) entries: Vec<(u32, u32, u32)>,
    pub(super) touched: Vec<u32>,
    pub(super) start: Vec<u32>,
    pub(super) weight: Vec<f64>,
}

/// One coarse hierarchy level's occupied tiles this slot, aggregated
/// from the level below: `tiles` ascending, `weight[i]` the summed
/// transmission weight of the subtree, `children[child_start[i]..
/// child_start[i+1]]` the indices into the level below's occupied list
/// (leaf `touched` for the first coarse level).
#[derive(Default)]
pub(super) struct SlotCoarse {
    tiles: Vec<u32>,
    weight: Vec<f64>,
    child_start: Vec<u32>,
    children: Vec<u32>,
}

/// One slot's walk plans, flattened: `keys` holds the distinct receiver
/// leaf tiles (ascending), plan `i`'s terms span
/// `terms[term_start[i]..term_start[i+1]]`. Every receiver in the same
/// leaf tile shares one plan — the far walk runs once per occupied
/// receiver tile, not once per receiver.
#[derive(Default)]
pub(super) struct SlotPlans {
    keys: Vec<u32>,
    term_start: Vec<u32>,
    terms: Vec<PlanTerm>,
}

impl SlotPlans {
    fn clear(&mut self) {
        self.keys.clear();
        self.term_start.clear();
        self.terms.clear();
    }
}

/// One term of a walk plan, in DFS (ascending tile) emission order.
enum PlanTerm {
    /// Charge the aggregated subtree weight of occupied entry `idx` at
    /// hierarchy `level` from that tile's centre.
    Far { level: u8, idx: u32 },
    /// Accumulate leaf group `group` exactly, through `panel` when one
    /// is resident.
    Near { group: u32, panel: PanelRef },
}

/// Per-thread slot scratch for the tiled oracle: distinct links with
/// multiplicity, per-distinct-link verdicts, the per-slot tile grouping
/// and hierarchy bookkeeping (all sized by the *active* set, never by
/// the tile count — sparse slots stay cheap).
struct TiledSlotScratch {
    active: Vec<(u32, u32)>,
    verdicts: Vec<bool>,
    groups: TileGroups,
    coarse: Vec<SlotCoarse>,
    pairs: Vec<(u32, u32)>,
    plans: SlotPlans,
    stack: Vec<(u8, u32)>,
    shard_keys: Vec<u32>,
    interference: Vec<f64>,
    lanes: Vec<f64>,
}

thread_local! {
    /// Keeps [`TiledSinrFeasibility`] callable through `&self`/`Arc`
    /// across threads while the slot loop stays allocation-free in
    /// steady state.
    static TILED_SLOT_SCRATCH: RefCell<TiledSlotScratch> = RefCell::new(TiledSlotScratch {
        active: Vec::new(),
        verdicts: Vec::new(),
        groups: TileGroups::default(),
        coarse: Vec::new(),
        pairs: Vec::new(),
        plans: SlotPlans::default(),
        stack: Vec::new(),
        shard_keys: Vec::new(),
        interference: Vec::new(),
        lanes: Vec::new(),
    });
}

/// The tiled accumulative SINR oracle: near-field terms exactly (from
/// panels or on-the-fly gains), far-field regions as one aggregated
/// term each at the coarsest qualifying hierarchy level, within the
/// `ε·margin` error contract of [`TiledSinrCache`]. The per-receiver
/// verdict loop optionally fans out over
/// [`dps_core::parallel::parallel_map`] worker threads in
/// [`RegionMap`] shards; every receiver's accumulation order is
/// independent of the sharding, so verdicts are bit-for-bit identical
/// at any thread count.
///
/// At `epsilon = 0` this is bit-for-bit [`SinrFeasibility`]'s fallback
/// scalar path (property-tested in `tests/prop_tiles.rs`).
///
/// [`SinrFeasibility`]: crate::feasibility::SinrFeasibility
#[derive(Clone, Debug)]
pub struct TiledSinrFeasibility<P> {
    net: SinrNetwork,
    power: P,
    tiles: Arc<TiledSinrCache>,
    threads: usize,
    regions: RegionMap,
}

impl<P: PowerAssignment> TiledSinrFeasibility<P> {
    /// Creates the flat (single-level) tiled oracle, deriving a
    /// geometry cache (the flat dense gain table is materialized only
    /// under [`crate::cache::SinrCache`]'s dense cap, so metro-scale
    /// instances stay `O(m)` — panels and far-field aggregation replace
    /// the table beyond it) and the tiled index under
    /// [`super::DEFAULT_PANEL_BUDGET_BYTES`].
    pub fn new(net: SinrNetwork, power: P, tiles_per_side: usize, epsilon: f64) -> Self {
        Self::with_options(net, power, super::TileOptions::new(tiles_per_side, epsilon))
    }

    /// Creates the flat tiled oracle with an explicit panel byte budget
    /// (`0` forces every gain onto the on-the-fly path).
    pub fn with_budget(
        net: SinrNetwork,
        power: P,
        tiles_per_side: usize,
        epsilon: f64,
        panel_budget_bytes: usize,
    ) -> Self {
        Self::with_options(
            net,
            power,
            super::TileOptions::new(tiles_per_side, epsilon).with_panel_budget(panel_budget_bytes),
        )
    }

    /// Creates the tiled oracle from full [`super::TileOptions`] —
    /// hierarchy depth and panel residency included.
    pub fn with_options(net: SinrNetwork, power: P, options: super::TileOptions) -> Self {
        let cache = Arc::new(SinrCache::new(&net, &power));
        let tiles = Arc::new(TiledSinrCache::with_options(cache, options));
        Self::with_tiles(net, power, tiles)
    }

    /// Creates the oracle around an already-built shared tiled index —
    /// the substrate-sharing path. The kernel starts single-threaded;
    /// see [`TiledSinrFeasibility::kernel_threads`].
    ///
    /// # Panics
    ///
    /// Panics if the index's underlying cache was not built for this
    /// `(network, power)` pair: the link count must match and every
    /// link's cached transmission power and signal strength must be
    /// bit-for-bit what `power` produces on `net` (the same pairing
    /// contract as [`crate::feasibility::SinrFeasibility::with_cache`]).
    pub fn with_tiles(net: SinrNetwork, power: P, tiles: Arc<TiledSinrCache>) -> Self {
        let cache = tiles.cache();
        assert_eq!(
            cache.num_links(),
            net.num_links(),
            "shared TiledSinrCache must cover the oracle's network"
        );
        assert!(
            cache.beta().to_bits() == net.params().beta.to_bits()
                && cache.noise().to_bits() == net.params().noise.to_bits(),
            "shared TiledSinrCache was built under different SINR parameters"
        );
        let alpha = net.params().alpha;
        for (index, &len) in net.lengths().iter().enumerate() {
            let link = LinkId(index as u32);
            let p = power.power(len);
            assert!(
                cache.tx_power(link).to_bits() == p.to_bits()
                    && cache.signal(link).to_bits() == (p / len.powf(alpha)).to_bits(),
                "shared TiledSinrCache was built for a different (network, power) pair \
                 (mismatch at link {index})"
            );
        }
        let m = net.num_links();
        let regions = RegionMap::contiguous(m, RegionMap::default_regions(m));
        TiledSinrFeasibility {
            net,
            power,
            tiles,
            threads: 1,
            regions,
        }
    }

    /// Sets the worker thread count of the slot kernel's per-receiver
    /// verdict loop. `1` (the default) judges inline on the calling
    /// thread; higher counts fan [`RegionMap`] shards of the active
    /// receivers over [`parallel_map`] workers. Verdicts are bit-for-bit
    /// identical at any setting.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is `0` or exceeds [`MAX_KERNEL_THREADS`].
    pub fn kernel_threads(mut self, threads: usize) -> Self {
        assert!(
            (1..=MAX_KERNEL_THREADS).contains(&threads),
            "kernel threads must be in 1..={MAX_KERNEL_THREADS}, got {threads}"
        );
        self.threads = threads;
        self
    }

    /// The configured worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The network the oracle judges.
    pub fn network(&self) -> &SinrNetwork {
        &self.net
    }

    /// The power assignment the oracle judges under.
    pub fn power(&self) -> &P {
        &self.power
    }

    /// The tiled index the oracle judges from.
    pub fn tiles(&self) -> &TiledSinrCache {
        &self.tiles
    }

    /// The shared handle to the tiled index.
    pub fn shared_tiles(&self) -> &Arc<TiledSinrCache> {
        &self.tiles
    }

    /// The accumulated tiled interference each *distinct* attempted
    /// link sees this slot, in ascending link order — the exact value
    /// the kernel compares against `β·(I + ν)`. Diagnostic/referee
    /// surface: `tests/prop_tiles.rs` pins `|I_tiled − I_exact| ≤
    /// ε·margin` against the naive oracle's sums.
    pub fn slot_interference(&self, attempts: &[Attempt]) -> Vec<(LinkId, f64)> {
        let mut active: Vec<(u32, u32)> = Vec::new();
        dedup_attempts(attempts, &mut active);
        let mut groups = TileGroups::default();
        let mut coarse = Vec::new();
        let mut pairs = Vec::new();
        let mut plans = SlotPlans::default();
        let mut stack = Vec::new();
        self.group_active_by_tile(&active, &mut groups);
        if !groups.touched.is_empty() {
            self.build_coarse(&groups, &mut coarse, &mut pairs);
            self.build_plans(&active, &groups, &coarse, &mut plans, &mut stack);
        }
        active
            .iter()
            .map(|&(on_raw, _)| {
                (
                    LinkId(on_raw),
                    interference_with_plans(&self.tiles, on_raw, &active, &groups, &coarse, &plans),
                )
            })
            .collect()
    }

    /// Buckets the active list by sender leaf tile: entries sorted by
    /// `(tile, link)`, touched tiles ascending with group extents and
    /// summed transmission weights `W_S = Σ count·p`. Skipped entirely
    /// when nothing is far-qualified at any level — the slot kernel
    /// then runs the plain (exact) scalar loop and never reads the
    /// grouping.
    fn group_active_by_tile(&self, active: &[(u32, u32)], groups: &mut TileGroups) {
        groups.entries.clear();
        groups.touched.clear();
        groups.start.clear();
        groups.weight.clear();
        if self.tiles.far_pairs() == 0 {
            return;
        }
        groups.entries.extend(
            active
                .iter()
                .map(|&(from, count)| (self.tiles.sender_tile[from as usize], from, count)),
        );
        groups
            .entries
            .sort_unstable_by_key(|&(tile, link, _)| (tile, link));
        let tx_power = self.tiles.cache.tx_powers();
        for (i, &(tile, from, count)) in groups.entries.iter().enumerate() {
            if groups.touched.last() != Some(&tile) {
                groups.touched.push(tile);
                groups.start.push(i as u32);
                groups.weight.push(0.0);
            }
            *groups.weight.last_mut().expect("group opened above") +=
                count as f64 * tx_power[from as usize];
        }
        groups.start.push(groups.entries.len() as u32);
    }

    /// Aggregates the slot's occupied leaf groups up the hierarchy:
    /// coarse level `ℓ` (stored at `coarse[ℓ-1]`) maps the occupied
    /// entries of the level below to their parents, sorted and deduped,
    /// with subtree weights summed in child order — deterministic
    /// regardless of thread count, since this runs before the fan-out.
    fn build_coarse(
        &self,
        groups: &TileGroups,
        coarse: &mut Vec<SlotCoarse>,
        pairs: &mut Vec<(u32, u32)>,
    ) {
        let levels = &self.tiles.levels;
        coarse.resize_with(levels.len().saturating_sub(1), SlotCoarse::default);
        for l in 1..levels.len() {
            let (done, rest) = coarse.split_at_mut(l - 1);
            let (below_tiles, below_weight, below_side): (&[u32], &[f64], usize) = if l == 1 {
                (
                    &groups.touched,
                    &groups.weight,
                    self.tiles.grid.tiles_per_side(),
                )
            } else {
                let below = &done[l - 2];
                (&below.tiles, &below.weight, levels[l - 1].tiles_per_side)
            };
            let this_side = levels[l].tiles_per_side;
            pairs.clear();
            pairs.extend(below_tiles.iter().enumerate().map(|(i, &tile)| {
                let row = tile as usize / below_side;
                let col = tile as usize % below_side;
                let parent = ((row >> 1) * this_side + (col >> 1)) as u32;
                (parent, i as u32)
            }));
            // Parent indices are not monotone in the child's row-major
            // order (a row of children alternates between two parent
            // rows), so sorting is what restores ascending tile order.
            pairs.sort_unstable();
            let up = &mut rest[0];
            up.tiles.clear();
            up.weight.clear();
            up.child_start.clear();
            up.children.clear();
            for &(parent, child) in pairs.iter() {
                if up.tiles.last() != Some(&parent) {
                    up.tiles.push(parent);
                    up.child_start.push(up.children.len() as u32);
                    up.weight.push(0.0);
                }
                up.children.push(child);
                *up.weight.last_mut().expect("group opened above") += below_weight[child as usize];
            }
            up.child_start.push(up.children.len() as u32);
        }
    }

    /// Builds one walk plan per distinct receiver leaf tile of the
    /// active set: a DFS from the coarsest level that charges each far
    /// subtree at the coarsest qualifying level and descends otherwise,
    /// emitting terms in ascending-tile DFS order. Near terms resolve
    /// their panel here — on the calling thread, before any fan-out —
    /// so the adaptive panel cache's evict/refill order is
    /// deterministic and the parallel verdict loop reads panels
    /// lock-free.
    fn build_plans(
        &self,
        active: &[(u32, u32)],
        groups: &TileGroups,
        coarse: &[SlotCoarse],
        plans: &mut SlotPlans,
        stack: &mut Vec<(u8, u32)>,
    ) {
        let tiles = &*self.tiles;
        let levels = &tiles.levels;
        let g0 = tiles.grid.tiles_per_side();
        tiles.panels.tick();
        plans.clear();
        plans.keys.extend(
            active
                .iter()
                .map(|&(on, _)| tiles.receiver_tile[on as usize]),
        );
        plans.keys.sort_unstable();
        plans.keys.dedup();

        let mut visited = vec![0u64; levels.len()];
        let mut far_terms = vec![0u64; levels.len()];
        let mut near_terms = 0u64;
        let top = levels.len() - 1;
        for key_at in 0..plans.keys.len() {
            let r_leaf = plans.keys[key_at];
            plans.term_start.push(plans.terms.len() as u32);
            stack.clear();
            if top == 0 {
                for j in (0..groups.touched.len()).rev() {
                    stack.push((0, j as u32));
                }
            } else {
                for j in (0..coarse[top - 1].tiles.len()).rev() {
                    stack.push((top as u8, j as u32));
                }
            }
            while let Some((l, j)) = stack.pop() {
                let l_us = l as usize;
                visited[l_us] += 1;
                if l == 0 {
                    let s = groups.touched[j as usize];
                    if levels[0].is_far(s, r_leaf) {
                        far_terms[0] += 1;
                        plans.terms.push(PlanTerm::Far { level: 0, idx: j });
                    } else {
                        near_terms += 1;
                        let panel = tiles.resolve_panel(s, r_leaf);
                        plans.terms.push(PlanTerm::Near { group: j, panel });
                    }
                } else {
                    let occ = &coarse[l_us - 1];
                    let s = occ.tiles[j as usize];
                    let r = levels[l_us].tile_of_leaf(r_leaf, g0);
                    if levels[l_us].is_far(s, r) {
                        far_terms[l_us] += 1;
                        plans.terms.push(PlanTerm::Far { level: l, idx: j });
                    } else {
                        let span = occ.child_start[j as usize] as usize
                            ..occ.child_start[j as usize + 1] as usize;
                        for k in span.rev() {
                            stack.push((l - 1, occ.children[k]));
                        }
                    }
                }
            }
        }
        plans.term_start.push(plans.terms.len() as u32);

        for (counter, n) in tiles.walk.visited.iter().zip(&visited) {
            counter.fetch_add(*n, Ordering::Relaxed);
        }
        for (counter, n) in tiles.walk.far_terms.iter().zip(&far_terms) {
            counter.fetch_add(*n, Ordering::Relaxed);
        }
        tiles
            .walk
            .near_terms
            .fetch_add(near_terms, Ordering::Relaxed);
    }
}

/// The tiled interference accumulated at distinct active link `on_raw`.
///
/// With no far-qualified tile pairs (`ε = 0`, or geometry that never
/// qualifies) this is the exact oracle's scalar loop — ascending
/// link order over the shared cache's gains, bit-for-bit.
///
/// Otherwise the kernel replays its receiver tile's walk plan in
/// DFS term order: a far term contributes one aggregated subtree
/// term `W / d(center, r)^α` (with `on`'s own power removed when
/// its sender tile lies under the charged subtree), a near term
/// streams its leaf group's active senders through the tile-pair
/// panel row (contiguous reads) or on-the-fly gains when the pair
/// is un-panelled.
///
/// A free function over the (fully `Sync`) tiled index rather than a
/// method, so the parallel verdict closure never captures the oracle's
/// power-assignment type parameter.
#[inline]
fn interference_with_plans(
    tiles: &TiledSinrCache,
    on_raw: u32,
    active: &[(u32, u32)],
    groups: &TileGroups,
    coarse: &[SlotCoarse],
    plans: &SlotPlans,
) -> f64 {
    {
        let cache = &*tiles.cache;
        let on = LinkId(on_raw);
        let mut interference = 0.0;
        if groups.touched.is_empty() {
            for &(from_raw, from_count) in active {
                if from_raw == on_raw {
                    continue;
                }
                // A NaN gain (coincident endpoints) poisons the sum,
                // failing the comparison — the naive "zero cross
                // distance blocks the receiver" rule.
                interference += from_count as f64 * cache.gain(LinkId(from_raw), on);
            }
            return interference;
        }
        let g0 = tiles.grid.tiles_per_side();
        let r_leaf = tiles.receiver_tile[on_raw as usize];
        let r_rank = tiles.receiver_rank[on_raw as usize] as usize;
        let plan = plans
            .keys
            .binary_search(&r_leaf)
            .expect("every active receiver tile has a plan");
        let terms =
            &plans.terms[plans.term_start[plan] as usize..plans.term_start[plan + 1] as usize];
        let alpha = cache.alpha();
        let receiver = cache.receiver_positions()[on_raw as usize];
        let own_leaf = tiles.sender_tile[on_raw as usize];
        for term in terms {
            match term {
                PlanTerm::Far { level, idx } => {
                    // Far tiles are geometrically incapable of zero
                    // cross distances, so aggregating them never hides
                    // a NaN.
                    let l = *level as usize;
                    let idx = *idx as usize;
                    let (s_tile, mut weight) = if l == 0 {
                        (groups.touched[idx], groups.weight[idx])
                    } else {
                        (coarse[l - 1].tiles[idx], coarse[l - 1].weight[idx])
                    };
                    if tiles.levels[l].tile_of_leaf(own_leaf, g0) == s_tile {
                        // The exact sum excludes `on`'s own
                        // transmission; remove it from the aggregate.
                        // Receivers sharing a slot with their own
                        // multiplicity > 1 are judged failed before
                        // interference is evaluated, so one
                        // transmission is exact here.
                        weight -= cache.tx_powers()[on_raw as usize];
                    }
                    let d = tiles.levels[l].center(s_tile).distance(&receiver);
                    interference += weight / d.powf(alpha);
                }
                PlanTerm::Near { group, panel } => {
                    let i = *group as usize;
                    let group_entries =
                        &groups.entries[groups.start[i] as usize..groups.start[i + 1] as usize];
                    let s = groups.touched[i] as usize;
                    let row: Option<&[f64]> = match panel {
                        PanelRef::Arena(offset) => {
                            let super::panels::PanelStore::Fixed { arena, .. } = &tiles.panels
                            else {
                                unreachable!("arena refs only come from fixed stores")
                            };
                            let s_count =
                                (tiles.senders_start[s + 1] - tiles.senders_start[s]) as usize;
                            Some(&arena[offset + r_rank * s_count..][..s_count])
                        }
                        PanelRef::Owned(data) => {
                            let s_count =
                                (tiles.senders_start[s + 1] - tiles.senders_start[s]) as usize;
                            Some(&data[r_rank * s_count..][..s_count])
                        }
                        PanelRef::None => None,
                    };
                    match row {
                        Some(row) => {
                            for &(_, from_raw, from_count) in group_entries {
                                if from_raw == on_raw {
                                    continue;
                                }
                                interference += from_count as f64
                                    * row[tiles.sender_rank[from_raw as usize] as usize];
                            }
                        }
                        None => {
                            for &(_, from_raw, from_count) in group_entries {
                                if from_raw == on_raw {
                                    continue;
                                }
                                interference +=
                                    from_count as f64 * cache.gain(LinkId(from_raw), on);
                            }
                        }
                    }
                }
            }
        }
        interference
    }
}

/// Collapses `attempts` into the distinct attempted links with their
/// multiplicities, ascending by link index — the shared preamble of the
/// exact and tiled slot kernels (identical ordering is part of the
/// `epsilon = 0` bitwise contract).
fn dedup_attempts(attempts: &[Attempt], active: &mut Vec<(u32, u32)>) {
    active.clear();
    active.extend(attempts.iter().map(|a| (a.link.0, 1u32)));
    active.sort_unstable_by_key(|&(link, _)| link);
    let mut write = 0;
    for read in 1..active.len() {
        if active[read].0 == active[write].0 {
            active[write].1 += active[read].1;
        } else {
            write += 1;
            active[write] = active[read];
        }
    }
    active.truncate(write + 1);
}

impl<P: PowerAssignment> Feasibility for TiledSinrFeasibility<P> {
    fn successes(&self, attempts: &[Attempt], rng: &mut dyn RngCore) -> Vec<bool> {
        let mut out = Vec::new();
        self.successes_into(attempts, &mut out, rng);
        out
    }

    fn successes_into(&self, attempts: &[Attempt], out: &mut Vec<bool>, _rng: &mut dyn RngCore) {
        out.clear();
        if attempts.is_empty() {
            return;
        }
        let cache = self.tiles.cache();
        let beta = cache.beta();
        let noise = cache.noise();
        TILED_SLOT_SCRATCH.with(|scratch| {
            let TiledSlotScratch {
                active,
                verdicts,
                groups,
                coarse,
                pairs,
                plans,
                stack,
                shard_keys,
                interference,
                lanes,
            } = &mut *scratch.borrow_mut();
            dedup_attempts(attempts, active);
            self.group_active_by_tile(active, groups);
            self.tiles.walk.slots.fetch_add(1, Ordering::Relaxed);
            verdicts.clear();
            if groups.touched.is_empty()
                && cache.active_interference_into(active, interference, lanes)
            {
                // No far machinery and a dense gain table: the exact
                // oracle's blocked kernel produced every receiver's
                // accumulated interference, bit-for-bit in the scalar
                // order; only the comparisons remain.
                verdicts.extend(active.iter().zip(interference.iter()).map(
                    |(&(on_raw, count), &interference)| {
                        // A shared transmitter collides regardless of SINR.
                        count == 1 && cache.signal(LinkId(on_raw)) >= beta * (interference + noise)
                    },
                ));
            } else {
                if groups.touched.is_empty() {
                    plans.clear();
                } else {
                    self.build_coarse(groups, coarse, pairs);
                    self.build_plans(active, groups, coarse, plans, stack);
                }
                let tiles: &TiledSinrCache = &self.tiles;
                let judge = |on_raw: u32, count: u32| -> bool {
                    if count != 1 {
                        // A shared transmitter collides regardless of SINR.
                        return false;
                    }
                    let interference =
                        interference_with_plans(tiles, on_raw, active, groups, coarse, plans);
                    cache.signal(LinkId(on_raw)) >= beta * (interference + noise)
                };
                if self.threads <= 1 {
                    verdicts.extend(active.iter().map(|&(on_raw, count)| judge(on_raw, count)));
                } else {
                    // Region-sharded fan-out: every receiver's
                    // accumulation is independent and the per-shard
                    // verdict vectors are spliced back in shard (hence
                    // ascending link) order, so this is bit-for-bit
                    // the single-threaded loop above.
                    shard_keys.clear();
                    shard_keys.extend(active.iter().map(|&(link, _)| link));
                    let spans = self.regions.shard_sorted(shard_keys);
                    let parts = parallel_map(spans.len(), self.threads, |i| {
                        spans[i]
                            .clone()
                            .map(|at| {
                                let (on_raw, count) = active[at];
                                judge(on_raw, count)
                            })
                            .collect::<Vec<bool>>()
                    });
                    for part in parts {
                        verdicts.extend(part);
                    }
                }
            }
            out.extend(attempts.iter().map(|a| {
                let slot = active
                    .binary_search_by_key(&a.link.0, |&(link, _)| link)
                    .expect("every attempted link is in the active list");
                verdicts[slot]
            }));
        });
    }
}

/// On-demand interference rows over a shared [`SinrCache`]: the
/// `O(1)`-memory companion of
/// [`crate::matrix::SinrInterference::fixed_power`] for metro-scale
/// instances, where materializing the dense `m × m` table is
/// prohibitive (34 GiB at `m = 65536`).
///
/// Entries are bit-for-bit the fixed-power matrix construction:
/// diagonal `1`, off-diagonal `a_p(from, on)` clamped into `[0, 1]`
/// (affectance already lands there, `NaN`s included via the clamp).
///
/// When built over a tiled index ([`TiledInterference::with_tiles`])
/// the whole-matrix measure `‖W·R‖∞` routes through the index's
/// far-field aggregation (the `measure` submodule's tiled walk)
/// whenever any tile pair is far-qualified — the trait default's
/// `O(m²)` row walk is what
/// made megacity-scale injection-rate normalization cost hours. With
/// no far pairs (`ε = 0` included) the measure stays the trait
/// default, bit-for-bit.
#[derive(Clone, Debug)]
pub struct TiledInterference {
    cache: Arc<SinrCache>,
    tiles: Option<Arc<TiledSinrCache>>,
}

impl TiledInterference {
    /// Wraps a shared geometry cache as an on-demand interference
    /// model (entry-exact, trait-default measure).
    pub fn new(cache: Arc<SinrCache>) -> Self {
        TiledInterference { cache, tiles: None }
    }

    /// Wraps a shared tiled index: entries stay the exact on-demand
    /// affectances, the measure routes through the index's far-field
    /// aggregation under its `ε·margin` error contract.
    pub fn with_tiles(tiles: Arc<TiledSinrCache>) -> Self {
        TiledInterference {
            cache: tiles.shared_cache().clone(),
            tiles: Some(tiles),
        }
    }

    /// The shared handle to the underlying geometry cache.
    pub fn shared_cache(&self) -> &Arc<SinrCache> {
        &self.cache
    }
}

impl InterferenceModel for TiledInterference {
    fn num_links(&self) -> usize {
        self.cache.num_links()
    }

    fn weight(&self, on: LinkId, from: LinkId) -> f64 {
        if on == from {
            1.0
        } else {
            self.cache.affectance(from, on).clamp(0.0, 1.0)
        }
    }

    fn measure(&self, load: &LinkLoad) -> f64 {
        match &self.tiles {
            Some(tiles) if tiles.far_pairs() > 0 => super::measure::measure_with_tiles(tiles, load),
            // The trait default's exact row walk, restated so the
            // un-tiled (and ε = 0) paths stay bit-for-bit with every
            // other interference model.
            _ => (0..self.num_links() as u32)
                .map(|e| self.row_load(LinkId(e), load))
                .fold(0.0, f64::max),
        }
    }
}
