use super::*;
use crate::cache::SinrCache;
use crate::feasibility::SinrFeasibility;
use crate::geom::Point;
use crate::instances::{line_instance, random_instance};
use crate::matrix::SinrInterference;
use crate::network::{SinrNetwork, SinrNetworkBuilder};
use crate::params::SinrParams;
use crate::power::{LinearPower, UniformPower};
use dps_core::feasibility::{Attempt, Feasibility};
use dps_core::ids::{LinkId, PacketId};
use dps_core::interference::InterferenceModel;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::sync::Arc;

fn attempt(link: u32, packet: u64) -> Attempt {
    Attempt {
        link: LinkId(link),
        packet: PacketId(packet),
    }
}

fn rng() -> ChaCha12Rng {
    ChaCha12Rng::seed_from_u64(1)
}

/// Two tight 4-link clusters `separation` apart — the canonical
/// far-qualifiable geometry.
fn cluster_instance(separation: f64) -> SinrNetwork {
    let mut b = SinrNetworkBuilder::new(SinrParams::default_noiseless());
    for i in 0..4 {
        let x = i as f64 * 0.5;
        b.add_isolated_link((x, 0.0), (x, 1.0));
        b.add_isolated_link((x + separation, 0.0), (x + separation, 1.0));
    }
    b.build()
}

#[test]
fn boundary_points_take_floor_semantics_and_max_edge_clamps() {
    // 2×2 grid over [0, 2]²: tile side 1.
    let senders = [Point::new(0.0, 0.0), Point::new(2.0, 2.0)];
    let receivers = [Point::new(0.5, 0.5), Point::new(1.5, 1.5)];
    let grid = TileGrid::cover(&senders, &receivers, 2);
    assert_eq!(grid.tile_size(), 1.0);
    // Interior boundary: exactly on the x = 1 line goes right,
    // y = 1 goes up.
    assert_eq!(grid.tile_of(&Point::new(1.0, 0.0)), 1);
    assert_eq!(grid.tile_of(&Point::new(0.0, 1.0)), 2);
    assert_eq!(grid.tile_of(&Point::new(1.0, 1.0)), 3);
    // The max corner and edges clamp into the last row/column
    // instead of falling off the grid.
    assert_eq!(grid.tile_of(&Point::new(2.0, 2.0)), 3);
    assert_eq!(grid.tile_of(&Point::new(2.0, 0.0)), 1);
    // Corners of the box.
    assert_eq!(grid.tile_of(&Point::new(0.0, 0.0)), 0);
    assert_eq!(grid.tile_of(&Point::new(0.999, 0.999)), 0);
}

#[test]
fn zero_area_deployment_collapses_to_tile_zero() {
    let p = [Point::new(3.0, -4.0); 5];
    let grid = TileGrid::cover(&p, &p, 4);
    assert_eq!(grid.tile_size(), 1.0);
    for q in &p {
        assert_eq!(grid.tile_of(q), 0);
    }
    // Degenerate 1-D extent still builds square tiles from the max
    // extent.
    let line = [Point::new(0.0, 0.0), Point::new(0.0, 8.0)];
    let grid = TileGrid::cover(&line, &line, 4);
    assert_eq!(grid.tile_size(), 2.0);
    assert_eq!(grid.tile_of(&Point::new(0.0, 0.0)), 0);
    assert_eq!(grid.tile_of(&Point::new(0.0, 8.0)), 12);
}

#[test]
fn grid_rejects_invalid_resolutions() {
    let p = [Point::new(0.0, 0.0)];
    for bad in [0, MAX_TILES_PER_SIDE + 1] {
        let result = std::panic::catch_unwind(|| TileGrid::cover(&p, &p, bad));
        assert!(result.is_err(), "tiles_per_side = {bad} must be rejected");
    }
}

#[test]
fn options_validation_rejects_bad_levels_and_threads() {
    let net = line_instance(3, 2.0, SinrParams::default_noiseless());
    for bad_levels in [0, MAX_TILE_LEVELS + 1] {
        let net = net.clone();
        let result = std::panic::catch_unwind(move || {
            TiledSinrFeasibility::with_options(
                net,
                UniformPower::unit(),
                TileOptions::new(2, 0.0).with_levels(bad_levels),
            )
        });
        assert!(result.is_err(), "levels = {bad_levels} must be rejected");
    }
    for bad_threads in [0, MAX_KERNEL_THREADS + 1] {
        let net = net.clone();
        let result = std::panic::catch_unwind(move || {
            TiledSinrFeasibility::new(net, UniformPower::unit(), 2, 0.0).kernel_threads(bad_threads)
        });
        assert!(result.is_err(), "threads = {bad_threads} must be rejected");
    }
}

#[test]
fn one_tile_grid_is_bitwise_exact_for_any_epsilon() {
    let mut rng_geo = ChaCha12Rng::seed_from_u64(11);
    let params = SinrParams::with_noise(0.01);
    let net = random_instance(24, 50.0, 1.0, 3.0, params, &mut rng_geo);
    let power = LinearPower::new(params.alpha);
    let exact = SinrFeasibility::new(net.clone(), power);
    let tiled = TiledSinrFeasibility::new(net, power, 1, 0.5);
    // One tile: no pair can satisfy d_min > ρ_S, so nothing is far.
    assert_eq!(tiled.tiles().far_pairs(), 0);
    let attempts: Vec<Attempt> = (0..24).map(|i| attempt(i % 24, i as u64)).collect();
    assert_eq!(
        exact.successes(&attempts, &mut rng()),
        tiled.successes(&attempts, &mut rng())
    );
}

#[test]
fn epsilon_zero_never_qualifies_far_pairs() {
    // Two clusters 10⁴ apart: far-qualifiable in principle, but
    // ε = 0 tolerates no perturbation at all — at any hierarchy depth.
    let net = cluster_instance(10_000.0);
    let zero = TiledSinrFeasibility::with_options(
        net.clone(),
        UniformPower::unit(),
        TileOptions::new(8, 0.0).with_levels(4),
    );
    assert_eq!(zero.tiles().far_pairs(), 0);
    let loose = TiledSinrFeasibility::new(net, UniformPower::unit(), 8, 1e-2);
    assert!(
        loose.tiles().far_pairs() > 0,
        "well-separated clusters must far-qualify under ε = 1e-2"
    );
}

#[test]
fn hierarchy_halves_tiles_per_side_and_stops_at_one() {
    let mut rng_geo = ChaCha12Rng::seed_from_u64(13);
    let params = SinrParams::default_noiseless();
    let net = random_instance(16, 40.0, 1.0, 2.0, params, &mut rng_geo);
    let power = UniformPower::unit();
    let cache = Arc::new(SinrCache::with_dense_limit(&net, &power, 0));
    // Requesting the max depth over an 8-per-side leaf stops once a
    // level reaches one tile per side: 8 → 4 → 2 → 1.
    let tiles = TiledSinrCache::with_options(
        Arc::clone(&cache),
        TileOptions::new(8, 1e-3).with_levels(MAX_TILE_LEVELS),
    );
    assert_eq!(tiles.num_levels(), 4);
    assert_eq!(
        (0..4)
            .map(|l| tiles.level_tiles_per_side(l))
            .collect::<Vec<_>>(),
        vec![8, 4, 2, 1]
    );
    // Level 0 leaf mapping is the identity; coarser levels merge 2×2
    // blocks row/column-wise.
    for leaf in 0..64u32 {
        assert_eq!(tiles.levels[0].tile_of_leaf(leaf, 8), leaf);
        let (row, col) = (leaf / 8, leaf % 8);
        assert_eq!(
            tiles.levels[1].tile_of_leaf(leaf, 8),
            (row >> 1) * 4 + (col >> 1)
        );
        assert_eq!(tiles.levels[3].tile_of_leaf(leaf, 8), 0);
    }
    // Level centres at shift 0 are bit-for-bit the leaf grid's.
    for tile in 0..64u32 {
        let a = tiles.levels[0].center(tile);
        let b = tiles.grid().center(tile);
        assert_eq!(a.x.to_bits(), b.x.to_bits());
        assert_eq!(a.y.to_bits(), b.y.to_bits());
    }
}

#[test]
fn hierarchical_far_aggregation_matches_exact_verdicts() {
    // Two tight clusters 500 apart on a 16-per-side grid, 3 levels:
    // the cross-cluster charge lands on a coarse level (one term per
    // cluster instead of one per occupied leaf tile), and with margins
    // far from the decision boundary the verdicts match the exact
    // oracle.
    let mut b = SinrNetworkBuilder::new(SinrParams::default_noiseless());
    for i in 0..6 {
        let x = i as f64 * 3.0;
        b.add_isolated_link((x, 0.0), (x, 1.0));
        b.add_isolated_link((x + 500.0, 0.0), (x + 500.0, 1.0));
    }
    let net = b.build();
    let exact = SinrFeasibility::new(net.clone(), UniformPower::unit());
    let hier = TiledSinrFeasibility::with_options(
        net,
        UniformPower::unit(),
        TileOptions::new(16, 1e-2).with_levels(3),
    );
    let coarse_far: usize = (1..hier.tiles().num_levels())
        .map(|l| hier.tiles().far_pairs_at(l))
        .sum();
    assert!(
        coarse_far > 0,
        "separated clusters must far-qualify at a coarse level"
    );
    let attempts: Vec<Attempt> = (0..12).map(|i| attempt(i, i as u64)).collect();
    assert_eq!(
        exact.successes(&attempts, &mut rng()),
        hier.successes(&attempts, &mut rng())
    );
    // The walk charged far terms at a coarse level, not only the leaf.
    let diag = hier.tiles().diagnostics();
    assert!(
        diag.far_terms_per_level[1..].iter().sum::<u64>() > 0,
        "far charges should land above the leaf: {diag:?}"
    );
}

#[test]
fn panel_budget_boundary_controls_allocation_but_not_bits() {
    let mut rng_geo = ChaCha12Rng::seed_from_u64(7);
    let params = SinrParams::default_noiseless();
    let net = random_instance(16, 40.0, 1.0, 2.0, params, &mut rng_geo);
    let power = UniformPower::unit();
    let cache = Arc::new(SinrCache::with_dense_limit(&net, &power, 0));
    let full = TiledSinrCache::new(Arc::clone(&cache), 2, 0.0, usize::MAX);
    // Every non-empty (S, R) pair panelled under an unlimited
    // budget; total cells = m² when every tile pair is populated
    // with all members (here Σ|S|·Σ|R| over pairs = m·m).
    assert_eq!(full.panel_bytes(), 16 * 16 * 8);
    // One byte below the full requirement: allocation stops at the
    // first pair that no longer fits (build work is bounded by the
    // budget, not by the tile-pair count).
    let trimmed = TiledSinrCache::new(Arc::clone(&cache), 2, 0.0, full.panel_bytes() - 1);
    assert!(trimmed.panel_count() < full.panel_count());
    assert!(trimmed.panel_bytes() < full.panel_bytes());
    // Zero budget: no panels at all.
    let none = TiledSinrCache::new(Arc::clone(&cache), 2, 0.0, 0);
    assert_eq!(none.panel_count(), 0);
    assert_eq!(none.panel_bytes(), 0);
    // Budget is a speed knob only: gains agree bitwise across all
    // three, and with the flat cache expression.
    let reference = SinrCache::new(&net, &power);
    for from in 0..16u32 {
        for on in 0..16u32 {
            if from == on {
                continue;
            }
            let (f, o) = (LinkId(from), LinkId(on));
            let expect = reference.gain(f, o).to_bits();
            assert_eq!(full.gain(f, o).to_bits(), expect);
            assert_eq!(trimmed.gain(f, o).to_bits(), expect);
            assert_eq!(none.gain(f, o).to_bits(), expect);
        }
    }
}

#[test]
fn adaptive_panels_evict_under_tiny_budget_without_changing_verdicts() {
    // Two clusters far enough apart that cross-cluster pairs are far:
    // a slot resolves only the transmitting cluster's near panel. A
    // budget that holds one panel forces the cache to evict cluster
    // A's panel when a B-only slot arrives (and vice versa); verdicts
    // must not move, since panels are bit-identical to the on-the-fly
    // expression. Within one slot the working set is pinned, so a
    // both-clusters slot admits one panel and refuses the other
    // instead of churning.
    let net = cluster_instance(10_000.0);
    // cluster_instance interleaves: even links cluster A, odd cluster B.
    let cluster_a: Vec<Attempt> = (0..4).map(|i| attempt(2 * i, i as u64)).collect();
    let cluster_b: Vec<Attempt> = (0..4).map(|i| attempt(2 * i + 1, 10 + i as u64)).collect();
    let both: Vec<Attempt> = (0..8).map(|i| attempt(i, 20 + i as u64)).collect();
    let fixed = TiledSinrFeasibility::new(net.clone(), UniformPower::unit(), 8, 1e-2);
    assert!(fixed.tiles().far_pairs() > 0);
    let adaptive = TiledSinrFeasibility::with_options(
        net,
        UniformPower::unit(),
        TileOptions::new(8, 1e-2)
            .with_panel_mode(PanelCacheMode::Adaptive)
            // One 4×4 panel is 128 bytes: room for exactly one of the
            // two clusters' panels at a time.
            .with_panel_budget(4 * 4 * 8),
    );
    for attempts in [&cluster_a, &cluster_b, &cluster_a, &both, &both] {
        assert_eq!(
            fixed.successes(attempts, &mut rng()),
            adaptive.successes(attempts, &mut rng())
        );
    }
    let diag = adaptive.tiles().diagnostics();
    assert!(diag.panel_misses > 0, "refills expected: {diag:?}");
    assert!(diag.panel_evictions > 0, "evictions expected: {diag:?}");
    assert!(diag.panel_resident_bytes <= 4 * 4 * 8);
    assert!(diag.panel_high_water_bytes <= 4 * 4 * 8);
}

#[test]
fn kernel_threads_do_not_change_verdicts() {
    let mut rng_geo = ChaCha12Rng::seed_from_u64(17);
    let params = SinrParams::with_noise(1e-4);
    let net = random_instance(64, 400.0, 1.0, 2.0, params, &mut rng_geo);
    let power = LinearPower::new(params.alpha);
    for epsilon in [0.0, 1e-2] {
        let base = TiledSinrFeasibility::with_options(
            net.clone(),
            power,
            TileOptions::new(16, epsilon).with_levels(3),
        );
        if epsilon > 0.0 {
            assert!(
                base.tiles().far_pairs() > 0,
                "spread-out instance must exercise the far path"
            );
        }
        let attempts: Vec<Attempt> = (0..64).map(|i| attempt(i, i as u64)).collect();
        let reference = base.successes(&attempts, &mut rng());
        for threads in [2, 4] {
            let threaded = TiledSinrFeasibility::with_options(
                net.clone(),
                power,
                TileOptions::new(16, epsilon).with_levels(3),
            )
            .kernel_threads(threads);
            assert_eq!(threaded.threads(), threads);
            assert_eq!(
                reference,
                threaded.successes(&attempts, &mut rng()),
                "threads = {threads}, epsilon = {epsilon}"
            );
        }
    }
}

#[test]
fn approx_bytes_tracks_panel_allocation() {
    let mut rng_geo = ChaCha12Rng::seed_from_u64(3);
    let params = SinrParams::default_noiseless();
    let net = random_instance(12, 30.0, 1.0, 2.0, params, &mut rng_geo);
    let cache = Arc::new(SinrCache::with_dense_limit(&net, &UniformPower::unit(), 0));
    let none = TiledSinrCache::new(Arc::clone(&cache), 3, 0.0, 0);
    let full = TiledSinrCache::new(Arc::clone(&cache), 3, 0.0, usize::MAX);
    // The full store charges its arena plus per-panel bookkeeping
    // overhead on top of what the empty store reports.
    assert!(full.approx_bytes() - none.approx_bytes() >= full.panel_bytes());
    assert!(none.approx_bytes() > 0);
}

#[test]
fn approx_bytes_charges_adaptive_high_water() {
    let net = cluster_instance(10_000.0);
    let adaptive = TiledSinrFeasibility::with_options(
        net,
        UniformPower::unit(),
        TileOptions::new(8, 1e-2)
            .with_panel_mode(PanelCacheMode::Adaptive)
            .with_panel_budget(4 * 4 * 8),
    );
    let before = adaptive.tiles().approx_bytes();
    let attempts: Vec<Attempt> = (0..8).map(|i| attempt(i, i as u64)).collect();
    let _ = adaptive.successes(&attempts, &mut rng());
    // Once panels have been resident the index owns up to the
    // high-water mark even after evictions shrink the resident set.
    assert!(adaptive.tiles().approx_bytes() > before);
    assert_eq!(
        adaptive.tiles().diagnostics().panel_high_water_bytes,
        4 * 4 * 8
    );
}

#[test]
fn shared_node_zero_distances_stay_exact() {
    // Consecutive line links put senders on receivers: NaN gains.
    // Those pairs always share a tile, so they can never be far —
    // the blockage rule survives any epsilon and any hierarchy depth.
    let net = line_instance(6, 1.0, SinrParams::default_noiseless());
    let exact = SinrFeasibility::new(net.clone(), UniformPower::unit());
    for eps in [0.0, 1e-2, 0.5] {
        let tiled = TiledSinrFeasibility::with_options(
            net.clone(),
            UniformPower::unit(),
            TileOptions::new(4, eps).with_levels(3),
        );
        let attempts: Vec<Attempt> = (0..6).map(|i| attempt(i, i as u64)).collect();
        assert_eq!(
            exact.successes(&attempts, &mut rng()),
            tiled.successes(&attempts, &mut rng()),
            "eps = {eps}"
        );
    }
}

#[test]
fn far_aggregation_flips_no_verdict_on_well_separated_clusters() {
    // Two tight clusters 500 apart: the far path aggregates the
    // other cluster, and with margins far from the decision
    // boundary the verdicts match the exact oracle.
    let mut b = SinrNetworkBuilder::new(SinrParams::default_noiseless());
    for i in 0..6 {
        let x = i as f64 * 3.0;
        b.add_isolated_link((x, 0.0), (x, 1.0));
        b.add_isolated_link((x + 500.0, 0.0), (x + 500.0, 1.0));
    }
    let net = b.build();
    let exact = SinrFeasibility::new(net.clone(), UniformPower::unit());
    let tiled = TiledSinrFeasibility::new(net, UniformPower::unit(), 8, 1e-2);
    assert!(tiled.tiles().far_pairs() > 0);
    let attempts: Vec<Attempt> = (0..12).map(|i| attempt(i, i as u64)).collect();
    assert_eq!(
        exact.successes(&attempts, &mut rng()),
        tiled.successes(&attempts, &mut rng())
    );
}

#[test]
fn with_tiles_rejects_mismatched_pairing() {
    let params = SinrParams::default_noiseless();
    // Spacing 2: on unit-length links every power assignment
    // coincides at p(1) and the pairing check could not tell them
    // apart.
    let net = line_instance(3, 2.0, params);
    let cache = Arc::new(SinrCache::new(&net, &UniformPower::unit()));
    let tiles = Arc::new(TiledSinrCache::new(cache, 2, 0.0, 0));
    let result = std::panic::catch_unwind(|| {
        TiledSinrFeasibility::with_tiles(net.clone(), LinearPower::new(params.alpha), tiles)
    });
    assert!(result.is_err(), "mismatched power assignment must panic");
}

#[test]
fn tiled_interference_matches_fixed_power_matrix_bitwise() {
    let mut rng_geo = ChaCha12Rng::seed_from_u64(21);
    let params = SinrParams::with_noise(0.001);
    let net = random_instance(10, 30.0, 1.0, 3.0, params, &mut rng_geo);
    let power = LinearPower::new(params.alpha);
    let cache = Arc::new(SinrCache::with_dense_limit(&net, &power, 0));
    let lazy = TiledInterference::new(Arc::clone(&cache));
    let dense = SinrInterference::fixed_power_with_cache(&net, &cache);
    dps_core::interference::validate(&lazy).unwrap();
    for on in 0..10u32 {
        for from in 0..10u32 {
            assert_eq!(
                lazy.weight(LinkId(on), LinkId(from)).to_bits(),
                dense.weight(LinkId(on), LinkId(from)).to_bits(),
                "W[{on}][{from}]"
            );
        }
    }
}

#[test]
fn slot_interference_reports_kernel_sums() {
    let mut rng_geo = ChaCha12Rng::seed_from_u64(31);
    let params = SinrParams::default_noiseless();
    let net = random_instance(8, 25.0, 1.0, 2.0, params, &mut rng_geo);
    let tiled = TiledSinrFeasibility::new(net, UniformPower::unit(), 2, 0.0);
    let attempts: Vec<Attempt> = (0..8).map(|i| attempt(i, i as u64)).collect();
    let sums = tiled.slot_interference(&attempts);
    assert_eq!(sums.len(), 8);
    let beta = tiled.tiles().cache().beta();
    let noise = tiled.tiles().cache().noise();
    let verdicts = tiled.successes(&attempts, &mut rng());
    for ((link, interference), ok) in sums.into_iter().zip(verdicts) {
        let expect = tiled.tiles().cache().signal(link) >= beta * (interference + noise);
        assert_eq!(expect, ok, "verdict of {link} disagrees with its sum");
    }
}

#[test]
fn diagnostics_count_slots_and_walk_activity() {
    let net = cluster_instance(10_000.0);
    let tiled = TiledSinrFeasibility::with_options(
        net,
        UniformPower::unit(),
        TileOptions::new(8, 1e-2).with_levels(2),
    );
    let attempts: Vec<Attempt> = (0..8).map(|i| attempt(i, i as u64)).collect();
    for _ in 0..3 {
        let _ = tiled.successes(&attempts, &mut rng());
    }
    let diag = tiled.tiles().diagnostics();
    assert_eq!(diag.slots, 3);
    assert_eq!(diag.level_tiles_per_side.len(), tiled.tiles().num_levels());
    assert_eq!(
        diag.tiles_visited_per_level.len(),
        tiled.tiles().num_levels()
    );
    assert!(
        diag.tiles_visited_per_level.iter().sum::<u64>() > 0,
        "the walk must visit occupied tiles: {diag:?}"
    );
    assert!(
        diag.far_terms_per_level.iter().sum::<u64>() > 0,
        "cross-cluster charges must be far terms: {diag:?}"
    );
    assert!(diag.near_terms > 0, "own-cluster groups are near: {diag:?}");
    assert!(diag.panel_hits + diag.panel_misses > 0);
}
