//! Power assignments (Section 6.1): how much power each link uses for its
//! transmissions.
//!
//! The paper distinguishes *fixed* assignments (powers are a function of
//! the link, set at deployment) from powers chosen per transmission. All
//! assignments here are fixed and **monotone (sub-)linear** in the paper's
//! sense: for `d(ℓ) ≤ d(ℓ')` they satisfy `p(ℓ) ≤ p(ℓ')` and
//! `p(ℓ)/d(ℓ)^α ≥ p(ℓ')/d(ℓ')^α`.

use serde::{Deserialize, Serialize};

/// A fixed transmission-power assignment, a function of the link length.
pub trait PowerAssignment {
    /// Power used by a link of geometric length `length`.
    fn power(&self, length: f64) -> f64;

    /// Short human-readable name, used in experiment tables.
    fn name(&self) -> &str;
}

impl<P: PowerAssignment + ?Sized> PowerAssignment for &P {
    fn power(&self, length: f64) -> f64 {
        (**self).power(length)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// Uniform powers: every link transmits at the same power.
///
/// The setting of the Theorem 20 lower bound and of most early SINR
/// scheduling work.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct UniformPower {
    level: f64,
}

impl UniformPower {
    /// Creates the assignment with the given power level.
    ///
    /// # Panics
    ///
    /// Panics unless `level` is positive and finite.
    pub fn new(level: f64) -> Self {
        assert!(level > 0.0 && level.is_finite(), "power must be positive");
        UniformPower { level }
    }

    /// Unit power.
    pub fn unit() -> Self {
        UniformPower::new(1.0)
    }
}

impl PowerAssignment for UniformPower {
    fn power(&self, _length: f64) -> f64 {
        self.level
    }

    fn name(&self) -> &str {
        "uniform"
    }
}

/// Linear powers: `p(ℓ) = scale · d(ℓ)^α`, so every link's signal arrives
/// at the same strength — the assignment behind Corollary 12's
/// constant-competitive protocol.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LinearPower {
    alpha: f64,
    scale: f64,
}

impl LinearPower {
    /// Creates the assignment for path-loss exponent `alpha` with unit
    /// scale.
    ///
    /// # Panics
    ///
    /// Panics unless `alpha` is positive and finite.
    pub fn new(alpha: f64) -> Self {
        Self::with_scale(alpha, 1.0)
    }

    /// Creates the assignment with an explicit scale factor.
    ///
    /// # Panics
    ///
    /// Panics unless both arguments are positive and finite.
    pub fn with_scale(alpha: f64, scale: f64) -> Self {
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
        LinearPower { alpha, scale }
    }
}

impl PowerAssignment for LinearPower {
    fn power(&self, length: f64) -> f64 {
        self.scale * length.powf(self.alpha)
    }

    fn name(&self) -> &str {
        "linear"
    }
}

/// Square-root (mean) powers: `p(ℓ) = scale · d(ℓ)^{α/2}`, the oblivious
/// assignment of [20, 25] — monotone and sub-linear, used as the concrete
/// assignment for the power-control experiments (Corollary 14).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SquareRootPower {
    alpha: f64,
    scale: f64,
}

impl SquareRootPower {
    /// Creates the assignment for path-loss exponent `alpha` with unit
    /// scale.
    ///
    /// # Panics
    ///
    /// Panics unless `alpha` is positive and finite.
    pub fn new(alpha: f64) -> Self {
        Self::with_scale(alpha, 1.0)
    }

    /// Creates the assignment with an explicit scale factor.
    ///
    /// # Panics
    ///
    /// Panics unless both arguments are positive and finite.
    pub fn with_scale(alpha: f64, scale: f64) -> Self {
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
        SquareRootPower { alpha, scale }
    }
}

impl PowerAssignment for SquareRootPower {
    fn power(&self, length: f64) -> f64 {
        self.scale * length.powf(self.alpha / 2.0)
    }

    fn name(&self) -> &str {
        "square-root"
    }
}

/// Checks the monotone (sub-)linear property over a set of link lengths:
/// `p` non-decreasing and `p(d)/d^α` non-increasing in `d`.
pub fn is_monotone_sublinear<P: PowerAssignment + ?Sized>(
    power: &P,
    alpha: f64,
    lengths: &[f64],
) -> bool {
    let mut sorted = lengths.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite lengths"));
    sorted.windows(2).all(|w| {
        let (short, long) = (w[0], w[1]);
        let (p_s, p_l) = (power.power(short), power.power(long));
        p_s <= p_l * (1.0 + 1e-9)
            && p_s / short.powf(alpha) >= p_l / long.powf(alpha) * (1.0 - 1e-9)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const LENGTHS: [f64; 5] = [0.5, 1.0, 2.0, 4.5, 10.0];

    #[test]
    fn uniform_is_constant_and_sublinear() {
        let p = UniformPower::unit();
        assert_eq!(p.power(1.0), 1.0);
        assert_eq!(p.power(100.0), 1.0);
        assert!(is_monotone_sublinear(&p, 3.0, &LENGTHS));
    }

    #[test]
    fn linear_equalizes_received_strength() {
        let alpha = 3.0;
        let p = LinearPower::new(alpha);
        for &d in &LENGTHS {
            assert!((p.power(d) / d.powf(alpha) - 1.0).abs() < 1e-12);
        }
        assert!(is_monotone_sublinear(&p, alpha, &LENGTHS));
    }

    #[test]
    fn square_root_is_monotone_sublinear() {
        let alpha = 3.0;
        let p = SquareRootPower::new(alpha);
        assert!(is_monotone_sublinear(&p, alpha, &LENGTHS));
        // Strictly between uniform and linear in growth.
        assert!(p.power(4.0) > p.power(1.0));
        assert!(p.power(4.0) < LinearPower::new(alpha).power(4.0));
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            UniformPower::unit().name().to_string(),
            LinearPower::new(3.0).name().to_string(),
            SquareRootPower::new(3.0).name().to_string(),
        ];
        let mut unique = names.to_vec();
        unique.dedup();
        assert_eq!(names.len(), unique.len());
    }

    #[test]
    #[should_panic(expected = "power must be positive")]
    fn uniform_rejects_zero() {
        let _ = UniformPower::new(0.0);
    }
}
