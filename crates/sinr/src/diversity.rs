//! Length-class decomposition — the mechanism behind the oblivious-power
//! results of Section 6.2 (`O(log Δ · log m)`-competitive protocols, with
//! `Δ` the ratio of longest to shortest link).
//!
//! Links are partitioned into `⌈log₂ Δ⌉ + 1` classes of geometrically
//! increasing length; within one class all lengths agree up to a factor 2,
//! so any fixed monotone power assignment behaves like linear powers up to
//! a constant and the fixed-power machinery applies. The
//! [`DiversityScheduler`] serves the classes sequentially with the wrapped
//! scheduler, paying the `O(log Δ)` factor the paper's bound states, and
//! finishes stragglers with one joint run.

use crate::network::SinrNetwork;
use dps_core::staticsched::{Request, StaticAlgorithm, StaticScheduler};
use rand::RngCore;

/// Serves requests class-by-class in increasing link length; classes are
/// dyadic in link length.
#[derive(Clone, Debug)]
pub struct DiversityScheduler<S> {
    inner: S,
    /// Length-class index per link.
    class_of: Vec<usize>,
    num_classes: usize,
}

impl<S: StaticScheduler> DiversityScheduler<S> {
    /// Creates the scheduler for the links of `net`.
    ///
    /// # Panics
    ///
    /// Panics if the network has no links.
    pub fn new(inner: S, net: &SinrNetwork) -> Self {
        let lengths: Vec<f64> = net
            .network()
            .link_ids()
            .map(|l| net.link_length(l))
            .collect();
        assert!(!lengths.is_empty(), "network must have links");
        let min = lengths.iter().copied().fold(f64::INFINITY, f64::min);
        let class_of: Vec<usize> = lengths
            .iter()
            .map(|&len| (len / min).log2().floor().max(0.0) as usize)
            .collect();
        let num_classes = class_of.iter().copied().max().unwrap_or(0) + 1;
        DiversityScheduler {
            inner,
            class_of,
            num_classes,
        }
    }

    /// Number of dyadic length classes (`⌈log₂ Δ⌉ + 1`).
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The length class of `link`.
    pub fn class_of(&self, link: dps_core::ids::LinkId) -> usize {
        self.class_of[link.index()]
    }
}

impl<S: StaticScheduler + Clone + Send + 'static> StaticScheduler for DiversityScheduler<S> {
    fn instantiate(
        &self,
        requests: &[Request],
        measure_bound: f64,
        rng: &mut dyn RngCore,
    ) -> Box<dyn StaticAlgorithm> {
        let mut classes: Vec<Vec<usize>> = vec![Vec::new(); self.num_classes];
        for (idx, req) in requests.iter().enumerate() {
            classes[self.class_of[req.link.index()]].push(idx);
        }
        let mut run = DiversityRun {
            requests: requests.to_vec(),
            pending: vec![true; requests.len()],
            remaining: requests.len(),
            classes,
            stage: 0,
            inner: None,
            inner_members: Vec::new(),
            outer_to_inner: vec![usize::MAX; requests.len()],
            inner_slots_left: 0,
            measure_bound: measure_bound.max(1.0),
            did_final: false,
            gave_up: requests.is_empty(),
            scheduler: self.inner.clone(),
        };
        run.advance(rng);
        Box::new(run)
    }

    fn f_of(&self, n: usize) -> f64 {
        // Each class pays the inner coefficient; classes are sequential.
        // (+1 for the joint straggler run.)
        (self.num_classes as f64 + 1.0) * self.inner.f_of(n)
    }

    fn g_of(&self, n: usize) -> f64 {
        (self.num_classes as f64 + 1.0) * self.inner.g_of(n)
    }

    fn name(&self) -> &str {
        "length-diversity"
    }
}

struct DiversityRun<S> {
    requests: Vec<Request>,
    pending: Vec<bool>,
    remaining: usize,
    classes: Vec<Vec<usize>>,
    /// Next class index to execute.
    stage: usize,
    inner: Option<Box<dyn StaticAlgorithm>>,
    inner_members: Vec<usize>,
    outer_to_inner: Vec<usize>,
    inner_slots_left: usize,
    measure_bound: f64,
    did_final: bool,
    gave_up: bool,
    scheduler: S,
}

impl<S: StaticScheduler> DiversityRun<S> {
    fn teardown(&mut self) {
        self.inner = None;
        for &outer in &self.inner_members {
            self.outer_to_inner[outer] = usize::MAX;
        }
        self.inner_members.clear();
    }

    fn start(&mut self, members: Vec<usize>, rng: &mut dyn RngCore) {
        let reqs: Vec<Request> = members.iter().map(|&o| self.requests[o]).collect();
        for (i, &outer) in members.iter().enumerate() {
            self.outer_to_inner[outer] = i;
        }
        self.inner_slots_left = self
            .scheduler
            .slots_needed(self.measure_bound, reqs.len().max(1));
        self.inner = Some(self.scheduler.instantiate(&reqs, self.measure_bound, rng));
        self.inner_members = members;
    }

    fn advance(&mut self, rng: &mut dyn RngCore) {
        loop {
            if self.remaining == 0 || self.gave_up {
                return;
            }
            if let Some(inner) = &self.inner {
                if self.inner_slots_left > 0 && !inner.is_done() {
                    return;
                }
                self.teardown();
            }
            if self.stage < self.classes.len() {
                let members: Vec<usize> = std::mem::take(&mut self.classes[self.stage])
                    .into_iter()
                    .filter(|&o| self.pending[o])
                    .collect();
                self.stage += 1;
                if members.is_empty() {
                    continue;
                }
                self.start(members, rng);
                return;
            }
            if !self.did_final {
                self.did_final = true;
                let members: Vec<usize> = (0..self.requests.len())
                    .filter(|&o| self.pending[o])
                    .collect();
                if members.is_empty() {
                    self.gave_up = true;
                    return;
                }
                self.start(members, rng);
                return;
            }
            self.gave_up = true;
            return;
        }
    }
}

impl<S: StaticScheduler + Send> StaticAlgorithm for DiversityRun<S> {
    fn attempts(&mut self, rng: &mut dyn RngCore) -> Vec<usize> {
        self.advance(rng);
        let Some(inner) = &mut self.inner else {
            return Vec::new();
        };
        self.inner_slots_left -= 1;
        inner
            .attempts(rng)
            .into_iter()
            .map(|i| self.inner_members[i])
            .collect()
    }

    fn ack(&mut self, idx: usize) {
        if !std::mem::replace(&mut self.pending[idx], false) {
            return;
        }
        self.remaining -= 1;
        let inner_idx = self.outer_to_inner[idx];
        if inner_idx != usize::MAX {
            if let Some(inner) = &mut self.inner {
                inner.ack(inner_idx);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.remaining == 0 || self.gave_up
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::SinrFeasibility;
    use crate::network::SinrNetworkBuilder;
    use crate::params::SinrParams;
    use crate::power::UniformPower;
    use dps_core::ids::{LinkId, PacketId};
    use dps_core::staticsched::run_static;
    use dps_core::staticsched::uniform_rate::UniformRateScheduler;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    /// Well-separated links with dyadic lengths 1, 2, 4, 8.
    fn diverse_net() -> SinrNetwork {
        let mut b = SinrNetworkBuilder::new(SinrParams::default_noiseless());
        for (i, len) in [1.0f64, 2.0, 4.0, 8.0].into_iter().enumerate() {
            let x = 200.0 * i as f64;
            b.add_isolated_link((x, 0.0), (x, len));
        }
        b.build()
    }

    #[test]
    fn classes_are_dyadic_in_length() {
        let net = diverse_net();
        let s = DiversityScheduler::new(UniformRateScheduler::new(), &net);
        assert_eq!(s.num_classes(), 4);
        for (i, expected) in [0usize, 1, 2, 3].into_iter().enumerate() {
            assert_eq!(s.class_of(LinkId(i as u32)), expected);
        }
    }

    #[test]
    fn f_pays_the_log_delta_factor() {
        let net = diverse_net();
        let inner = UniformRateScheduler::new();
        let s = DiversityScheduler::new(inner, &net);
        // Δ = 8 ⇒ 4 classes ⇒ coefficient (4 + 1)·inner.
        assert_eq!(s.f_of(100), 5.0 * inner.f_of(100));
    }

    #[test]
    fn serves_diverse_instance_under_uniform_power() {
        // Uniform powers on length-diverse instances can starve long links
        // when everything transmits together; the class decomposition
        // serves each length scale in its own window.
        let net = diverse_net();
        let requests: Vec<Request> = (0..4)
            .flat_map(|l| {
                (0..3).map(move |k| Request {
                    packet: PacketId((l * 3 + k) as u64),
                    link: LinkId(l as u32),
                })
            })
            .collect();
        let scheduler = DiversityScheduler::new(UniformRateScheduler::new(), &net);
        let oracle = SinrFeasibility::new(net.clone(), UniformPower::unit());
        let mut rng = ChaCha12Rng::seed_from_u64(4);
        let budget = scheduler.slots_needed(12.0, requests.len());
        let result = run_static(&scheduler, &requests, 12.0, &oracle, budget, &mut rng);
        assert!(
            result.all_served(),
            "served {}/{} in {} slots",
            result.served_count(),
            requests.len(),
            result.slots_used
        );
    }

    #[test]
    fn single_class_collapses_to_inner_plus_final() {
        let mut b = SinrNetworkBuilder::new(SinrParams::default_noiseless());
        b.add_isolated_link((0.0, 0.0), (0.0, 1.0));
        b.add_isolated_link((50.0, 0.0), (50.0, 1.5));
        let net = b.build();
        let s = DiversityScheduler::new(UniformRateScheduler::new(), &net);
        assert_eq!(s.num_classes(), 1);
    }

    #[test]
    fn empty_instance_is_done() {
        let net = diverse_net();
        let s = DiversityScheduler::new(UniformRateScheduler::new(), &net);
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let mut alg = s.instantiate(&[], 1.0, &mut rng);
        assert!(alg.is_done());
        assert!(alg.attempts(&mut rng).is_empty());
    }
}
