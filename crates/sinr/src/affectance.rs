//! Affectance: the relative amount of interference of one link on another
//! (Section 6.1, following [28, 33]).
//!
//! For links `ℓ = (s, r)` and `ℓ' = (s', r')` under power assignment `p`,
//! the affectance of `ℓ` **on** `ℓ'` is
//!
//! ```text
//!   a_p(ℓ, ℓ') = min{ 1,  β · (p(ℓ)/d(s, r')^α) / (p(ℓ')/d(s', r')^α − β·ν) }
//! ```
//!
//! i.e. the interference `ℓ`'s sender creates at `ℓ''`s receiver, relative
//! to `ℓ''`s noise-adjusted signal margin. The SINR condition for a set `S`
//! of simultaneous transmissions is exactly
//! `Σ_{ℓ ∈ S, ℓ ≠ ℓ'} a_p(ℓ, ℓ') ≤ 1` for every `ℓ' ∈ S` (up to the
//! clamping at 1, which only matters for already-infeasible pairs).

use crate::network::SinrNetwork;
use crate::power::PowerAssignment;
use dps_core::ids::LinkId;

/// The affectance `a_p(from, on)` of link `from` on link `on`.
///
/// Returns 1 (total blockage) if `on`'s signal does not even clear the
/// noise floor (`p(on)/d(on)^α ≤ β·ν`), and 0 for `from == on` — the
/// self-term is excluded from the SINR sum.
///
/// This is the one-shot form; batch consumers (matrix builds, the exact
/// oracle) go through [`crate::cache::SinrCache::affectance`], which
/// returns bit-for-bit the same values from precomputed signals and
/// margins.
pub fn affectance<P: PowerAssignment + ?Sized>(
    net: &SinrNetwork,
    power: &P,
    from: LinkId,
    on: LinkId,
) -> f64 {
    if from == on {
        return 0.0;
    }
    let params = net.params();
    let signal = power.power(net.link_length(on)) / net.link_length(on).powf(params.alpha);
    let margin = signal - params.beta * params.noise;
    if margin <= 0.0 {
        return 1.0;
    }
    let cross = net.cross_distance(from, on);
    if cross <= 0.0 {
        return 1.0;
    }
    let interference = power.power(net.link_length(from)) / cross.powf(params.alpha);
    (params.beta * interference / margin).min(1.0)
}

/// Total affectance on `on` from every link of `others` (with
/// multiplicity), the quantity whose `≤ 1` comparison is the SINR
/// condition.
pub fn total_affectance<P: PowerAssignment + ?Sized>(
    net: &SinrNetwork,
    power: &P,
    others: &[LinkId],
    on: LinkId,
) -> f64 {
    others
        .iter()
        .map(|&from| affectance(net, power, from, on))
        .sum()
}

/// The maximum average affectance `Ā` of \[33\]: over all subsets `M` of the
/// request multiset, the largest average total affectance within `M`.
///
/// Computing the true maximum is exponential; this returns the standard
/// lower-bound witness obtained from prefixes of the length-sorted request
/// list, which is how \[33\] bounds it and is exact for the instances used in
/// the experiments' sanity checks. The paper only needs `I ≥ Ā/2`.
pub fn average_affectance_witness<P: PowerAssignment + ?Sized>(
    net: &SinrNetwork,
    power: &P,
    requests: &[LinkId],
) -> f64 {
    if requests.is_empty() {
        return 0.0;
    }
    let mut sorted = requests.to_vec();
    sorted.sort_by(|&a, &b| {
        net.link_length(a)
            .partial_cmp(&net.link_length(b))
            .expect("finite lengths")
    });
    let mut best = 0.0f64;
    for prefix in 1..=sorted.len() {
        let set = &sorted[..prefix];
        let total: f64 = set
            .iter()
            .map(|&on| total_affectance(net, power, set, on))
            .sum();
        best = best.max(total / prefix as f64);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::SinrNetworkBuilder;
    use crate::params::SinrParams;
    use crate::power::{LinearPower, UniformPower};

    /// Two parallel unit links at horizontal separation `gap`.
    fn pair(gap: f64, params: SinrParams) -> (SinrNetwork, LinkId, LinkId) {
        let mut b = SinrNetworkBuilder::new(params);
        let e0 = b.add_isolated_link((0.0, 0.0), (0.0, 1.0));
        let e1 = b.add_isolated_link((gap, 0.0), (gap, 1.0));
        (b.build(), e0, e1)
    }

    #[test]
    fn self_affectance_is_zero() {
        let (net, e0, _) = pair(5.0, SinrParams::default());
        assert_eq!(affectance(&net, &UniformPower::unit(), e0, e0), 0.0);
    }

    #[test]
    fn affectance_decays_with_distance() {
        let params = SinrParams::default();
        let power = UniformPower::unit();
        let (near, e0, e1) = pair(2.0, params);
        let (far, f0, f1) = pair(20.0, params);
        assert!(affectance(&near, &power, e0, e1) > affectance(&far, &power, f0, f1));
    }

    #[test]
    fn affectance_matches_sinr_condition() {
        // For uniform powers and two unit links at gap g: interference at
        // the receiver is 1/d(s', r)^α; affectance = β·(1/d^α)/(1/1^α) with
        // zero noise.
        let params = SinrParams::default_noiseless();
        let (net, e0, e1) = pair(2.0, params);
        let d = net.cross_distance(e0, e1);
        let expected = params.beta / d.powf(params.alpha);
        let got = affectance(&net, &UniformPower::unit(), e0, e1);
        assert!((got - expected).abs() < 1e-12, "{got} vs {expected}");
    }

    #[test]
    fn affectance_is_clamped_at_one() {
        // Links right next to each other: raw ratio far above 1.
        let (net, e0, e1) = pair(0.05, SinrParams::default());
        assert_eq!(affectance(&net, &UniformPower::unit(), e0, e1), 1.0);
    }

    #[test]
    fn noise_starved_link_is_fully_blocked() {
        // Noise so high the unit link cannot clear it even alone.
        let params = SinrParams::with_noise(10.0);
        let (net, e0, e1) = pair(100.0, params);
        assert_eq!(affectance(&net, &UniformPower::unit(), e0, e1), 1.0);
    }

    #[test]
    fn linear_power_equalizes_short_on_long() {
        // A short and a long link; under linear powers the received signal
        // strength is the same, so affectance depends only on cross
        // distances — the long link no longer drowns out the short one.
        let params = SinrParams::default_noiseless();
        let mut b = SinrNetworkBuilder::new(params);
        let short = b.add_isolated_link((0.0, 0.0), (0.0, 1.0));
        let long = b.add_isolated_link((10.0, 0.0), (10.0, 9.0));
        let net = b.build();
        let lin = LinearPower::new(params.alpha);
        let uni = UniformPower::unit();
        // Under uniform powers the long link is far more affected (its
        // signal is 9^α times weaker).
        let a_uni = affectance(&net, &uni, short, long);
        let a_lin = affectance(&net, &lin, short, long);
        assert!(
            a_uni > a_lin,
            "uniform {a_uni} should exceed linear {a_lin}"
        );
    }

    #[test]
    fn total_affectance_sums_with_multiplicity() {
        let (net, e0, e1) = pair(4.0, SinrParams::default_noiseless());
        let power = UniformPower::unit();
        let single = total_affectance(&net, &power, &[e0], e1);
        let double = total_affectance(&net, &power, &[e0, e0], e1);
        assert!((double - 2.0 * single).abs() < 1e-12);
    }

    #[test]
    fn average_affectance_witness_on_empty_is_zero() {
        let (net, _, _) = pair(4.0, SinrParams::default());
        assert_eq!(
            average_affectance_witness(&net, &UniformPower::unit(), &[]),
            0.0
        );
    }

    #[test]
    fn average_affectance_grows_with_density() {
        let params = SinrParams::default_noiseless();
        let mut b = SinrNetworkBuilder::new(params);
        let mut links = Vec::new();
        for i in 0..6 {
            links.push(b.add_isolated_link((i as f64 * 2.0, 0.0), (i as f64 * 2.0, 1.0)));
        }
        let net = b.build();
        let power = UniformPower::unit();
        let sparse = average_affectance_witness(&net, &power, &links[..2]);
        let dense = average_affectance_witness(&net, &power, &links);
        assert!(dense > sparse);
    }
}
