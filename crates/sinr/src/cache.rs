//! Cached SINR geometry under a fixed power assignment: the fast-path
//! layer that keeps `sqrt`/`powf` out of every hot loop.
//!
//! A [`SinrCache`] is built once per `(network, power assignment)` pair
//! and precomputes, per link `ℓ`:
//!
//! * the transmission power `p(d(ℓ))`,
//! * the received signal strength `p(d(ℓ))/d(ℓ)^α`,
//! * the noise-adjusted margin `p(d(ℓ))/d(ℓ)^α − β·ν`,
//!
//! plus — for moderate `m` — a dense `m × m` **gain table**
//! `G[ℓ', ℓ] = p(d(ℓ'))/d(s', r)^α`, the interference `ℓ''`s sender
//! contributes at `ℓ''s receiver. Above [`SinrCache::dense_limit`] links
//! the table is skipped and gains are computed on the fly from the
//! cached endpoint positions, so memory stays `O(m)` while the per-link
//! scalars are still cached.
//!
//! Every cached value is produced by the *same floating-point
//! expression* the naive recomputation uses, so consumers — the exact
//! oracle [`crate::feasibility::SinrFeasibility`] and the matrix
//! constructions of [`crate::matrix`] — make bit-for-bit identical
//! decisions with and without the cache (property-tested in
//! `tests/prop_sinr.rs`).
//!
//! A cross distance `d(s', r) ≤ 0` (sender of one link on top of another
//! link's receiver, as happens between consecutive links of a line
//! network) is stored as `NaN`: any interference sum it enters fails the
//! SINR comparison, which is exactly the naive oracle's "distance zero
//! blocks the receiver" rule, and `NaN`-poisoned affectances clamp to 1.

use crate::network::SinrNetwork;
use crate::power::PowerAssignment;
use dps_core::ids::LinkId;

/// Default memory budget for the dense pairwise gain table: `8 MiB`.
/// A network is stored densely only while its full `m × m` `f64` table
/// fits the budget; beyond it gains fall back to on-the-fly evaluation
/// of the same expression.
pub const DEFAULT_DENSE_GAIN_BUDGET_BYTES: usize = 8 << 20;

/// Links up to which the dense pairwise gain table is materialized under
/// the default budget (`1024` — the `8 MiB` table is exactly full at the
/// limit). Beyond it gains fall back to on-the-fly evaluation.
pub const DEFAULT_DENSE_GAIN_LIMIT: usize = dense_limit_for_budget(DEFAULT_DENSE_GAIN_BUDGET_BYTES);

/// The largest link count whose dense `m × m` gain table of `f64`s fits
/// in `budget_bytes`: `⌊√(budget/8)⌋`.
pub const fn dense_limit_for_budget(budget_bytes: usize) -> usize {
    (budget_bytes / std::mem::size_of::<f64>()).isqrt()
}

/// Number of sender rows the blocked slot kernel packs and accumulates
/// per pass (see [`SinrCache::active_interference_into`]). Lanes are
/// applied across *receivers*, so each receiver's floating-point
/// accumulation order stays strictly ascending in sender index —
/// bit-for-bit the scalar order.
const KERNEL_LANES: usize = 4;

/// Precomputed per-link and pairwise SINR quantities for one
/// `(network, power assignment)` pair.
#[derive(Clone, Debug)]
pub struct SinrCache {
    m: usize,
    alpha: f64,
    beta: f64,
    noise: f64,
    /// `p(d(ℓ))` per link.
    tx_power: Vec<f64>,
    /// `p(d(ℓ))/d(ℓ)^α` per link.
    signal: Vec<f64>,
    /// `p(d(ℓ))/d(ℓ)^α − β·ν` per link.
    margin: Vec<f64>,
    /// Dense row-major `m × m` gain table `gains[from·m + on]`, when
    /// `m ≤ dense_limit`. The diagonal is unused (self-gain is excluded
    /// from every SINR sum).
    gains: Option<Vec<f64>>,
    dense_limit: usize,
    /// Per-link sender positions, for the on-the-fly fallback.
    sender: Vec<crate::geom::Point>,
    /// Per-link receiver positions, for the on-the-fly fallback.
    receiver: Vec<crate::geom::Point>,
}

impl SinrCache {
    /// Builds the cache with the default dense-table memory budget
    /// ([`DEFAULT_DENSE_GAIN_BUDGET_BYTES`]).
    pub fn new<P: PowerAssignment + ?Sized>(net: &SinrNetwork, power: &P) -> Self {
        Self::with_dense_limit(net, power, DEFAULT_DENSE_GAIN_LIMIT)
    }

    /// Builds the cache under an explicit memory budget for the dense
    /// gain table: the table is materialized only while its full `m × m`
    /// `f64` storage fits in `budget_bytes` (`0` forces the `O(m)`-memory
    /// on-the-fly fallback).
    pub fn with_memory_budget<P: PowerAssignment + ?Sized>(
        net: &SinrNetwork,
        power: &P,
        budget_bytes: usize,
    ) -> Self {
        Self::with_dense_limit(net, power, dense_limit_for_budget(budget_bytes))
    }

    /// Builds the cache, materializing the dense gain table only when the
    /// network has at most `dense_limit` links (`dense_limit = 0` forces
    /// the on-the-fly fallback, which the equivalence tests exercise).
    pub fn with_dense_limit<P: PowerAssignment + ?Sized>(
        net: &SinrNetwork,
        power: &P,
        dense_limit: usize,
    ) -> Self {
        let m = net.num_links();
        let params = *net.params();
        let mut tx_power = Vec::with_capacity(m);
        let mut signal = Vec::with_capacity(m);
        let mut margin = Vec::with_capacity(m);
        for &len in net.lengths() {
            let p = power.power(len);
            let s = p / len.powf(params.alpha);
            tx_power.push(p);
            signal.push(s);
            margin.push(s - params.beta * params.noise);
        }
        let sender = net.link_senders().to_vec();
        let receiver = net.link_receivers().to_vec();
        let gains = (m <= dense_limit).then(|| {
            let mut table = vec![0.0f64; m * m];
            for from in 0..m {
                for on in 0..m {
                    if from != on {
                        table[from * m + on] =
                            raw_gain(&sender, &receiver, &tx_power, params.alpha, from, on);
                    }
                }
            }
            table
        });
        SinrCache {
            m,
            alpha: params.alpha,
            beta: params.beta,
            noise: params.noise,
            tx_power,
            signal,
            margin,
            gains,
            dense_limit,
            sender,
            receiver,
        }
    }

    /// Number of links the cache covers.
    pub fn num_links(&self) -> usize {
        self.m
    }

    /// Whether the dense pairwise gain table was materialized.
    pub fn is_dense(&self) -> bool {
        self.gains.is_some()
    }

    /// The dense-table link limit this cache was built with.
    pub fn dense_limit(&self) -> usize {
        self.dense_limit
    }

    /// The SINR threshold `β`.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The ambient noise `ν`.
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// Transmission power `p(d(ℓ))` of `link`.
    pub fn tx_power(&self, link: LinkId) -> f64 {
        self.tx_power[link.index()]
    }

    /// Received signal strength `p(d(ℓ))/d(ℓ)^α` of `link`.
    pub fn signal(&self, link: LinkId) -> f64 {
        self.signal[link.index()]
    }

    /// Noise-adjusted margin `p(d(ℓ))/d(ℓ)^α − β·ν` of `link`.
    pub fn margin(&self, link: LinkId) -> f64 {
        self.margin[link.index()]
    }

    /// The gain `p(d(from))/d(s_from, r_on)^α`: interference `from`'s
    /// sender contributes at `on`'s receiver. `NaN` encodes a
    /// non-positive cross distance (total blockage). The value for
    /// `from == on` is unspecified; SINR sums never include it.
    #[inline]
    pub fn gain(&self, from: LinkId, on: LinkId) -> f64 {
        match &self.gains {
            Some(table) => table[from.index() * self.m + on.index()],
            None => raw_gain(
                &self.sender,
                &self.receiver,
                &self.tx_power,
                self.alpha,
                from.index(),
                on.index(),
            ),
        }
    }

    /// The affectance `a_p(from, on)` computed from cached quantities;
    /// bit-for-bit equal to [`crate::affectance::affectance`].
    pub fn affectance(&self, from: LinkId, on: LinkId) -> f64 {
        if from == on {
            return 0.0;
        }
        let margin = self.margin[on.index()];
        if margin <= 0.0 {
            return 1.0;
        }
        // A NaN gain (non-positive cross distance) clamps to 1 here:
        // `f64::min` ignores the NaN operand.
        (self.beta * self.gain(from, on) / margin).min(1.0)
    }

    /// The blocked slot kernel: accumulates, for every distinct attempted
    /// link, the interference the whole attempt set contributes at its
    /// receiver.
    ///
    /// `active` lists the distinct attempted links as
    /// `(link index, multiplicity)` in ascending link order; on return
    /// `acc[i]` holds `Σ_j count_j · gain(active[j], active[i])` with the
    /// sum taken in ascending `j` — exactly the naive oracle's
    /// accumulation order, so verdicts derived from `acc` are bit-for-bit
    /// the scalar path's. `scratch` is caller-owned storage reused across
    /// slots.
    ///
    /// Dense path only: returns `false` (leaving `acc` untouched) when no
    /// dense gain table is materialized, and the caller falls back to the
    /// scalar per-pair loop.
    ///
    /// Structure: sender gain rows are contiguous (`gains[from·m ..]`),
    /// so the kernel packs `KERNEL_LANES` (4) rows at a time — gathering
    /// the `k` active receiver columns of each into a contiguous lane —
    /// and then sweeps all `k` accumulators once per block with a
    /// branchless fused update. The per-pair `from == on` test of the
    /// scalar path disappears entirely: the dense table's diagonal is
    /// `0.0`, and adding `count · 0.0 = +0.0` into a non-negative (or
    /// NaN) partial sum is a bitwise no-op.
    pub fn active_interference_into(
        &self,
        active: &[(u32, u32)],
        acc: &mut Vec<f64>,
        scratch: &mut Vec<f64>,
    ) -> bool {
        let Some(gains) = &self.gains else {
            return false;
        };
        let m = self.m;
        let k = active.len();
        acc.clear();
        if k == 0 {
            return true;
        }
        acc.resize(k, 0.0);
        scratch.clear();
        scratch.resize(KERNEL_LANES * k, 0.0);
        let mut block = 0;
        while block + KERNEL_LANES <= k {
            let mut weights = [0.0f64; KERNEL_LANES];
            for (lane, dst) in scratch.chunks_exact_mut(k).enumerate() {
                let (from, count) = active[block + lane];
                weights[lane] = count as f64;
                let row = &gains[from as usize * m..][..m];
                for (d, &(on, _)) in dst.iter_mut().zip(active) {
                    *d = row[on as usize];
                }
            }
            // The fused update below spells out exactly four lanes; a
            // retuned lane count must be reflected there or senders
            // would be packed and then silently dropped.
            const { assert!(KERNEL_LANES == 4) };
            let (lane0, rest) = scratch.split_at(k);
            let (lane1, rest) = rest.split_at(k);
            let (lane2, lane3) = rest.split_at(k);
            let out = &mut acc[..k];
            for i in 0..k {
                // Sequential adds, ascending sender order: the rounding
                // sequence of the scalar loop, vectorized across `i`.
                let mut sum = out[i];
                sum += weights[0] * lane0[i];
                sum += weights[1] * lane1[i];
                sum += weights[2] * lane2[i];
                sum += weights[3] * lane3[i];
                out[i] = sum;
            }
            block += KERNEL_LANES;
        }
        for &(from, count) in &active[block..] {
            let weight = count as f64;
            let row = &gains[from as usize * m..][..m];
            let lane = &mut scratch[..k];
            for (d, &(on, _)) in lane.iter_mut().zip(active) {
                *d = row[on as usize];
            }
            for (sum, &g) in acc.iter_mut().zip(lane.iter()) {
                *sum += weight * g;
            }
        }
        true
    }

    /// Approximate heap footprint of the cache in bytes: the per-link
    /// scalar and position tables, plus the dense `m × m` gain table
    /// when materialized. Substrate-cache byte accounting charges this
    /// instead of guessing (a lazy cache must *not* be billed for a
    /// dense table it never built).
    pub fn approx_bytes(&self) -> usize {
        let mut bytes = std::mem::size_of::<Self>();
        bytes += (self.tx_power.len() + self.signal.len() + self.margin.len())
            * std::mem::size_of::<f64>();
        bytes +=
            (self.sender.len() + self.receiver.len()) * std::mem::size_of::<crate::geom::Point>();
        if let Some(table) = &self.gains {
            bytes += table.len() * std::mem::size_of::<f64>();
        }
        bytes
    }

    /// The path-loss exponent `α` the cache was built with.
    pub(crate) fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Per-link sender positions (crate-internal: the tiled substrate
    /// derives tile geometry from them).
    pub(crate) fn sender_positions(&self) -> &[crate::geom::Point] {
        &self.sender
    }

    /// Per-link receiver positions (crate-internal).
    pub(crate) fn receiver_positions(&self) -> &[crate::geom::Point] {
        &self.receiver
    }

    /// Per-link transmission powers as a slice (crate-internal).
    pub(crate) fn tx_powers(&self) -> &[f64] {
        &self.tx_power
    }

    /// Per-link noise-adjusted margins as a slice (crate-internal).
    pub(crate) fn margins(&self) -> &[f64] {
        &self.margin
    }
}

/// The one gain expression shared by the dense table, the on-the-fly
/// fallback, the tiled near-field panels ([`crate::tiles`]) and the
/// naive reference oracle: same operations, same rounding, bit-for-bit
/// interchangeable.
#[inline]
pub(crate) fn raw_gain(
    sender: &[crate::geom::Point],
    receiver: &[crate::geom::Point],
    tx_power: &[f64],
    alpha: f64,
    from: usize,
    on: usize,
) -> f64 {
    let d = sender[from].distance(&receiver[on]);
    if d <= 0.0 {
        return f64::NAN;
    }
    tx_power[from] / d.powf(alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affectance::affectance;
    use crate::instances::{line_instance, random_instance};
    use crate::network::SinrNetworkBuilder;
    use crate::params::SinrParams;
    use crate::power::{LinearPower, UniformPower};
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn per_link_scalars_match_direct_formulas() {
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let params = SinrParams::with_noise(0.001);
        let net = random_instance(12, 40.0, 1.0, 3.0, params, &mut rng);
        let power = LinearPower::new(params.alpha);
        let cache = SinrCache::new(&net, &power);
        for link in net.network().link_ids() {
            let len = net.link_length(link);
            assert_eq!(cache.tx_power(link), power.power(len));
            assert_eq!(
                cache.signal(link),
                power.power(len) / len.powf(params.alpha)
            );
            assert_eq!(
                cache.margin(link),
                power.power(len) / len.powf(params.alpha) - params.beta * params.noise
            );
        }
    }

    #[test]
    fn dense_and_fallback_gains_are_bit_identical() {
        let mut rng = ChaCha12Rng::seed_from_u64(9);
        let params = SinrParams::default_noiseless();
        let net = random_instance(10, 30.0, 1.0, 2.0, params, &mut rng);
        let power = UniformPower::unit();
        let dense = SinrCache::new(&net, &power);
        let lazy = SinrCache::with_dense_limit(&net, &power, 0);
        assert!(dense.is_dense());
        assert!(!lazy.is_dense());
        for from in net.network().link_ids() {
            for on in net.network().link_ids() {
                if from == on {
                    continue;
                }
                let a = dense.gain(from, on);
                let b = lazy.gain(from, on);
                assert_eq!(a.to_bits(), b.to_bits(), "gain({from}, {on})");
            }
        }
    }

    #[test]
    fn cached_affectance_equals_free_function_bitwise() {
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        for noise in [0.0, 0.01] {
            let params = SinrParams::with_noise(noise);
            let net = random_instance(8, 25.0, 0.5, 4.0, params, &mut rng);
            let power = LinearPower::new(params.alpha);
            let cache = SinrCache::new(&net, &power);
            for from in net.network().link_ids() {
                for on in net.network().link_ids() {
                    let free = affectance(&net, &power, from, on);
                    let cached = cache.affectance(from, on);
                    assert_eq!(free.to_bits(), cached.to_bits(), "a({from}, {on})");
                }
            }
        }
    }

    #[test]
    fn coincident_endpoints_yield_nan_gain_and_full_affectance() {
        // Consecutive line links share a node: the sender of link 1 sits
        // on the receiver of link 0.
        let net = line_instance(2, 1.0, SinrParams::default_noiseless());
        let cache = SinrCache::new(&net, &UniformPower::unit());
        assert!(cache.gain(LinkId(1), LinkId(0)).is_nan());
        assert_eq!(cache.affectance(LinkId(1), LinkId(0)), 1.0);
        assert_eq!(cache.affectance(LinkId(0), LinkId(0)), 0.0);
    }

    #[test]
    fn budget_limits_are_isqrt_of_table_cells() {
        assert_eq!(dense_limit_for_budget(0), 0);
        assert_eq!(dense_limit_for_budget(7), 0);
        assert_eq!(dense_limit_for_budget(8), 1);
        assert_eq!(dense_limit_for_budget(4 * 4 * 8), 4);
        assert_eq!(dense_limit_for_budget(4 * 4 * 8 + 7), 4);
        assert_eq!(dense_limit_for_budget(5 * 5 * 8 - 1), 4);
        assert_eq!(dense_limit_for_budget(5 * 5 * 8), 5);
        // The default budget reproduces the historical 1024-link cap.
        assert_eq!(DEFAULT_DENSE_GAIN_LIMIT, 1024);
        assert_eq!(
            dense_limit_for_budget(DEFAULT_DENSE_GAIN_BUDGET_BYTES),
            1024
        );
    }

    #[test]
    fn memory_budget_controls_the_dense_fallback_boundary() {
        let mut rng = ChaCha12Rng::seed_from_u64(17);
        let params = SinrParams::default_noiseless();
        let m = 6;
        let net = random_instance(m, 30.0, 1.0, 2.0, params, &mut rng);
        let power = UniformPower::unit();
        let table_bytes = m * m * std::mem::size_of::<f64>();
        // Exactly enough for the m×m table: dense.
        let dense = SinrCache::with_memory_budget(&net, &power, table_bytes);
        assert!(dense.is_dense());
        assert_eq!(dense.dense_limit(), m);
        // One byte short: the fallback path, same verdicts bitwise.
        let lazy = SinrCache::with_memory_budget(&net, &power, table_bytes - 1);
        assert!(!lazy.is_dense());
        assert!(lazy.dense_limit() < m);
        for from in net.network().link_ids() {
            for on in net.network().link_ids() {
                assert_eq!(
                    dense.affectance(from, on).to_bits(),
                    lazy.affectance(from, on).to_bits(),
                    "affectance({from}, {on}) across the budget boundary"
                );
            }
        }
    }

    #[test]
    fn blocked_kernel_matches_scalar_accumulation_bitwise() {
        let mut rng = ChaCha12Rng::seed_from_u64(23);
        let params = SinrParams::with_noise(0.01);
        // 13 active links: three full lanes plus a remainder.
        let net = random_instance(13, 40.0, 1.0, 3.0, params, &mut rng);
        let power = LinearPower::new(params.alpha);
        let cache = SinrCache::new(&net, &power);
        // Multiplicities > 1 mixed in: weights enter the kernel as-is.
        let active: Vec<(u32, u32)> = (0..13u32)
            .map(|l| (l, if l % 5 == 0 { 2 } else { 1 }))
            .collect();
        let mut acc = Vec::new();
        let mut scratch = Vec::new();
        assert!(cache.active_interference_into(&active, &mut acc, &mut scratch));
        for (i, &(on, _)) in active.iter().enumerate() {
            let mut scalar = 0.0f64;
            for &(from, count) in &active {
                if from == on {
                    continue;
                }
                scalar += count as f64 * cache.gain(LinkId(from), LinkId(on));
            }
            assert_eq!(
                acc[i].to_bits(),
                scalar.to_bits(),
                "interference at active[{i}] (link {on})"
            );
        }
        // The fallback cache declines, leaving the caller to go scalar.
        let lazy = SinrCache::with_dense_limit(&net, &power, 0);
        assert!(!lazy.active_interference_into(&active, &mut acc, &mut scratch));
    }

    #[test]
    fn noise_starved_link_has_nonpositive_margin() {
        let mut b = SinrNetworkBuilder::new(SinrParams::with_noise(10.0));
        let e = b.add_isolated_link((0.0, 0.0), (0.0, 1.0));
        let other = b.add_isolated_link((50.0, 0.0), (50.0, 1.0));
        let cache = SinrCache::new(&b.build(), &UniformPower::unit());
        assert!(cache.margin(e) <= 0.0);
        assert_eq!(cache.affectance(other, e), 1.0);
    }
}
