//! Spatially-tiled SINR substrate: hierarchical far-field tile
//! aggregation, panel-blocked near-field gain storage with fixed or
//! adaptive residency, and a region-sharded slot kernel for metro- to
//! megacity-scale instances.
//!
//! The exact oracle ([`crate::feasibility::SinrFeasibility`]) judges a
//! slot in `O(k²)` pairwise gain evaluations; beyond the dense-table
//! limit every evaluation recomputes `p/d^α` from endpoint positions.
//! Kesselheim's analysis rests on geometric locality of affectance —
//! distant senders contribute negligible interference — and this module
//! exploits exactly that structure:
//!
//! * **Tiling.** [`TileGrid`] buckets every link into a uniform
//!   `g × g` grid of square tiles covering the deployment's bounding
//!   box (a link has *two* tiles: one for its sender position, one for
//!   its receiver position).
//! * **Hierarchy.** Above the leaf grid sit up to
//!   [`MAX_TILE_LEVELS`] quadtree-style coarsening levels (each level
//!   merges 2×2 tiles of the level below). Far qualification runs
//!   independently at every level with that level's centres, radii,
//!   powers and margins, and the slot kernel charges each far region at
//!   the *coarsest* level that qualifies — so the far-field walk visits
//!   `O(occupied tiles at the coarsest qualifying level)` instead of
//!   `O(occupied leaf tiles)`. This is what lifts the old
//!   `tiles_per_side ≤ 64` cap (the flat walk forced it) to
//!   [`MAX_TILES_PER_SIDE`]`= 1024`: fine leaf grids keep panels small
//!   while coarse levels keep the walk short.
//! * **Far-field aggregation.** A tile pair `(S, R)` at any level is
//!   *far* when replacing every sender `s ∈ S` by the tile centre `c_S`
//!   perturbs the interference any receiver in `R` sees by at most
//!   `ε·margin/m` per transmission (an analytic worst-case bound from
//!   tile centres, radii, powers and margins — see
//!   [`TiledSinrCache::is_far`]). The slot kernel then charges far
//!   tiles one aggregated term `W_S/d(c_S, r)^α` instead of one term
//!   per sender, and the total approximation error at a receiver with
//!   `k ≤ m` concurrent transmissions stays within `ε·margin`
//!   regardless of which levels the charges land on (each transmission
//!   is charged exactly once, at exactly one level).
//! * **Panels.** Near tile pairs store their pairwise gains as small
//!   dense *panels* (one `|S|×|R|` block per leaf pair). Under
//!   [`PanelCacheMode::Fixed`] panels are allocated once at build time
//!   in deterministic row-major tile order within a byte budget; under
//!   [`PanelCacheMode::Adaptive`] they live in a touch-count LRU cache
//!   that refills from the exact gain expression on miss and evicts the
//!   stalest pairs when the budget overflows, so the resident set
//!   tracks the *active* tiles of a long run. Panel entries are
//!   produced by the *same* floating-point expression as the flat dense
//!   table and the naive oracle ([`crate::cache`]'s `raw_gain`), so
//!   panel hits, misses, refills and evictions are all bit-for-bit
//!   interchangeable.
//! * **Parallel slot kernel.** [`TiledSinrFeasibility`] can fan the
//!   per-receiver interference accumulation across worker threads
//!   ([`dps_core::parallel::parallel_map`], re-exported as
//!   `dps_sim::parallel::parallel_map`): the active receivers are
//!   sharded by [`dps_core::region::RegionMap`] span, every receiver's
//!   accumulation order is independent of the sharding, and the
//!   per-shard verdict vectors are spliced back in shard order — so
//!   verdicts are bit-for-bit identical at any thread count.
//!
//! **Exactness knob.** `epsilon = 0` disables far-field aggregation
//! entirely: no tile pair qualifies as far at any level, the kernel
//! accumulates the same terms in the same (ascending link index) order
//! as the exact oracle's scalar path, and the verdicts are bit-for-bit
//! identical — property-tested in `tests/prop_tiles.rs` across level
//! and thread counts. `epsilon > 0` trades a bounded verdict
//! perturbation for `O(active tiles at the coarsest qualifying level)`
//! far-field work.
//!
//! Zero cross distances (a sender on top of another link's receiver)
//! can never be far-qualified — coincident points always share a tile
//! at every level, and a tile pair qualifies only when the centre
//! distance strictly exceeds both radii — so the `NaN`-poisoning
//! blockage rule of the exact oracle is preserved verbatim.

mod grid;
mod hierarchy;
mod index;
mod kernel;
mod measure;
mod panels;

#[cfg(test)]
mod tests;

pub use grid::TileGrid;
pub use index::{TileDiagnostics, TiledSinrCache};
pub use kernel::{TiledInterference, TiledSinrFeasibility};
pub use panels::PanelCacheMode;

/// Default byte budget for near-field gain panels (`8 MiB`, matching
/// [`crate::cache::DEFAULT_DENSE_GAIN_BUDGET_BYTES`]). Under
/// [`PanelCacheMode::Fixed`] panels are allocated in deterministic tile
/// order until the next one would exceed the budget; under
/// [`PanelCacheMode::Adaptive`] the budget bounds the resident set.
/// Un-panelled pairs fall back to on-the-fly evaluation of the same
/// expression.
pub const DEFAULT_PANEL_BUDGET_BYTES: usize = 8 << 20;

/// Largest supported leaf grid resolution (tiles per side). The
/// hierarchical far walk only ever consults far tables at levels coarse
/// enough for one ([`MAX_FAR_TABLE_SIDE`]), so the leaf grid is bounded
/// by per-tile bookkeeping memory (`O(g²)` summary floats), not by the
/// `g⁴` far table the old flat walk required.
pub const MAX_TILES_PER_SIDE: usize = 1024;

/// Coarsest side length at which a level still materializes its
/// far-qualification table: `64⁴` bytes (16 MiB) is the largest table a
/// single level may hold. Finer levels carry no table and never
/// far-qualify — their tiles always descend (or fall to the near path),
/// which is exactly the old flat behaviour for `g ≤ 64`.
pub const MAX_FAR_TABLE_SIDE: usize = 64;

/// Most coarsening levels a tiled index may stack (including the leaf
/// level). Eight levels coarsen a `1024`-side leaf grid down to `8`
/// tiles per side; building more would only duplicate the coarsest.
pub const MAX_TILE_LEVELS: usize = 8;

/// Most worker threads the slot kernel will fan receiver shards over.
pub const MAX_KERNEL_THREADS: usize = 64;

/// Build options for [`TiledSinrCache::with_options`] /
/// [`TiledSinrFeasibility::with_options`]: leaf resolution, hierarchy
/// depth, far-field error knob, and the panel cache's budget and
/// residency mode.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TileOptions {
    /// Leaf tiles per side, `1..=`[`MAX_TILES_PER_SIDE`].
    pub tiles_per_side: usize,
    /// Hierarchy depth including the leaf level,
    /// `1..=`[`MAX_TILE_LEVELS`]; `1` is the flat (single-level) index.
    /// Levels past the one-tile-per-side point are dropped silently.
    pub levels: usize,
    /// Per-slot relative far-field error budget; `0` keeps the kernel
    /// bit-for-bit exact.
    pub epsilon: f64,
    /// Byte budget for near-field gain panels.
    pub panel_budget_bytes: usize,
    /// Residency policy of the panel store.
    pub panel_mode: PanelCacheMode,
}

impl TileOptions {
    /// Flat single-level options at the given resolution and epsilon,
    /// with the default panel budget and fixed panels — the historical
    /// [`TiledSinrCache::new`] configuration.
    pub fn new(tiles_per_side: usize, epsilon: f64) -> Self {
        TileOptions {
            tiles_per_side,
            epsilon,
            ..TileOptions::default()
        }
    }

    /// Sets the hierarchy depth.
    pub fn with_levels(mut self, levels: usize) -> Self {
        self.levels = levels;
        self
    }

    /// Sets the panel byte budget.
    pub fn with_panel_budget(mut self, bytes: usize) -> Self {
        self.panel_budget_bytes = bytes;
        self
    }

    /// Sets the panel residency mode.
    pub fn with_panel_mode(mut self, mode: PanelCacheMode) -> Self {
        self.panel_mode = mode;
        self
    }
}

impl Default for TileOptions {
    fn default() -> Self {
        TileOptions {
            tiles_per_side: 16,
            levels: 1,
            epsilon: 0.0,
            panel_budget_bytes: DEFAULT_PANEL_BUDGET_BYTES,
            panel_mode: PanelCacheMode::Fixed,
        }
    }
}
