//! Spatially-tiled SINR substrate: far-field tile aggregation and
//! panel-blocked near-field gain storage for metro-scale instances.
//!
//! The exact oracle ([`crate::feasibility::SinrFeasibility`]) judges a
//! slot in `O(k²)` pairwise gain evaluations; beyond the dense-table
//! limit every evaluation recomputes `p/d^α` from endpoint positions.
//! Kesselheim's analysis rests on geometric locality of affectance —
//! distant senders contribute negligible interference — and this module
//! exploits exactly that structure:
//!
//! * **Tiling.** [`TileGrid`] buckets every link into a uniform
//!   `g × g` grid of square tiles covering the deployment's bounding
//!   box (a link has *two* tiles: one for its sender position, one for
//!   its receiver position).
//! * **Far-field aggregation.** A tile pair `(S, R)` is *far* when
//!   replacing every sender `s ∈ S` by the tile centre `c_S` perturbs
//!   the interference any receiver in `R` sees by at most
//!   `ε·margin/m` per transmission (an analytic worst-case bound from
//!   tile centres, radii, powers and margins — see
//!   [`TiledSinrCache::is_far`]). The slot kernel then charges far
//!   tiles one aggregated term `W_S/d(c_S, r)^α` instead of one term
//!   per sender, and the total approximation error at a receiver with
//!   `k ≤ m` concurrent transmissions stays within `ε·margin`.
//! * **Panels.** Near tile pairs store their pairwise gains as small
//!   dense *panels* (one `|S|×|R|` block per pair, allocated in
//!   deterministic row-major tile order within a byte budget), so the
//!   near-field path does cache-resident table lookups instead of
//!   `sqrt`/`powf`. Panel entries are produced by the *same*
//!   floating-point expression as the flat dense table and the naive
//!   oracle ([`crate::cache`]'s `raw_gain`), so panel hits and misses
//!   are bit-for-bit interchangeable.
//!
//! **Exactness knob.** `epsilon = 0` disables far-field aggregation
//! entirely: no tile pair qualifies as far, the kernel accumulates the
//! same terms in the same (ascending link index) order as the exact
//! oracle's scalar path, and the verdicts are bit-for-bit identical —
//! property-tested in `tests/prop_tiles.rs`. `epsilon > 0` trades a
//! bounded verdict perturbation for `O(active tiles)` far-field work.
//!
//! Zero cross distances (a sender on top of another link's receiver)
//! can never be far-qualified — coincident points always share a tile,
//! and a tile pair qualifies only when the centre distance strictly
//! exceeds both radii — so the `NaN`-poisoning blockage rule of the
//! exact oracle is preserved verbatim.

use crate::cache::{raw_gain, SinrCache};
use crate::geom::Point;
use crate::network::SinrNetwork;
use crate::power::PowerAssignment;
use dps_core::feasibility::{Attempt, Feasibility};
use dps_core::ids::LinkId;
use dps_core::interference::InterferenceModel;
use rand::RngCore;
use std::cell::RefCell;
use std::sync::Arc;

/// Default byte budget for near-field gain panels (`8 MiB`, matching
/// [`crate::cache::DEFAULT_DENSE_GAIN_BUDGET_BYTES`]): panels are
/// allocated in deterministic tile order until the next one would
/// exceed the budget; un-panelled pairs fall back to on-the-fly
/// evaluation of the same expression.
pub const DEFAULT_PANEL_BUDGET_BYTES: usize = 8 << 20;

/// Largest supported grid resolution (tiles per side). `64` caps the
/// far-qualification table at `64⁴` bytes (16 MiB) and keeps per-slot
/// tile bookkeeping trivially small.
pub const MAX_TILES_PER_SIDE: usize = 64;

/// A uniform grid of square tiles covering a deployment's bounding box.
///
/// Tile indices are row-major: `tile = row · g + col`. A point exactly
/// on an interior tile boundary belongs to the tile on its right/top
/// (floor semantics); points on the bounding box's max edge are clamped
/// into the last row/column, so every point of the covered set maps to
/// a valid tile.
#[derive(Clone, Copy, Debug)]
pub struct TileGrid {
    tiles_per_side: usize,
    origin: Point,
    tile_size: f64,
}

impl TileGrid {
    /// Builds the grid covering every point of `senders` and
    /// `receivers` with `tiles_per_side × tiles_per_side` square tiles.
    ///
    /// The grid is anchored at the bounding box's min corner; the tile
    /// side is `max(width, height)/tiles_per_side`. A zero-area
    /// (single-point or empty) deployment gets tile side `1.0`, mapping
    /// every point into tile `0`.
    ///
    /// # Panics
    ///
    /// Panics if `tiles_per_side` is `0` or exceeds
    /// [`MAX_TILES_PER_SIDE`], or if any coordinate is non-finite.
    pub fn cover(senders: &[Point], receivers: &[Point], tiles_per_side: usize) -> Self {
        assert!(
            (1..=MAX_TILES_PER_SIDE).contains(&tiles_per_side),
            "tiles_per_side must be in 1..={MAX_TILES_PER_SIDE}, got {tiles_per_side}"
        );
        let mut min = Point::new(f64::INFINITY, f64::INFINITY);
        let mut max = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in senders.iter().chain(receivers) {
            assert!(
                p.x.is_finite() && p.y.is_finite(),
                "tile grids require finite coordinates, got {p}"
            );
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        }
        let (origin, extent) = if min.x <= max.x {
            (min, (max.x - min.x).max(max.y - min.y))
        } else {
            // No points at all: any anchored unit grid works.
            (Point::new(0.0, 0.0), 0.0)
        };
        let tile_size = if extent > 0.0 {
            extent / tiles_per_side as f64
        } else {
            1.0
        };
        TileGrid {
            tiles_per_side,
            origin,
            tile_size,
        }
    }

    /// Tiles per side `g`.
    pub fn tiles_per_side(&self) -> usize {
        self.tiles_per_side
    }

    /// Total number of tiles `g²`.
    pub fn num_tiles(&self) -> usize {
        self.tiles_per_side * self.tiles_per_side
    }

    /// The side length of each square tile.
    pub fn tile_size(&self) -> f64 {
        self.tile_size
    }

    /// The row-major tile index of `point` (clamped into the grid, so
    /// points outside the covered box map to the nearest border tile).
    pub fn tile_of(&self, point: &Point) -> u32 {
        let g = self.tiles_per_side as i64;
        let col = ((point.x - self.origin.x) / self.tile_size).floor() as i64;
        let row = ((point.y - self.origin.y) / self.tile_size).floor() as i64;
        let col = col.clamp(0, g - 1);
        let row = row.clamp(0, g - 1);
        (row * g + col) as u32
    }

    /// The geometric centre of tile `tile` (the tile *box* centre, not
    /// a member centroid — empty tiles have centres too).
    pub fn center(&self, tile: u32) -> Point {
        let g = self.tiles_per_side as u32;
        let col = (tile % g) as f64;
        let row = (tile / g) as f64;
        Point::new(
            self.origin.x + (col + 0.5) * self.tile_size,
            self.origin.y + (row + 0.5) * self.tile_size,
        )
    }
}

/// Offset sentinel for tile pairs without an allocated panel.
const NO_PANEL: usize = usize::MAX;

/// Tiled spatial index over a [`SinrCache`]: per-link tile assignments,
/// per-tile membership and summary statistics, the far-qualification
/// table, and the near-field gain panels.
///
/// Built once per `(network, power, grid, epsilon, budget)` combination
/// and shared behind an [`Arc`] by the tiled oracle
/// ([`TiledSinrFeasibility`]) and any diagnostics.
#[derive(Clone, Debug)]
pub struct TiledSinrCache {
    cache: Arc<SinrCache>,
    grid: TileGrid,
    epsilon: f64,
    panel_budget_bytes: usize,

    /// Per-link tile of the *sender* position.
    sender_tile: Vec<u32>,
    /// Per-link tile of the *receiver* position.
    receiver_tile: Vec<u32>,
    /// Per-link rank within its sender tile's member list.
    sender_rank: Vec<u32>,
    /// Per-link rank within its receiver tile's member list.
    receiver_rank: Vec<u32>,
    /// CSR starts (length `T+1`) of the per-tile sender member lists.
    senders_start: Vec<u32>,
    /// Link ids with sender in each tile, ascending within a tile.
    senders_links: Vec<u32>,
    /// CSR starts (length `T+1`) of the per-tile receiver member lists.
    receivers_start: Vec<u32>,
    /// Link ids with receiver in each tile, ascending within a tile.
    receivers_links: Vec<u32>,

    /// Max sender distance from the tile centre, per tile (`0` empty).
    sender_radius: Vec<f64>,
    /// Max receiver distance from the tile centre, per tile (`0` empty).
    receiver_radius: Vec<f64>,
    /// Max transmission power among senders in each tile (`0` empty).
    tile_max_power: Vec<f64>,
    /// Min noise-adjusted margin among receivers in each tile
    /// (`+∞` empty).
    tile_min_margin: Vec<f64>,

    /// `far[s·T + r] != 0` iff sender tile `s` is far-qualified for
    /// receiver tile `r`.
    far: Vec<u8>,
    /// Number of far-qualified pairs (fast "anything far at all?").
    far_pairs: usize,

    /// `panel_offset[s·T + r]` indexes the pair's panel in `panels`
    /// ([`NO_PANEL`] when un-panelled). Panel layout:
    /// `panel[receiver_rank · |S| + sender_rank]`.
    panel_offset: Vec<usize>,
    /// Panel arena: raw gains of panelled near pairs, bit-for-bit the
    /// shared gain expression.
    panels: Vec<f64>,
    /// Number of allocated panels.
    panel_count: usize,
}

impl TiledSinrCache {
    /// Builds the tiled index over an already-built shared cache.
    ///
    /// `epsilon` is the per-slot relative error budget: a slot with at
    /// most `m` concurrent transmissions sees its per-receiver
    /// interference perturbed by at most `epsilon · margin(receiver)`.
    /// `epsilon = 0` disables far-field aggregation entirely (the tiled
    /// kernel is then bit-for-bit the exact oracle).
    ///
    /// # Panics
    ///
    /// Panics if `tiles_per_side` is out of `1..=`[`MAX_TILES_PER_SIDE`],
    /// if `epsilon` is negative or non-finite, or if any position is
    /// non-finite.
    pub fn new(
        cache: Arc<SinrCache>,
        tiles_per_side: usize,
        epsilon: f64,
        panel_budget_bytes: usize,
    ) -> Self {
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "epsilon must be finite and non-negative, got {epsilon}"
        );
        let m = cache.num_links();
        let grid = TileGrid::cover(
            cache.sender_positions(),
            cache.receiver_positions(),
            tiles_per_side,
        );
        let t = grid.num_tiles();
        let alpha = cache.alpha();

        let sender_tile: Vec<u32> = cache
            .sender_positions()
            .iter()
            .map(|p| grid.tile_of(p))
            .collect();
        let receiver_tile: Vec<u32> = cache
            .receiver_positions()
            .iter()
            .map(|p| grid.tile_of(p))
            .collect();

        // Counting sort into CSR member lists (ascending link ids per
        // tile, since links are visited in ascending order).
        let csr = |tiles: &[u32]| -> (Vec<u32>, Vec<u32>, Vec<u32>) {
            let mut start = vec![0u32; t + 1];
            for &tile in tiles {
                start[tile as usize + 1] += 1;
            }
            for i in 0..t {
                start[i + 1] += start[i];
            }
            let mut cursor = start.clone();
            let mut links = vec![0u32; m];
            let mut rank = vec![0u32; m];
            for (link, &tile) in tiles.iter().enumerate() {
                let at = cursor[tile as usize];
                links[at as usize] = link as u32;
                rank[link] = at - start[tile as usize];
                cursor[tile as usize] += 1;
            }
            (start, links, rank)
        };
        let (senders_start, senders_links, sender_rank) = csr(&sender_tile);
        let (receivers_start, receivers_links, receiver_rank) = csr(&receiver_tile);

        // Per-tile summary statistics for the far-qualification bound.
        let mut sender_radius = vec![0.0f64; t];
        let mut tile_max_power = vec![0.0f64; t];
        for (link, &tile) in sender_tile.iter().enumerate() {
            let d = grid.center(tile).distance(&cache.sender_positions()[link]);
            sender_radius[tile as usize] = sender_radius[tile as usize].max(d);
            tile_max_power[tile as usize] =
                tile_max_power[tile as usize].max(cache.tx_powers()[link]);
        }
        let mut receiver_radius = vec![0.0f64; t];
        let mut tile_min_margin = vec![f64::INFINITY; t];
        for (link, &tile) in receiver_tile.iter().enumerate() {
            let d = grid
                .center(tile)
                .distance(&cache.receiver_positions()[link]);
            receiver_radius[tile as usize] = receiver_radius[tile as usize].max(d);
            tile_min_margin[tile as usize] =
                tile_min_margin[tile as usize].min(cache.margins()[link]);
        }

        // Far qualification. For sender tile S and receiver tile R with
        // centre distance D, every receiver r ∈ R has d(c_S, r) ≥
        // D − ρ_R =: d_min, and every sender s ∈ S has
        // |d(s, r) − d(c_S, r)| ≤ ρ_S. Since x ↦ 1/x^α is decreasing
        // and its spread over [d − ρ_S, d + ρ_S] shrinks with d, the
        // per-transmission error of charging s's power from c_S instead
        // of s is at most
        //   P_max(S) · (1/(d_min − ρ_S)^α − 1/(d_min + ρ_S)^α),
        // which must fit the per-transmission budget
        // ε · margin_min(R) / m. Pairs with d_min ≤ ρ_S (possible
        // zero/negative distances) or margin_min ≤ 0 (a comparison that
        // tolerates no perturbation) never qualify.
        let mut far = vec![0u8; t * t];
        let mut far_pairs = 0usize;
        if epsilon > 0.0 {
            for s in 0..t {
                if senders_start[s] == senders_start[s + 1] {
                    continue;
                }
                let rho_s = sender_radius[s];
                let p_max = tile_max_power[s];
                for r in 0..t {
                    if receivers_start[r] == receivers_start[r + 1] {
                        continue;
                    }
                    let margin = tile_min_margin[r];
                    // NaN margins fail `is_finite`, so `<=` is safe here.
                    if margin <= 0.0 || !margin.is_finite() {
                        continue;
                    }
                    let d_min =
                        grid.center(s as u32).distance(&grid.center(r as u32)) - receiver_radius[r];
                    if d_min <= rho_s {
                        continue;
                    }
                    let spread = p_max
                        * (1.0 / (d_min - rho_s).powf(alpha) - 1.0 / (d_min + rho_s).powf(alpha));
                    if spread <= epsilon * margin / m as f64 {
                        far[s * t + r] = 1;
                        far_pairs += 1;
                    }
                }
            }
        }

        // Panel allocation: near pairs get dense |S|×|R| gain panels in
        // deterministic row-major (S, R) order until the budget is
        // spent. Panels are a speed layer only — un-panelled pairs fall
        // back to the identical on-the-fly expression.
        let budget_cells = panel_budget_bytes / std::mem::size_of::<f64>();
        let mut panel_offset = vec![NO_PANEL; t * t];
        let mut panels = Vec::new();
        let mut panel_count = 0usize;
        for s in 0..t {
            let s_links = &senders_links[senders_start[s] as usize..senders_start[s + 1] as usize];
            if s_links.is_empty() {
                continue;
            }
            for r in 0..t {
                if far[s * t + r] != 0 {
                    continue;
                }
                let r_links =
                    &receivers_links[receivers_start[r] as usize..receivers_start[r + 1] as usize];
                if r_links.is_empty() {
                    continue;
                }
                let cells = s_links.len() * r_links.len();
                if panels.len() + cells > budget_cells {
                    continue;
                }
                panel_offset[s * t + r] = panels.len();
                for &on in r_links {
                    for &from in s_links {
                        panels.push(raw_gain(
                            cache.sender_positions(),
                            cache.receiver_positions(),
                            cache.tx_powers(),
                            alpha,
                            from as usize,
                            on as usize,
                        ));
                    }
                }
                panel_count += 1;
            }
        }

        TiledSinrCache {
            cache,
            grid,
            epsilon,
            panel_budget_bytes,
            sender_tile,
            receiver_tile,
            sender_rank,
            receiver_rank,
            senders_start,
            senders_links,
            receivers_start,
            receivers_links,
            sender_radius,
            receiver_radius,
            tile_max_power,
            tile_min_margin,
            far,
            far_pairs,
            panel_offset,
            panels,
            panel_count,
        }
    }

    /// The underlying shared geometry cache.
    pub fn cache(&self) -> &SinrCache {
        &self.cache
    }

    /// The shared handle to the underlying geometry cache.
    pub fn shared_cache(&self) -> &Arc<SinrCache> {
        &self.cache
    }

    /// The tile grid.
    pub fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// The far-field error knob `ε` the index was built with.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The panel byte budget the index was built with.
    pub fn panel_budget_bytes(&self) -> usize {
        self.panel_budget_bytes
    }

    /// Number of links covered.
    pub fn num_links(&self) -> usize {
        self.cache.num_links()
    }

    /// Total number of tiles `g²`.
    pub fn num_tiles(&self) -> usize {
        self.grid.num_tiles()
    }

    /// Tile of `link`'s sender position.
    pub fn sender_tile_of(&self, link: LinkId) -> u32 {
        self.sender_tile[link.index()]
    }

    /// Tile of `link`'s receiver position.
    pub fn receiver_tile_of(&self, link: LinkId) -> u32 {
        self.receiver_tile[link.index()]
    }

    /// Whether sender tile `s` is far-qualified for receiver tile `r`.
    pub fn is_far(&self, s: u32, r: u32) -> bool {
        self.far[s as usize * self.grid.num_tiles() + r as usize] != 0
    }

    /// Number of far-qualified tile pairs (`0` iff the kernel is fully
    /// exact, in particular always `0` at `epsilon = 0`).
    pub fn far_pairs(&self) -> usize {
        self.far_pairs
    }

    /// Number of allocated near-field gain panels.
    pub fn panel_count(&self) -> usize {
        self.panel_count
    }

    /// Bytes held by the panel arena.
    pub fn panel_bytes(&self) -> usize {
        self.panels.len() * std::mem::size_of::<f64>()
    }

    /// Approximate heap footprint of the tiled index in bytes (tile
    /// assignments, member lists, summary tables, far map and panels;
    /// the underlying [`SinrCache`] is accounted separately via
    /// [`SinrCache::approx_bytes`]).
    pub fn approx_bytes(&self) -> usize {
        let u32s = self.sender_tile.len()
            + self.receiver_tile.len()
            + self.sender_rank.len()
            + self.receiver_rank.len()
            + self.senders_start.len()
            + self.senders_links.len()
            + self.receivers_start.len()
            + self.receivers_links.len();
        let f64s = self.sender_radius.len()
            + self.receiver_radius.len()
            + self.tile_max_power.len()
            + self.tile_min_margin.len()
            + self.panels.len();
        std::mem::size_of::<Self>()
            + u32s * std::mem::size_of::<u32>()
            + f64s * std::mem::size_of::<f64>()
            + self.far.len()
            + self.panel_offset.len() * std::mem::size_of::<usize>()
    }

    /// The gain `p(d(from))/d(s_from, r_on)^α`, served from the pair's
    /// panel when one is allocated and recomputed on the fly otherwise —
    /// bit-for-bit [`SinrCache::gain`] either way. The value for
    /// `from == on` is unspecified; SINR sums never include it.
    #[inline]
    pub fn gain(&self, from: LinkId, on: LinkId) -> f64 {
        let s = self.sender_tile[from.index()] as usize;
        let r = self.receiver_tile[on.index()] as usize;
        let offset = self.panel_offset[s * self.grid.num_tiles() + r];
        if offset != NO_PANEL {
            let s_count = (self.senders_start[s + 1] - self.senders_start[s]) as usize;
            self.panels[offset
                + self.receiver_rank[on.index()] as usize * s_count
                + self.sender_rank[from.index()] as usize]
        } else {
            raw_gain(
                self.cache.sender_positions(),
                self.cache.receiver_positions(),
                self.cache.tx_powers(),
                self.cache.alpha(),
                from.index(),
                on.index(),
            )
        }
    }
}

/// Per-thread slot scratch for the tiled oracle: distinct links with
/// multiplicity, per-distinct-link verdicts, and the per-slot tile
/// grouping (all sized by the *active* set, never by the tile count —
/// sparse slots stay cheap).
struct TiledSlotScratch {
    active: Vec<(u32, u32)>,
    verdicts: Vec<bool>,
    groups: TileGroups,
    interference: Vec<f64>,
    lanes: Vec<f64>,
}

/// The active set bucketed by sender tile, rebuilt per slot:
/// `entries` holds `(tile, link, count)` sorted by `(tile, link)`;
/// `touched[i]` is the `i`-th occupied tile (ascending) whose entries
/// span `entries[start[i]..start[i + 1]]` and whose summed transmission
/// weight `Σ count·p` is `weight[i]`.
#[derive(Default)]
struct TileGroups {
    entries: Vec<(u32, u32, u32)>,
    touched: Vec<u32>,
    start: Vec<u32>,
    weight: Vec<f64>,
}

thread_local! {
    /// Keeps [`TiledSinrFeasibility`] callable through `&self`/`Arc`
    /// across threads while the slot loop stays allocation-free in
    /// steady state.
    static TILED_SLOT_SCRATCH: RefCell<TiledSlotScratch> = RefCell::new(TiledSlotScratch {
        active: Vec::new(),
        verdicts: Vec::new(),
        groups: TileGroups::default(),
        interference: Vec::new(),
        lanes: Vec::new(),
    });
}

/// The tiled accumulative SINR oracle: near-field terms exactly (from
/// panels or on-the-fly gains), far-field tiles as one aggregated term
/// each, within the `ε·margin` error contract of [`TiledSinrCache`].
///
/// At `epsilon = 0` this is bit-for-bit [`SinrFeasibility`]'s fallback
/// scalar path (property-tested in `tests/prop_tiles.rs`).
///
/// [`SinrFeasibility`]: crate::feasibility::SinrFeasibility
#[derive(Clone, Debug)]
pub struct TiledSinrFeasibility<P> {
    net: SinrNetwork,
    power: P,
    tiles: Arc<TiledSinrCache>,
}

impl<P: PowerAssignment> TiledSinrFeasibility<P> {
    /// Creates the tiled oracle, deriving a geometry cache (the flat
    /// dense gain table is materialized only under
    /// [`crate::cache::SinrCache`]'s dense cap, so metro-scale
    /// instances stay `O(m)` — panels and far-field aggregation replace
    /// the table beyond it) and the tiled index under
    /// [`DEFAULT_PANEL_BUDGET_BYTES`].
    pub fn new(net: SinrNetwork, power: P, tiles_per_side: usize, epsilon: f64) -> Self {
        Self::with_budget(
            net,
            power,
            tiles_per_side,
            epsilon,
            DEFAULT_PANEL_BUDGET_BYTES,
        )
    }

    /// Creates the tiled oracle with an explicit panel byte budget
    /// (`0` forces every gain onto the on-the-fly path).
    pub fn with_budget(
        net: SinrNetwork,
        power: P,
        tiles_per_side: usize,
        epsilon: f64,
        panel_budget_bytes: usize,
    ) -> Self {
        let cache = Arc::new(SinrCache::new(&net, &power));
        let tiles = Arc::new(TiledSinrCache::new(
            cache,
            tiles_per_side,
            epsilon,
            panel_budget_bytes,
        ));
        TiledSinrFeasibility { net, power, tiles }
    }

    /// Creates the oracle around an already-built shared tiled index —
    /// the substrate-sharing path.
    ///
    /// # Panics
    ///
    /// Panics if the index's underlying cache was not built for this
    /// `(network, power)` pair: the link count must match and every
    /// link's cached transmission power and signal strength must be
    /// bit-for-bit what `power` produces on `net` (the same pairing
    /// contract as [`crate::feasibility::SinrFeasibility::with_cache`]).
    pub fn with_tiles(net: SinrNetwork, power: P, tiles: Arc<TiledSinrCache>) -> Self {
        let cache = tiles.cache();
        assert_eq!(
            cache.num_links(),
            net.num_links(),
            "shared TiledSinrCache must cover the oracle's network"
        );
        assert!(
            cache.beta().to_bits() == net.params().beta.to_bits()
                && cache.noise().to_bits() == net.params().noise.to_bits(),
            "shared TiledSinrCache was built under different SINR parameters"
        );
        let alpha = net.params().alpha;
        for (index, &len) in net.lengths().iter().enumerate() {
            let link = LinkId(index as u32);
            let p = power.power(len);
            assert!(
                cache.tx_power(link).to_bits() == p.to_bits()
                    && cache.signal(link).to_bits() == (p / len.powf(alpha)).to_bits(),
                "shared TiledSinrCache was built for a different (network, power) pair \
                 (mismatch at link {index})"
            );
        }
        TiledSinrFeasibility { net, power, tiles }
    }

    /// The network the oracle judges.
    pub fn network(&self) -> &SinrNetwork {
        &self.net
    }

    /// The power assignment the oracle judges under.
    pub fn power(&self) -> &P {
        &self.power
    }

    /// The tiled index the oracle judges from.
    pub fn tiles(&self) -> &TiledSinrCache {
        &self.tiles
    }

    /// The shared handle to the tiled index.
    pub fn shared_tiles(&self) -> &Arc<TiledSinrCache> {
        &self.tiles
    }

    /// The accumulated tiled interference each *distinct* attempted
    /// link sees this slot, in ascending link order — the exact value
    /// the kernel compares against `β·(I + ν)`. Diagnostic/referee
    /// surface: `tests/prop_tiles.rs` pins `|I_tiled − I_exact| ≤
    /// ε·margin` against the naive oracle's sums.
    pub fn slot_interference(&self, attempts: &[Attempt]) -> Vec<(LinkId, f64)> {
        let mut active: Vec<(u32, u32)> = Vec::new();
        dedup_attempts(attempts, &mut active);
        let mut groups = TileGroups::default();
        self.group_active_by_tile(&active, &mut groups);
        active
            .iter()
            .map(|&(on_raw, _)| {
                (
                    LinkId(on_raw),
                    self.interference_at(on_raw, &active, &groups),
                )
            })
            .collect()
    }

    /// Buckets the active list by sender tile: entries sorted by
    /// `(tile, link)`, touched tiles ascending with group extents and
    /// summed transmission weights `W_S = Σ count·p`. Skipped entirely
    /// when nothing is far-qualified — the slot kernel then runs the
    /// plain (exact) scalar loop and never reads the grouping.
    fn group_active_by_tile(&self, active: &[(u32, u32)], groups: &mut TileGroups) {
        groups.entries.clear();
        groups.touched.clear();
        groups.start.clear();
        groups.weight.clear();
        if self.tiles.far_pairs == 0 {
            return;
        }
        groups.entries.extend(
            active
                .iter()
                .map(|&(from, count)| (self.tiles.sender_tile[from as usize], from, count)),
        );
        groups
            .entries
            .sort_unstable_by_key(|&(tile, link, _)| (tile, link));
        let tx_power = self.tiles.cache.tx_powers();
        for (i, &(tile, from, count)) in groups.entries.iter().enumerate() {
            if groups.touched.last() != Some(&tile) {
                groups.touched.push(tile);
                groups.start.push(i as u32);
                groups.weight.push(0.0);
            }
            *groups.weight.last_mut().expect("group opened above") +=
                count as f64 * tx_power[from as usize];
        }
        groups.start.push(groups.entries.len() as u32);
    }

    /// The tiled interference accumulated at distinct active link
    /// `on_raw`.
    ///
    /// With no far-qualified tile pairs (`ε = 0`, or geometry that never
    /// qualifies) this is the exact oracle's scalar loop — ascending
    /// link order over the shared cache's gains, bit-for-bit.
    ///
    /// Otherwise the kernel walks the touched tiles in ascending tile
    /// order: a far tile contributes one aggregated term
    /// `W_S / d(center_S, r)^α` (with `on`'s own power removed from its
    /// home tile), a near tile streams its active senders through the
    /// tile-pair panel row (contiguous reads) or on-the-fly gains when
    /// the pair is un-panelled.
    #[inline]
    fn interference_at(&self, on_raw: u32, active: &[(u32, u32)], groups: &TileGroups) -> f64 {
        let tiles = &*self.tiles;
        let cache = &*tiles.cache;
        let on = LinkId(on_raw);
        let mut interference = 0.0;
        if groups.touched.is_empty() {
            for &(from_raw, from_count) in active {
                if from_raw == on_raw {
                    continue;
                }
                // A NaN gain (coincident endpoints) poisons the sum,
                // failing the comparison — the naive "zero cross
                // distance blocks the receiver" rule.
                interference += from_count as f64 * cache.gain(LinkId(from_raw), on);
            }
            return interference;
        }
        let t = tiles.grid.num_tiles();
        let r_tile = tiles.receiver_tile[on_raw as usize] as usize;
        let r_rank = tiles.receiver_rank[on_raw as usize] as usize;
        let far_row = &tiles.far[..];
        let alpha = cache.alpha();
        let receiver = cache.receiver_positions()[on_raw as usize];
        let own_tile = tiles.sender_tile[on_raw as usize];
        for (i, &s_tile) in groups.touched.iter().enumerate() {
            let s = s_tile as usize;
            if far_row[s * t + r_tile] != 0 {
                // Far tiles are geometrically incapable of zero cross
                // distances, so aggregating them never hides a NaN.
                let mut weight = groups.weight[i];
                if s_tile == own_tile {
                    // The exact sum excludes `on`'s own transmission;
                    // remove it from the aggregate. Receivers sharing a
                    // slot with their own multiplicity > 1 are judged
                    // failed before interference is evaluated, so one
                    // transmission is exact here.
                    weight -= cache.tx_powers()[on_raw as usize];
                }
                let d = tiles.grid.center(s_tile).distance(&receiver);
                interference += weight / d.powf(alpha);
                continue;
            }
            let group = &groups.entries[groups.start[i] as usize..groups.start[i + 1] as usize];
            let offset = tiles.panel_offset[s * t + r_tile];
            if offset != NO_PANEL {
                let s_count = (tiles.senders_start[s + 1] - tiles.senders_start[s]) as usize;
                let row = &tiles.panels[offset + r_rank * s_count..][..s_count];
                for &(_, from_raw, from_count) in group {
                    if from_raw == on_raw {
                        continue;
                    }
                    interference +=
                        from_count as f64 * row[tiles.sender_rank[from_raw as usize] as usize];
                }
            } else {
                for &(_, from_raw, from_count) in group {
                    if from_raw == on_raw {
                        continue;
                    }
                    interference += from_count as f64 * cache.gain(LinkId(from_raw), on);
                }
            }
        }
        interference
    }
}

/// Collapses `attempts` into the distinct attempted links with their
/// multiplicities, ascending by link index — the shared preamble of the
/// exact and tiled slot kernels (identical ordering is part of the
/// `epsilon = 0` bitwise contract).
fn dedup_attempts(attempts: &[Attempt], active: &mut Vec<(u32, u32)>) {
    active.clear();
    active.extend(attempts.iter().map(|a| (a.link.0, 1u32)));
    active.sort_unstable_by_key(|&(link, _)| link);
    let mut write = 0;
    for read in 1..active.len() {
        if active[read].0 == active[write].0 {
            active[write].1 += active[read].1;
        } else {
            write += 1;
            active[write] = active[read];
        }
    }
    active.truncate(write + 1);
}

impl<P: PowerAssignment> Feasibility for TiledSinrFeasibility<P> {
    fn successes(&self, attempts: &[Attempt], rng: &mut dyn RngCore) -> Vec<bool> {
        let mut out = Vec::new();
        self.successes_into(attempts, &mut out, rng);
        out
    }

    fn successes_into(&self, attempts: &[Attempt], out: &mut Vec<bool>, _rng: &mut dyn RngCore) {
        out.clear();
        if attempts.is_empty() {
            return;
        }
        let cache = self.tiles.cache();
        let beta = cache.beta();
        let noise = cache.noise();
        TILED_SLOT_SCRATCH.with(|scratch| {
            let TiledSlotScratch {
                active,
                verdicts,
                groups,
                interference,
                lanes,
            } = &mut *scratch.borrow_mut();
            dedup_attempts(attempts, active);
            self.group_active_by_tile(active, groups);
            verdicts.clear();
            if groups.touched.is_empty()
                && cache.active_interference_into(active, interference, lanes)
            {
                // No far machinery and a dense gain table: the exact
                // oracle's blocked kernel produced every receiver's
                // accumulated interference, bit-for-bit in the scalar
                // order; only the comparisons remain.
                verdicts.extend(active.iter().zip(interference.iter()).map(
                    |(&(on_raw, count), &interference)| {
                        // A shared transmitter collides regardless of SINR.
                        count == 1 && cache.signal(LinkId(on_raw)) >= beta * (interference + noise)
                    },
                ));
            } else {
                verdicts.extend(active.iter().map(|&(on_raw, count)| {
                    if count != 1 {
                        // A shared transmitter collides regardless of SINR.
                        return false;
                    }
                    let interference = self.interference_at(on_raw, active, groups);
                    cache.signal(LinkId(on_raw)) >= beta * (interference + noise)
                }));
            }
            out.extend(attempts.iter().map(|a| {
                let slot = active
                    .binary_search_by_key(&a.link.0, |&(link, _)| link)
                    .expect("every attempted link is in the active list");
                verdicts[slot]
            }));
        });
    }
}

/// On-demand interference rows over a shared [`SinrCache`]: the
/// `O(1)`-memory companion of
/// [`crate::matrix::SinrInterference::fixed_power`] for metro-scale
/// instances, where materializing the dense `m × m` table is
/// prohibitive (34 GiB at `m = 65536`).
///
/// Entries are bit-for-bit the fixed-power matrix construction:
/// diagonal `1`, off-diagonal `a_p(from, on)` clamped into `[0, 1]`
/// (affectance already lands there, `NaN`s included via the clamp).
#[derive(Clone, Debug)]
pub struct TiledInterference {
    cache: Arc<SinrCache>,
}

impl TiledInterference {
    /// Wraps a shared geometry cache as an on-demand interference
    /// model.
    pub fn new(cache: Arc<SinrCache>) -> Self {
        TiledInterference { cache }
    }

    /// The shared handle to the underlying geometry cache.
    pub fn shared_cache(&self) -> &Arc<SinrCache> {
        &self.cache
    }
}

impl InterferenceModel for TiledInterference {
    fn num_links(&self) -> usize {
        self.cache.num_links()
    }

    fn weight(&self, on: LinkId, from: LinkId) -> f64 {
        if on == from {
            1.0
        } else {
            self.cache.affectance(from, on).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::SinrFeasibility;
    use crate::instances::{line_instance, random_instance};
    use crate::matrix::SinrInterference;
    use crate::network::SinrNetworkBuilder;
    use crate::params::SinrParams;
    use crate::power::{LinearPower, UniformPower};
    use dps_core::ids::PacketId;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn attempt(link: u32, packet: u64) -> Attempt {
        Attempt {
            link: LinkId(link),
            packet: PacketId(packet),
        }
    }

    fn rng() -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(1)
    }

    #[test]
    fn boundary_points_take_floor_semantics_and_max_edge_clamps() {
        // 2×2 grid over [0, 2]²: tile side 1.
        let senders = [Point::new(0.0, 0.0), Point::new(2.0, 2.0)];
        let receivers = [Point::new(0.5, 0.5), Point::new(1.5, 1.5)];
        let grid = TileGrid::cover(&senders, &receivers, 2);
        assert_eq!(grid.tile_size(), 1.0);
        // Interior boundary: exactly on the x = 1 line goes right,
        // y = 1 goes up.
        assert_eq!(grid.tile_of(&Point::new(1.0, 0.0)), 1);
        assert_eq!(grid.tile_of(&Point::new(0.0, 1.0)), 2);
        assert_eq!(grid.tile_of(&Point::new(1.0, 1.0)), 3);
        // The max corner and edges clamp into the last row/column
        // instead of falling off the grid.
        assert_eq!(grid.tile_of(&Point::new(2.0, 2.0)), 3);
        assert_eq!(grid.tile_of(&Point::new(2.0, 0.0)), 1);
        // Corners of the box.
        assert_eq!(grid.tile_of(&Point::new(0.0, 0.0)), 0);
        assert_eq!(grid.tile_of(&Point::new(0.999, 0.999)), 0);
    }

    #[test]
    fn zero_area_deployment_collapses_to_tile_zero() {
        let p = [Point::new(3.0, -4.0); 5];
        let grid = TileGrid::cover(&p, &p, 4);
        assert_eq!(grid.tile_size(), 1.0);
        for q in &p {
            assert_eq!(grid.tile_of(q), 0);
        }
        // Degenerate 1-D extent still builds square tiles from the max
        // extent.
        let line = [Point::new(0.0, 0.0), Point::new(0.0, 8.0)];
        let grid = TileGrid::cover(&line, &line, 4);
        assert_eq!(grid.tile_size(), 2.0);
        assert_eq!(grid.tile_of(&Point::new(0.0, 0.0)), 0);
        assert_eq!(grid.tile_of(&Point::new(0.0, 8.0)), 12);
    }

    #[test]
    fn grid_rejects_invalid_resolutions() {
        let p = [Point::new(0.0, 0.0)];
        for bad in [0, MAX_TILES_PER_SIDE + 1] {
            let result = std::panic::catch_unwind(|| TileGrid::cover(&p, &p, bad));
            assert!(result.is_err(), "tiles_per_side = {bad} must be rejected");
        }
    }

    #[test]
    fn one_tile_grid_is_bitwise_exact_for_any_epsilon() {
        let mut rng_geo = ChaCha12Rng::seed_from_u64(11);
        let params = SinrParams::with_noise(0.01);
        let net = random_instance(24, 50.0, 1.0, 3.0, params, &mut rng_geo);
        let power = LinearPower::new(params.alpha);
        let exact = SinrFeasibility::new(net.clone(), power);
        let tiled = TiledSinrFeasibility::new(net, power, 1, 0.5);
        // One tile: no pair can satisfy d_min > ρ_S, so nothing is far.
        assert_eq!(tiled.tiles().far_pairs(), 0);
        let attempts: Vec<Attempt> = (0..24).map(|i| attempt(i % 24, i as u64)).collect();
        assert_eq!(
            exact.successes(&attempts, &mut rng()),
            tiled.successes(&attempts, &mut rng())
        );
    }

    #[test]
    fn epsilon_zero_never_qualifies_far_pairs() {
        // Two clusters 10⁴ apart: far-qualifiable in principle, but
        // ε = 0 tolerates no perturbation at all.
        let mut b = SinrNetworkBuilder::new(SinrParams::default_noiseless());
        for i in 0..4 {
            let x = i as f64 * 0.5;
            b.add_isolated_link((x, 0.0), (x, 1.0));
            b.add_isolated_link((x + 10_000.0, 0.0), (x + 10_000.0, 1.0));
        }
        let net = b.build();
        let zero = TiledSinrFeasibility::new(net.clone(), UniformPower::unit(), 8, 0.0);
        assert_eq!(zero.tiles().far_pairs(), 0);
        let loose = TiledSinrFeasibility::new(net, UniformPower::unit(), 8, 1e-2);
        assert!(
            loose.tiles().far_pairs() > 0,
            "well-separated clusters must far-qualify under ε = 1e-2"
        );
    }

    #[test]
    fn panel_budget_boundary_controls_allocation_but_not_bits() {
        let mut rng_geo = ChaCha12Rng::seed_from_u64(7);
        let params = SinrParams::default_noiseless();
        let net = random_instance(16, 40.0, 1.0, 2.0, params, &mut rng_geo);
        let power = UniformPower::unit();
        let cache = Arc::new(SinrCache::with_dense_limit(&net, &power, 0));
        let full = TiledSinrCache::new(Arc::clone(&cache), 2, 0.0, usize::MAX);
        // Every non-empty (S, R) pair panelled under an unlimited
        // budget; total cells = m² when every tile pair is populated
        // with all members (here Σ|S|·Σ|R| over pairs = m·m).
        assert_eq!(full.panel_bytes(), 16 * 16 * 8);
        // One byte below the full requirement: the largest pair that
        // no longer fits is skipped, later smaller ones may still land.
        let trimmed = TiledSinrCache::new(Arc::clone(&cache), 2, 0.0, full.panel_bytes() - 1);
        assert!(trimmed.panel_count() < full.panel_count());
        assert!(trimmed.panel_bytes() < full.panel_bytes());
        // Zero budget: no panels at all.
        let none = TiledSinrCache::new(Arc::clone(&cache), 2, 0.0, 0);
        assert_eq!(none.panel_count(), 0);
        assert_eq!(none.panel_bytes(), 0);
        // Budget is a speed knob only: gains agree bitwise across all
        // three, and with the flat cache expression.
        let reference = SinrCache::new(&net, &power);
        for from in 0..16u32 {
            for on in 0..16u32 {
                if from == on {
                    continue;
                }
                let (f, o) = (LinkId(from), LinkId(on));
                let expect = reference.gain(f, o).to_bits();
                assert_eq!(full.gain(f, o).to_bits(), expect);
                assert_eq!(trimmed.gain(f, o).to_bits(), expect);
                assert_eq!(none.gain(f, o).to_bits(), expect);
            }
        }
    }

    #[test]
    fn approx_bytes_tracks_panel_allocation() {
        let mut rng_geo = ChaCha12Rng::seed_from_u64(3);
        let params = SinrParams::default_noiseless();
        let net = random_instance(12, 30.0, 1.0, 2.0, params, &mut rng_geo);
        let cache = Arc::new(SinrCache::with_dense_limit(&net, &UniformPower::unit(), 0));
        let none = TiledSinrCache::new(Arc::clone(&cache), 3, 0.0, 0);
        let full = TiledSinrCache::new(Arc::clone(&cache), 3, 0.0, usize::MAX);
        assert_eq!(
            full.approx_bytes() - none.approx_bytes(),
            full.panel_bytes()
        );
        assert!(none.approx_bytes() > 0);
    }

    #[test]
    fn shared_node_zero_distances_stay_exact() {
        // Consecutive line links put senders on receivers: NaN gains.
        // Those pairs always share a tile, so they can never be far —
        // the blockage rule survives any epsilon.
        let net = line_instance(6, 1.0, SinrParams::default_noiseless());
        let exact = SinrFeasibility::new(net.clone(), UniformPower::unit());
        for eps in [0.0, 1e-2, 0.5] {
            let tiled = TiledSinrFeasibility::new(net.clone(), UniformPower::unit(), 4, eps);
            let attempts: Vec<Attempt> = (0..6).map(|i| attempt(i, i as u64)).collect();
            assert_eq!(
                exact.successes(&attempts, &mut rng()),
                tiled.successes(&attempts, &mut rng()),
                "eps = {eps}"
            );
        }
    }

    #[test]
    fn far_aggregation_flips_no_verdict_on_well_separated_clusters() {
        // Two tight clusters 500 apart: the far path aggregates the
        // other cluster, and with margins far from the decision
        // boundary the verdicts match the exact oracle.
        let mut b = SinrNetworkBuilder::new(SinrParams::default_noiseless());
        for i in 0..6 {
            let x = i as f64 * 3.0;
            b.add_isolated_link((x, 0.0), (x, 1.0));
            b.add_isolated_link((x + 500.0, 0.0), (x + 500.0, 1.0));
        }
        let net = b.build();
        let exact = SinrFeasibility::new(net.clone(), UniformPower::unit());
        let tiled = TiledSinrFeasibility::new(net, UniformPower::unit(), 8, 1e-2);
        assert!(tiled.tiles().far_pairs() > 0);
        let attempts: Vec<Attempt> = (0..12).map(|i| attempt(i, i as u64)).collect();
        assert_eq!(
            exact.successes(&attempts, &mut rng()),
            tiled.successes(&attempts, &mut rng())
        );
    }

    #[test]
    fn with_tiles_rejects_mismatched_pairing() {
        let params = SinrParams::default_noiseless();
        // Spacing 2: on unit-length links every power assignment
        // coincides at p(1) and the pairing check could not tell them
        // apart.
        let net = line_instance(3, 2.0, params);
        let cache = Arc::new(SinrCache::new(&net, &UniformPower::unit()));
        let tiles = Arc::new(TiledSinrCache::new(cache, 2, 0.0, 0));
        let result = std::panic::catch_unwind(|| {
            TiledSinrFeasibility::with_tiles(net.clone(), LinearPower::new(params.alpha), tiles)
        });
        assert!(result.is_err(), "mismatched power assignment must panic");
    }

    #[test]
    fn tiled_interference_matches_fixed_power_matrix_bitwise() {
        let mut rng_geo = ChaCha12Rng::seed_from_u64(21);
        let params = SinrParams::with_noise(0.001);
        let net = random_instance(10, 30.0, 1.0, 3.0, params, &mut rng_geo);
        let power = LinearPower::new(params.alpha);
        let cache = Arc::new(SinrCache::with_dense_limit(&net, &power, 0));
        let lazy = TiledInterference::new(Arc::clone(&cache));
        let dense = SinrInterference::fixed_power_with_cache(&net, &cache);
        dps_core::interference::validate(&lazy).unwrap();
        for on in 0..10u32 {
            for from in 0..10u32 {
                assert_eq!(
                    lazy.weight(LinkId(on), LinkId(from)).to_bits(),
                    dense.weight(LinkId(on), LinkId(from)).to_bits(),
                    "W[{on}][{from}]"
                );
            }
        }
    }

    #[test]
    fn slot_interference_reports_kernel_sums() {
        let mut rng_geo = ChaCha12Rng::seed_from_u64(31);
        let params = SinrParams::default_noiseless();
        let net = random_instance(8, 25.0, 1.0, 2.0, params, &mut rng_geo);
        let tiled = TiledSinrFeasibility::new(net, UniformPower::unit(), 2, 0.0);
        let attempts: Vec<Attempt> = (0..8).map(|i| attempt(i, i as u64)).collect();
        let sums = tiled.slot_interference(&attempts);
        assert_eq!(sums.len(), 8);
        let beta = tiled.tiles().cache().beta();
        let noise = tiled.tiles().cache().noise();
        let verdicts = tiled.successes(&attempts, &mut rng());
        for ((link, interference), ok) in sums.into_iter().zip(verdicts) {
            let expect = tiled.tiles().cache().signal(link) >= beta * (interference + noise);
            assert_eq!(expect, ok, "verdict of {link} disagrees with its sum");
        }
    }
}
