//! The three interference-matrix constructions of Section 6, each an
//! [`InterferenceModel`] usable with every scheduler and injection model in
//! [`dps_core`].
//!
//! * **Fixed powers** (§6.1, used with linear power assignments for
//!   Corollary 12): `W[ℓ][ℓ'] = a_p(ℓ', ℓ)` — row `ℓ` accumulates the
//!   affectance of every other link on `ℓ`.
//! * **Monotone (sub-)linear powers** (§6.1, Corollary 13):
//!   `W[ℓ][ℓ'] = max{a_p(ℓ, ℓ'), a_p(ℓ', ℓ)}` if `d(ℓ) ≤ d(ℓ')`, else 0 —
//!   only *longer* links charge a row.
//! * **Power control** (§6.2, Corollary 14): powers are chosen by the
//!   algorithm, so the matrix is purely geometric:
//!   `W[ℓ][ℓ'] = min{1, d(ℓ)^α/d(s,r')^α + d(ℓ)^α/d(s',r)^α}` if
//!   `d(ℓ) ≤ d(ℓ')`, else 0.
//!
//! Entries are precomputed into a dense `m×m` table at construction
//! (`O(m²)` time and space), which is the right trade-off for the
//! simulation scales of this repository; the diagonal is forced to 1 as
//! the abstract model requires.

use crate::cache::SinrCache;
use crate::network::SinrNetwork;
use crate::power::PowerAssignment;
use dps_core::ids::LinkId;
use dps_core::interference::InterferenceModel;
use dps_core::load::LinkLoad;

/// Which Section 6 construction a [`SinrInterference`] uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MatrixKind {
    /// §6.1 with powers fixed per link (affectance rows).
    FixedPower,
    /// §6.1 for monotone (sub-)linear assignments (longer links charge
    /// shorter rows, symmetrized affectance).
    MonotonePower,
    /// §6.2 with powers chosen by the algorithm (geometric distance
    /// ratios).
    PowerControl,
}

/// A dense SINR interference matrix over the links of a [`SinrNetwork`].
#[derive(Clone, Debug)]
pub struct SinrInterference {
    num_links: usize,
    /// Row-major `num_links × num_links`.
    entries: Vec<f64>,
    kind: MatrixKind,
}

impl SinrInterference {
    /// §6.1 fixed-power construction: `W[on][from] = a_p(from, on)`.
    ///
    /// Built from a [`SinrCache`], so the per-link signal/margin terms are
    /// computed `O(m)` times instead of `O(m²)`; entries are bit-for-bit
    /// the values [`crate::affectance::affectance`] returns.
    pub fn fixed_power<P: PowerAssignment + ?Sized>(net: &SinrNetwork, power: &P) -> Self {
        // Each pairwise gain is read exactly once here, so skip the dense
        // gain table (it would be filled and traversed for nothing) and
        // let the cache evaluate gains on the fly.
        let cache = SinrCache::with_dense_limit(net, power, 0);
        Self::fixed_power_with_cache(net, &cache)
    }

    /// The fixed-power construction over an already-built (possibly
    /// shared) cache — the substrate-sharing path: one [`SinrCache`] per
    /// topology serves matrix builds and the exact oracle alike. Dense
    /// and on-the-fly caches yield bit-for-bit identical matrices.
    ///
    /// The cache must have been built for `net` and the intended power
    /// assignment; with no power value to compare against, only the
    /// link count is checked here (construct through
    /// [`crate::feasibility::SinrFeasibility::with_cache`] first for
    /// the full pairing check).
    ///
    /// # Panics
    ///
    /// Panics if the cache does not cover exactly the links of `net`.
    pub fn fixed_power_with_cache(net: &SinrNetwork, cache: &SinrCache) -> Self {
        assert_eq!(
            cache.num_links(),
            net.num_links(),
            "shared SinrCache must cover the matrix's network"
        );
        Self::build(net, MatrixKind::FixedPower, |on, from| {
            cache.affectance(from, on)
        })
    }

    /// §6.1 monotone-power construction: rows are charged by longer links
    /// only, with the symmetrized affectance
    /// `max{a_p(ℓ, ℓ'), a_p(ℓ', ℓ)}`.
    pub fn monotone_power<P: PowerAssignment + ?Sized>(net: &SinrNetwork, power: &P) -> Self {
        let cache = SinrCache::new(net, power);
        Self::monotone_power_with_cache(net, &cache)
    }

    /// The monotone-power construction over an already-built (possibly
    /// shared) cache. As with
    /// [`fixed_power_with_cache`](Self::fixed_power_with_cache), the
    /// `(network, power)` pairing beyond the link count is the caller's
    /// contract.
    ///
    /// # Panics
    ///
    /// Panics if the cache does not cover exactly the links of `net`.
    pub fn monotone_power_with_cache(net: &SinrNetwork, cache: &SinrCache) -> Self {
        assert_eq!(
            cache.num_links(),
            net.num_links(),
            "shared SinrCache must cover the matrix's network"
        );
        Self::build(net, MatrixKind::MonotonePower, |on, from| {
            if net.link_length(on) <= net.link_length(from) {
                cache.affectance(from, on).max(cache.affectance(on, from))
            } else {
                0.0
            }
        })
    }

    /// §6.2 power-control construction:
    /// `W[ℓ][ℓ'] = min{1, d(ℓ)^α/d(s,r')^α + d(ℓ)^α/d(s',r)^α}` for
    /// `d(ℓ) ≤ d(ℓ')`, else 0, where `s, r` are `ℓ`'s endpoints and
    /// `s', r'` are `ℓ''`s.
    pub fn power_control(net: &SinrNetwork) -> Self {
        let alpha = net.params().alpha;
        Self::build(net, MatrixKind::PowerControl, |on, from| {
            let d_on = net.link_length(on);
            if d_on > net.link_length(from) {
                return 0.0;
            }
            // d(s, r'): on's sender to from's receiver;
            // d(s', r): from's sender to on's receiver.
            let to_their_receiver = net.cross_distance(on, from);
            let from_their_sender = net.cross_distance(from, on);
            if to_their_receiver <= 0.0 || from_their_sender <= 0.0 {
                return 1.0;
            }
            let ratio =
                (d_on / to_their_receiver).powf(alpha) + (d_on / from_their_sender).powf(alpha);
            ratio.min(1.0)
        })
    }

    fn build<F>(net: &SinrNetwork, kind: MatrixKind, mut entry: F) -> Self
    where
        F: FnMut(LinkId, LinkId) -> f64,
    {
        let m = net.num_links();
        let mut entries = vec![0.0; m * m];
        for on in 0..m {
            for from in 0..m {
                entries[on * m + from] = if on == from {
                    1.0
                } else {
                    entry(LinkId(on as u32), LinkId(from as u32)).clamp(0.0, 1.0)
                };
            }
        }
        SinrInterference {
            num_links: m,
            entries,
            kind,
        }
    }

    /// Which construction this matrix uses.
    pub fn kind(&self) -> MatrixKind {
        self.kind
    }
}

impl InterferenceModel for SinrInterference {
    fn num_links(&self) -> usize {
        self.num_links
    }

    fn weight(&self, on: LinkId, from: LinkId) -> f64 {
        self.entries[on.index() * self.num_links + from.index()]
    }

    fn row_load(&self, on: LinkId, load: &LinkLoad) -> f64 {
        let row = &self.entries[on.index() * self.num_links..(on.index() + 1) * self.num_links];
        load.support().map(|(from, r)| row[from.index()] * r).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affectance::affectance;
    use crate::network::SinrNetworkBuilder;
    use crate::params::SinrParams;
    use crate::power::{LinearPower, UniformPower};
    use dps_core::interference::validate;

    fn small_net() -> SinrNetwork {
        let mut b = SinrNetworkBuilder::new(SinrParams::default_noiseless());
        b.add_isolated_link((0.0, 0.0), (0.0, 1.0)); // unit link
        b.add_isolated_link((4.0, 0.0), (4.0, 2.0)); // length 2
        b.add_isolated_link((9.0, 0.0), (9.0, 4.0)); // length 4
        b.build()
    }

    #[test]
    fn all_constructions_satisfy_model_invariants() {
        let net = small_net();
        let uni = UniformPower::unit();
        let lin = LinearPower::new(net.params().alpha);
        validate(&SinrInterference::fixed_power(&net, &uni)).unwrap();
        validate(&SinrInterference::fixed_power(&net, &lin)).unwrap();
        validate(&SinrInterference::monotone_power(&net, &lin)).unwrap();
        validate(&SinrInterference::power_control(&net)).unwrap();
    }

    #[test]
    fn fixed_power_rows_are_affectance() {
        let net = small_net();
        let power = UniformPower::unit();
        let w = SinrInterference::fixed_power(&net, &power);
        let e0 = LinkId(0);
        let e1 = LinkId(1);
        assert_eq!(w.weight(e0, e1), affectance(&net, &power, e1, e0));
        assert_eq!(w.weight(e1, e0), affectance(&net, &power, e0, e1));
    }

    #[test]
    fn monotone_only_charges_shorter_rows() {
        let net = small_net();
        let lin = LinearPower::new(net.params().alpha);
        let w = SinrInterference::monotone_power(&net, &lin);
        // Link 2 (length 4) is the longest: its row gets no off-diagonal
        // charge; link 0 (length 1) is charged by both longer links.
        assert_eq!(w.weight(LinkId(2), LinkId(0)), 0.0);
        assert_eq!(w.weight(LinkId(2), LinkId(1)), 0.0);
        assert!(w.weight(LinkId(0), LinkId(2)) > 0.0);
        assert!(w.weight(LinkId(0), LinkId(1)) > 0.0);
    }

    #[test]
    fn power_control_is_purely_geometric() {
        let net = small_net();
        let w = SinrInterference::power_control(&net);
        // Shortest link's row: charged by longer links with the distance
        // ratio formula.
        let e0 = LinkId(0);
        let e1 = LinkId(1);
        let alpha = net.params().alpha;
        let expected = (net.link_length(e0) / net.cross_distance(e0, e1)).powf(alpha)
            + (net.link_length(e0) / net.cross_distance(e1, e0)).powf(alpha);
        assert!((w.weight(e0, e1) - expected.min(1.0)).abs() < 1e-12);
        // Longer row uncharged by shorter link.
        assert_eq!(w.weight(e1, e0), 0.0);
    }

    #[test]
    fn measure_reflects_spatial_separation() {
        // Far-apart links: measure of one-packet-per-link stays near 1;
        // co-located links: measure approaches the packet count.
        let params = SinrParams::default_noiseless();
        let power = UniformPower::unit();
        let spread = {
            let mut b = SinrNetworkBuilder::new(params);
            for i in 0..8 {
                b.add_isolated_link((i as f64 * 100.0, 0.0), (i as f64 * 100.0, 1.0));
            }
            b.build()
        };
        let packed = {
            let mut b = SinrNetworkBuilder::new(params);
            for i in 0..8 {
                b.add_isolated_link((i as f64 * 0.6, 0.0), (i as f64 * 0.6, 1.0));
            }
            b.build()
        };
        let load = LinkLoad::from_links(8, (0..8u32).map(LinkId));
        let w_spread = SinrInterference::fixed_power(&spread, &power);
        let w_packed = SinrInterference::fixed_power(&packed, &power);
        let m_spread = w_spread.measure(&load);
        let m_packed = w_packed.measure(&load);
        assert!(m_spread < 1.5, "spread measure {m_spread}");
        assert!(m_packed > 4.0, "packed measure {m_packed}");
    }

    #[test]
    fn kind_is_reported() {
        let net = small_net();
        assert_eq!(
            SinrInterference::power_control(&net).kind(),
            MatrixKind::PowerControl
        );
    }
}
