//! A centralized scheduler for the power-control setting (Section 6.2,
//! Corollary 14), in the spirit of Kesselheim's SODA 2011 algorithm \[32\].
//!
//! Requests are processed shortest-link-first and packed into slots by
//! first fit under the §6.2 interference matrix: a request joins the
//! earliest slot where every member's row sum (and its own) stays within a
//! constant budget. The planned schedule is then executed against the
//! physical oracle; stragglers the pairwise budget admitted but the exact
//! accumulative SINR rejected are retried in a uniform-rate tail.
//!
//! The substitution from the paper's exact algorithm is documented in
//! DESIGN.md: same measure, same shortest-first ordering principle, same
//! `O(I·log n)` empirical shape — which is all the black-box
//! transformation consumes.

use crate::matrix::SinrInterference;
use dps_core::interference::InterferenceModel;
use dps_core::staticsched::{Request, StaticAlgorithm, StaticScheduler};
use rand::{Rng, RngCore};
use std::sync::Arc;

/// Centralized first-fit scheduler under the §6.2 power-control matrix.
#[derive(Clone)]
pub struct PowerControlScheduler {
    matrix: Arc<SinrInterference>,
    lengths: Arc<Vec<f64>>,
    /// Per-slot row-sum budget; ½ keeps the accumulative check honest.
    budget: f64,
    /// Tail transmission probability for stragglers.
    tail_q: f64,
}

impl std::fmt::Debug for PowerControlScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PowerControlScheduler")
            .field("budget", &self.budget)
            .field("tail_q", &self.tail_q)
            .finish_non_exhaustive()
    }
}

impl PowerControlScheduler {
    /// Creates the scheduler for a network, precomputing the §6.2 matrix.
    pub fn new(net: &crate::network::SinrNetwork) -> Self {
        let lengths = net.lengths().to_vec();
        PowerControlScheduler {
            matrix: Arc::new(SinrInterference::power_control(net)),
            lengths: Arc::new(lengths),
            budget: 0.5,
            tail_q: 0.125,
        }
    }

    /// Overrides the per-slot packing budget.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < budget <= 1`.
    pub fn with_budget(mut self, budget: f64) -> Self {
        assert!(budget > 0.0 && budget <= 1.0, "budget must be in (0, 1]");
        self.budget = budget;
        self
    }

    /// The §6.2 interference matrix this scheduler plans against.
    pub fn matrix(&self) -> &SinrInterference {
        &self.matrix
    }

    /// Greedy shortest-first first-fit slot assignment; returns per-slot
    /// request-index lists.
    fn plan(&self, requests: &[Request]) -> Vec<Vec<usize>> {
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by(|&a, &b| {
            let la = self.lengths[requests[a].link.index()];
            let lb = self.lengths[requests[b].link.index()];
            la.partial_cmp(&lb).expect("finite lengths")
        });
        let mut slots: Vec<Vec<usize>> = Vec::new();
        // Cached row sums per slot: sum_w[slot][idx-in-slot] is the current
        // ∑ W[member][other member].
        let mut row_sums: Vec<Vec<f64>> = Vec::new();
        for &idx in &order {
            let link = requests[idx].link;
            let mut placed = false;
            for (s, slot) in slots.iter_mut().enumerate() {
                // Candidate row sum for the new member.
                let own: f64 = slot
                    .iter()
                    .map(|&j| self.matrix.weight(link, requests[j].link))
                    .sum();
                if own > self.budget {
                    continue;
                }
                // Increase of every member's row by the newcomer.
                let fits = slot.iter().enumerate().all(|(k, &j)| {
                    row_sums[s][k] + self.matrix.weight(requests[j].link, link) <= self.budget
                });
                if !fits {
                    continue;
                }
                for (k, &j) in slot.iter().enumerate() {
                    row_sums[s][k] += self.matrix.weight(requests[j].link, link);
                }
                slot.push(idx);
                row_sums[s].push(own);
                placed = true;
                break;
            }
            if !placed {
                slots.push(vec![idx]);
                row_sums.push(vec![0.0]);
            }
        }
        slots
    }
}

impl StaticScheduler for PowerControlScheduler {
    fn instantiate(
        &self,
        requests: &[Request],
        _measure_bound: f64,
        _rng: &mut dyn RngCore,
    ) -> Box<dyn StaticAlgorithm> {
        Box::new(PowerControlRun {
            plan: self.plan(requests),
            cursor: 0,
            pending: vec![true; requests.len()],
            remaining: requests.len(),
            tail_q: self.tail_q,
        })
    }

    fn f_of(&self, _n: usize) -> f64 {
        // First-fit under budget ½ packs ~½ unit of measure per slot; the
        // factor 4 covers the one-directional matrix (rows only charged by
        // longer links) admitting sets the accumulative check thins out.
        4.0 / self.budget
    }

    fn g_of(&self, n: usize) -> f64 {
        // Straggler tail: constant-probability retries.
        16.0 * ((n.max(2) as f64).ln() + 4.0) / self.tail_q
    }

    fn name(&self) -> &str {
        "power-control-first-fit"
    }
}

struct PowerControlRun {
    plan: Vec<Vec<usize>>,
    cursor: usize,
    pending: Vec<bool>,
    remaining: usize,
    tail_q: f64,
}

impl StaticAlgorithm for PowerControlRun {
    fn attempts(&mut self, rng: &mut dyn RngCore) -> Vec<usize> {
        if self.remaining == 0 {
            return Vec::new();
        }
        if self.cursor < self.plan.len() {
            let slot = self.cursor;
            self.cursor += 1;
            self.plan[slot]
                .iter()
                .copied()
                .filter(|&i| self.pending[i])
                .collect()
        } else {
            // Straggler tail: uniform-rate retries.
            self.pending
                .iter()
                .enumerate()
                .filter(|(_, &p)| p)
                .filter(|_| rng.gen::<f64>() < self.tail_q)
                .map(|(i, _)| i)
                .collect()
        }
    }

    fn ack(&mut self, idx: usize) {
        if std::mem::replace(&mut self.pending[idx], false) {
            self.remaining -= 1;
        }
    }

    fn is_done(&self) -> bool {
        self.remaining == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::SinrFeasibility;
    use crate::instances::random_instance;
    use crate::params::SinrParams;
    use crate::power::SquareRootPower;
    use dps_core::ids::PacketId;
    use dps_core::staticsched::{requests_measure, run_static};
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn plan_respects_budget() {
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let net = random_instance(
            24,
            60.0,
            1.0,
            6.0,
            SinrParams::default_noiseless(),
            &mut rng,
        );
        let scheduler = PowerControlScheduler::new(&net);
        let requests: Vec<Request> = net
            .network()
            .link_ids()
            .enumerate()
            .map(|(i, link)| Request {
                packet: PacketId(i as u64),
                link,
            })
            .collect();
        let plan = scheduler.plan(&requests);
        for slot in &plan {
            for &i in slot {
                let row: f64 = slot
                    .iter()
                    .filter(|&&j| j != i)
                    .map(|&j| scheduler.matrix.weight(requests[i].link, requests[j].link))
                    .sum();
                assert!(row <= scheduler.budget + 1e-9, "row sum {row} over budget");
            }
        }
        // Every request appears exactly once.
        let mut seen: Vec<usize> = plan.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..requests.len()).collect::<Vec<_>>());
    }

    #[test]
    fn serves_random_instance_against_exact_oracle() {
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let params = SinrParams::default_noiseless();
        let net = random_instance(32, 120.0, 1.0, 4.0, params, &mut rng);
        let scheduler = PowerControlScheduler::new(&net);
        let requests: Vec<Request> = net
            .network()
            .link_ids()
            .enumerate()
            .map(|(i, link)| Request {
                packet: PacketId(i as u64),
                link,
            })
            .collect();
        let i = requests_measure(scheduler.matrix(), &requests);
        let oracle = SinrFeasibility::new(net.clone(), SquareRootPower::new(params.alpha));
        let budget = 8 * scheduler.slots_needed(i, requests.len()) + 2000;
        let result = run_static(&scheduler, &requests, i, &oracle, budget, &mut rng);
        assert!(
            result.all_served(),
            "served {}/{} in {} slots",
            result.served_count(),
            requests.len(),
            result.slots_used
        );
    }

    #[test]
    fn empty_request_set_is_done() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let net = random_instance(4, 50.0, 1.0, 2.0, SinrParams::default(), &mut rng);
        let scheduler = PowerControlScheduler::new(&net);
        let mut alg = scheduler.instantiate(&[], 1.0, &mut rng);
        assert!(alg.is_done());
        assert!(alg.attempts(&mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn rejects_invalid_budget() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let net = random_instance(2, 50.0, 1.0, 2.0, SinrParams::default(), &mut rng);
        let _ = PowerControlScheduler::new(&net).with_budget(0.0);
    }
}
