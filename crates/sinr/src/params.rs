//! Physical parameters of the SINR model: path-loss exponent `α`, SINR
//! threshold `β`, and ambient noise `ν`.

use serde::{Deserialize, Serialize};

/// SINR model parameters.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct SinrParams {
    /// Path-loss exponent `α`; realistic outdoor values are 2–6, and much
    /// of the SINR-algorithmics literature assumes `α > 2` (our default 3).
    pub alpha: f64,
    /// SINR threshold `β ≥ 1` for successful reception.
    pub beta: f64,
    /// Ambient noise `ν ≥ 0`.
    pub noise: f64,
}

impl SinrParams {
    /// Creates a parameter set.
    ///
    /// # Panics
    ///
    /// Panics if `alpha <= 0`, `beta <= 0`, or `noise < 0`, or any value is
    /// not finite.
    pub fn new(alpha: f64, beta: f64, noise: f64) -> Self {
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        assert!(beta > 0.0 && beta.is_finite(), "beta must be positive");
        assert!(
            noise >= 0.0 && noise.is_finite(),
            "noise must be non-negative"
        );
        SinrParams { alpha, beta, noise }
    }

    /// `α = 3`, `β = 2`, `ν = 0`: the workhorse parameters of the
    /// experiments (noise-free keeps feasibility scale-invariant).
    pub fn default_noiseless() -> Self {
        SinrParams::new(3.0, 2.0, 0.0)
    }

    /// Like [`SinrParams::default_noiseless`] but with the given noise.
    pub fn with_noise(noise: f64) -> Self {
        SinrParams::new(3.0, 2.0, noise)
    }
}

impl Default for SinrParams {
    fn default() -> Self {
        Self::default_noiseless()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_parameters() {
        let p = SinrParams::default();
        assert_eq!(p.alpha, 3.0);
        assert_eq!(p.beta, 2.0);
        assert_eq!(p.noise, 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_nonpositive_alpha() {
        let _ = SinrParams::new(0.0, 2.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "noise")]
    fn rejects_negative_noise() {
        let _ = SinrParams::new(3.0, 2.0, -1.0);
    }
}
